//! A lightweight lexical scanner for Rust source — just enough for the
//! lint rules: it separates code tokens from comments, skips string and
//! character literals entirely (a `unwrap()` quoted in a doc example
//! must never fire a rule), marks tokens that sit inside `#[...]`
//! attributes, and computes the line ranges covered by test-gated items
//! (`#[cfg(test)] mod … { … }`, `#[test] fn … { … }`) so rules can
//! exempt them. There is deliberately no parser: every rule this tool
//! enforces is expressible over the token stream plus these masks, and
//! a full grammar would be a maintenance liability for zero extra
//! signal.

/// What a code token is: an identifier/keyword, a single punctuation
/// character, or a literal (numeric; strings and chars are skipped and
/// never reach the stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct(char),
    Literal,
}

/// One code token. `text` is empty for punctuation and literals — only
/// identifiers carry their spelling, which is all the rules match on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// True when the token sits inside a `#[...]`/`#![...]` attribute;
    /// rules skip these (e.g. `expected` strings in `#[should_panic]`).
    pub in_attr: bool,
}

impl Tok {
    /// Is this an identifier spelled exactly `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment (line or block). Pragmas (`// lint:allow(...)`) are
/// recovered from these.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
    /// True when nothing but whitespace precedes the comment on its
    /// line — an own-line pragma applies to the next code line, a
    /// trailing pragma to its own.
    pub own_line: bool,
    /// True for doc comments (`///`, `//!`, `/** */`, `/*! */`).
    /// Pragmas are never read from documentation — a `lint:allow`
    /// example in a doc comment is prose, not a suppression.
    pub doc: bool,
}

/// The lexed view of one source file.
#[derive(Debug)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// Raw source lines, for violation snippets (index 0 = line 1).
    pub lines: Vec<String>,
    /// Token index ranges `[start, end]` (inclusive) of attributes.
    pub attrs: Vec<(usize, usize)>,
}

impl Lexed {
    /// Does any code token sit on `line`?
    pub fn has_code_on(&self, line: u32) -> bool {
        self.toks.iter().any(|t| t.line == line)
    }

    /// The first line strictly after `line` that carries a code token.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.toks.iter().map(|t| t.line).filter(|&l| l > line).min()
    }

    /// Trimmed source text of `line` (1-based), for snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Lexes `src`. Never fails: unrecognized bytes are skipped, an
/// unterminated string or comment simply ends the file — a lint must
/// degrade gracefully on source that rustc itself would reject.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        chars: src.char_indices().collect(),
        pos: 0,
        line: 1,
        tok_on_line: false,
        toks: Vec::new(),
        comments: Vec::new(),
    };
    lx.run();
    let mut lexed = Lexed {
        toks: lx.toks,
        comments: lx.comments,
        lines: src.lines().map(str::to_string).collect(),
        attrs: Vec::new(),
    };
    mark_attrs(&mut lexed);
    lexed
}

struct Lexer {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    /// Whether a code token has been emitted on the current line.
    tok_on_line: bool,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.tok_on_line = false;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.tok_on_line = true;
        self.toks.push(Tok {
            kind,
            text,
            line,
            in_attr: false,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.escaped_string();
                }
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident(),
                c if c.is_whitespace() => {
                    self.bump();
                }
                c => {
                    let line = self.line;
                    self.bump();
                    self.push(TokKind::Punct(c), String::new(), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let own_line = !self.tok_on_line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('/') | Some('!'));
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment {
            line,
            text: text.trim_start_matches(['/', '!']).trim().to_string(),
            own_line,
            doc,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let own_line = !self.tok_on_line;
        self.bump();
        self.bump();
        // `/**` and `/*!` open doc comments; bare `/**/` does not.
        let doc = matches!(self.peek(0), Some('*') | Some('!')) && self.peek(1) != Some('/');
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.comments.push(Comment {
            line,
            text: text.trim_start_matches(['*', '!']).trim().to_string(),
            own_line,
            doc,
        });
    }

    /// Consumes a `"…"` string body with `\` escapes; the opening quote
    /// is already consumed. Emits nothing: string contents are
    /// invisible to rules.
    fn escaped_string(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw string `r"…"` / `r#"…"#` (any number of `#`s);
    /// the `r`/`br` prefix is already consumed, `self.pos` sits on the
    /// first `#` or the opening quote.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            return; // not actually a raw string (e.g. `r#ident`)
        }
        self.bump();
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    let mut n = 0usize;
                    while n < hashes && self.peek(0) == Some('#') {
                        n += 1;
                        self.bump();
                    }
                    if n == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// `'a'` / `'\n'` are char literals (skipped); `'a` in `<'a>` is a
    /// lifetime (emitted as a Literal token so it can't collide with
    /// identifier rules).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume the escape then scan to
                // the closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Literal, String::new(), line);
            }
            Some(_) if self.peek(1) == Some('\'') => {
                self.bump();
                self.bump();
                self.push(TokKind::Literal, String::new(), line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // Lifetime: consume the identifier, no closing quote.
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Literal, String::new(), line);
            }
            _ => {}
        }
    }

    fn number(&mut self) {
        let line = self.line;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Literal, String::new(), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`: the "identifier" was a
        // literal prefix — swallow the literal instead of tokenizing
        // its contents.
        let next = self.peek(0);
        match text.as_str() {
            "r" | "br" if next == Some('"') || next == Some('#') => {
                self.raw_string();
                self.push(TokKind::Literal, String::new(), line);
                return;
            }
            "b" if next == Some('"') => {
                self.bump();
                self.escaped_string();
                self.push(TokKind::Literal, String::new(), line);
                return;
            }
            _ => {}
        }
        self.push(TokKind::Ident, text, line);
    }
}

/// Marks tokens inside `#[...]` / `#![...]` attributes and records each
/// attribute's token index range.
fn mark_attrs(lexed: &mut Lexed) {
    let mut i = 0;
    while i < lexed.toks.len() {
        if !lexed.toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let mut open = i + 1;
        if open < lexed.toks.len() && lexed.toks[open].is_punct('!') {
            open += 1;
        }
        if open >= lexed.toks.len() || !lexed.toks[open].is_punct('[') {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut end = open;
        for (j, tok) in lexed.toks.iter().enumerate().skip(open) {
            if tok.is_punct('[') {
                depth += 1;
            } else if tok.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    end = j;
                    break;
                }
            }
        }
        for tok in &mut lexed.toks[i..=end] {
            tok.in_attr = true;
        }
        lexed.attrs.push((i, end));
        i = end + 1;
    }
}

/// Line ranges (inclusive) covered by test-gated items: an item whose
/// attributes include `#[test]` or a `#[cfg(…)]` mentioning `test`
/// outside a `not(…)`. The range runs from the attribute to the item's
/// closing brace (or terminating `;`). Rules use these to exempt
/// `mod tests { … }` bodies from panic-in-lib and layering.
pub fn test_exempt_ranges(lexed: &Lexed) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut k = 0usize;
    while k < lexed.attrs.len() {
        let (start, end) = lexed.attrs[k];
        if !attr_is_test_gate(&lexed.toks[start..=end]) {
            k += 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut after = end + 1;
        let mut kk = k + 1;
        while kk < lexed.attrs.len() && lexed.attrs[kk].0 == after {
            after = lexed.attrs[kk].1 + 1;
            kk += 1;
        }
        // The item ends at the close of its first brace block, or at a
        // top-level `;` for braceless items.
        let mut depth = 0usize;
        let mut item_end_line = lexed.toks.get(end).map(|t| t.line).unwrap_or(1);
        for tok in lexed.toks.iter().skip(after) {
            if tok.in_attr {
                continue;
            }
            if tok.is_punct('{') {
                depth += 1;
            } else if tok.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    item_end_line = tok.line;
                    break;
                }
            } else if tok.is_punct(';') && depth == 0 {
                item_end_line = tok.line;
                break;
            } else {
                item_end_line = tok.line;
            }
        }
        ranges.push((lexed.toks[start].line, item_end_line));
        k = kk;
    }
    ranges
}

/// Does this attribute's token span gate the item behind `test`?
/// `#[test]` and `#[cfg(test)]` (also `cfg(any(test, …))`) do;
/// `#[cfg(not(test))]` does not.
fn attr_is_test_gate(attr: &[Tok]) -> bool {
    let idents: Vec<usize> = (0..attr.len())
        .filter(|&i| attr[i].kind == TokKind::Ident)
        .collect();
    let Some(&first) = idents.first() else {
        return false;
    };
    if attr[first].text == "test" {
        return true;
    }
    if attr[first].text != "cfg" {
        return false;
    }
    for &i in &idents[1..] {
        if attr[i].text != "test" {
            continue;
        }
        // `not(test)`: the two non-trivia tokens before `test` are the
        // identifier `not` and `(`.
        let preceded_by_not = i >= 2 && attr[i - 1].is_punct('(') && attr[i - 2].is_ident("not");
        if !preceded_by_not {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        let src = r####"
            // Instant::now in a comment
            /* HashMap in a /* nested */ block */
            let a = "thread_rng() quoted";
            let b = r#"unwrap() raw"#;
            let c = b"panic! bytes";
            let real = foo();
        "####;
        let ids = idents(src);
        assert!(ids.contains(&"real".to_string()));
        assert!(ids.contains(&"foo".to_string()));
        for banned in ["Instant", "HashMap", "thread_rng", "unwrap", "panic"] {
            assert!(!ids.contains(&banned.to_string()), "leaked {banned}");
        }
    }

    #[test]
    fn lifetimes_and_chars_do_not_derail() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '\"'; let d = '\\n'; 'y' }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        assert!(ids.contains(&"char".to_string()));
    }

    #[test]
    fn comment_own_line_flag() {
        let lexed = lex("let x = 1; // trailing\n// own line\nlet y = 2;\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.next_code_line(2), Some(3));
    }

    #[test]
    fn attr_tokens_are_marked() {
        let lexed = lex("#[should_panic(expected = \"boom\")]\nfn t() { body(); }\n");
        let expected_attr: Vec<_> = lexed.toks.iter().filter(|t| t.in_attr).collect();
        assert!(expected_attr.iter().any(|t| t.is_ident("should_panic")));
        let body = lexed.toks.iter().find(|t| t.is_ident("body"));
        assert!(!body.expect("body token").in_attr);
    }

    #[test]
    fn cfg_test_mod_range() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn inner() {}
}
fn after() {}
";
        let lexed = lex(src);
        let ranges = test_exempt_ranges(&lexed);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nmod real { fn f() {} }\n";
        let lexed = lex(src);
        assert!(test_exempt_ranges(&lexed).is_empty());
    }

    #[test]
    fn test_attr_fn_range_and_stacked_attrs() {
        let src = "\
#[test]
#[ignore]
fn t() {
    work();
}
fn untouched() {}
";
        let lexed = lex(src);
        assert_eq!(test_exempt_ranges(&lexed), vec![(1, 5)]);
    }

    #[test]
    fn cfg_any_test_is_exempt() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() {}\n";
        let lexed = lex(src);
        assert_eq!(test_exempt_ranges(&lexed).len(), 1);
    }
}
