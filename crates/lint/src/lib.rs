//! litmus-lint: a zero-dependency static analyzer enforcing the
//! workspace's determinism and layering invariants.
//!
//! Every guarantee this reproduction makes — byte-identical
//! `ClusterReport`s and telemetry JSONL across thread counts, slice vs
//! event-driven engines, streaming vs materialized replay — rests on
//! source-level invariants: no wall-clock reads in sim paths, no
//! unordered-map iteration on export paths, all randomness seeded, a
//! strict crate DAG. Equality tests catch violations after the fact,
//! as a mysterious cross-thread diff; this tool catches them in
//! seconds, as a named rule with a file:line.
//!
//! The pipeline: [`lexer`] turns each `.rs` file into code tokens
//! (comments, strings and attributes set aside — a `unwrap()` quoted
//! in a doc example never fires), [`rules`] evaluates every applicable
//! rule over the stream, [`pragma`] recovers `// lint:allow(<rule>):
//! <reason>` suppressions, [`manifest`] checks `Cargo.toml`
//! dependencies against the declared DAG, and [`workspace`] walks the
//! repository tying it together. [`report`] renders deterministic text
//! and JSON (`--format json` in CI).
//!
//! Run `litmus-lint --explain <rule>` for the rationale behind any
//! rule, or see the README's "Static analysis" section.

pub mod lexer;
pub mod manifest;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod workspace;

pub use report::{Allow, Report, Violation};
pub use rules::{scan_source, FileClass, FileCtx, RuleInfo, RULES};
pub use workspace::{run, LintError};
