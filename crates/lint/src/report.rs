//! Violation/suppression records and the text and JSON renderers.
//! Output is fully deterministic: records are sorted by (file, line,
//! rule) before rendering, so CI artifacts diff cleanly run-to-run.

use std::fmt::Write as _;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    /// Trimmed source line, for the human report.
    pub snippet: String,
    pub message: String,
}

/// One recorded suppression (`lint:allow` that matched a violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
}

/// The aggregate result of a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub allows: Vec<Allow>,
    pub files_scanned: usize,
    pub manifests_checked: usize,
}

impl Report {
    /// Sorts both record sets into canonical order.
    pub fn finish(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Renders the human-facing report: violations with file:line and
/// snippet, then the suppression inventory, then a one-line summary.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        let _ = writeln!(out, "{}: {}:{}", v.rule, v.file, v.line);
        if !v.snippet.is_empty() {
            let _ = writeln!(out, "    {}", v.snippet);
        }
        let _ = writeln!(out, "    => {}", v.message);
    }
    if !report.allows.is_empty() {
        let _ = writeln!(out, "suppressions ({}):", report.allows.len());
        for a in &report.allows {
            let _ = writeln!(
                out,
                "    {:<14} {}:{} — {}",
                a.rule, a.file, a.line, a.reason
            );
        }
    }
    let _ = writeln!(
        out,
        "litmus-lint: {} violation(s), {} suppression(s), {} file(s) + {} manifest(s) scanned",
        report.violations.len(),
        report.allows.len(),
        report.files_scanned,
        report.manifests_checked,
    );
    out
}

/// Renders the machine-facing report (`--format json`), one object with
/// `violations` and `suppressions` arrays — the CI artifact format.
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(
        out,
        "  \"manifests_checked\": {},",
        report.manifests_checked
    );
    let _ = writeln!(out, "  \"violation_count\": {},", report.violations.len());
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}}}",
            escape(&v.rule),
            escape(&v.file),
            v.line,
            escape(&v.snippet),
            escape(&v.message)
        );
    }
    if report.violations.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
    out.push_str(",\n  \"suppressions\": [");
    for (i, a) in report.allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
            escape(&a.rule),
            escape(&a.file),
            a.line,
            escape(&a.reason)
        );
    }
    if report.allows.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// JSON string escaping (quotes, backslash, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut report = Report {
            violations: vec![
                Violation {
                    rule: "wall-clock".into(),
                    file: "crates/b.rs".into(),
                    line: 9,
                    snippet: "let t = Instant::now();".into(),
                    message: "host clock".into(),
                },
                Violation {
                    rule: "panic-in-lib".into(),
                    file: "crates/a.rs".into(),
                    line: 3,
                    snippet: "x.unwrap()".into(),
                    message: "typed error \"please\"".into(),
                },
            ],
            allows: vec![Allow {
                rule: "unordered-iter".into(),
                file: "crates/a.rs".into(),
                line: 7,
                reason: "lookup-only".into(),
            }],
            files_scanned: 2,
            manifests_checked: 1,
        };
        report.finish();
        report
    }

    #[test]
    fn finish_sorts_canonically() {
        let report = sample();
        assert_eq!(report.violations[0].file, "crates/a.rs");
        assert!(!report.clean());
    }

    #[test]
    fn text_report_names_rule_file_line() {
        let text = render_text(&sample());
        assert!(text.contains("wall-clock: crates/b.rs:9"));
        assert!(text.contains("suppressions (1):"));
        assert!(text.contains("2 violation(s), 1 suppression(s)"));
    }

    #[test]
    fn json_is_escaped_and_parseable_shape() {
        let json = render_json(&sample());
        assert!(json.contains("\"violation_count\": 2"));
        assert!(json.contains("typed error \\\"please\\\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let mut report = Report::default();
        report.finish();
        let json = render_json(&report);
        assert!(json.contains("\"violations\": []"));
        assert!(json.contains("\"suppressions\": []"));
        assert!(report.clean());
    }
}
