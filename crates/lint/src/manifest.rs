//! The intended crate DAG, plus a minimal `Cargo.toml` reader that
//! checks each crate's `[dependencies]` section against it.
//!
//! The table below IS the layering spec: adding a crate or an edge
//! means editing it here, in a reviewed diff, next to the rule that
//! enforces it. Only first-party `litmus-*` dependencies are checked —
//! the vendored shims (`rand`, `proptest`, `criterion`) sit outside
//! the DAG, and `[dev-dependencies]` are exempt because tests may
//! cross layers.

use crate::report::Violation;
use crate::rules::LAYERING;

/// Crate id → direct `litmus-*` dependencies it is allowed. Ids are
/// directory names under `crates/`; `litmus` is the root facade.
pub const DAG: &[(&str, &[&str])] = &[
    // Foundations: no first-party deps.
    ("stats", &[]),
    ("sim", &[]),
    ("telemetry", &[]),
    // Middle layers.
    ("workloads", &["sim"]),
    ("core", &["stats", "sim", "workloads"]),
    ("platform", &["stats", "core", "sim", "workloads"]),
    ("forecast", &["platform"]),
    ("trace", &["platform", "workloads"]),
    // Cluster consumes everything below it, observe included: the
    // driver co-runs observe's incremental SLO engine at every slice
    // boundary. Observe itself stays a telemetry-only analysis layer
    // (its integration tests cross back into cluster, but
    // dev-dependencies are exempt).
    (
        "cluster",
        &[
            "core",
            "sim",
            "workloads",
            "platform",
            "telemetry",
            "forecast",
            "observe",
        ],
    ),
    ("observe", &["telemetry"]),
    // Top of the stack.
    (
        "bench",
        &[
            "stats",
            "sim",
            "workloads",
            "core",
            "platform",
            "telemetry",
            "cluster",
            "observe",
            "trace",
            "forecast",
        ],
    ),
    (
        "litmus",
        &[
            "stats",
            "sim",
            "workloads",
            "core",
            "platform",
            "telemetry",
            "cluster",
            "observe",
            "trace",
            "forecast",
        ],
    ),
    // The lint tool polices the DAG from outside it: no deps, and no
    // crate may depend on it.
    ("lint", &[]),
];

/// Allowed direct deps for `krate`, or `None` when the crate is not in
/// the table (itself a layering violation at the manifest level).
pub fn allowed_deps(krate: &str) -> Option<&'static [&'static str]> {
    DAG.iter().find(|(k, _)| *k == krate).map(|(_, deps)| *deps)
}

/// What the manifest reader extracts from one `Cargo.toml`.
#[derive(Debug, Default)]
pub struct ManifestFacts {
    /// `name = "…"` under `[package]`, with its line.
    pub name: Option<(String, u32)>,
    /// `litmus-*` entries under `[dependencies]`, with their lines.
    pub deps: Vec<(String, u32)>,
}

/// Reads the two facts the layering rule needs from TOML source. This
/// is a line-oriented reader, not a TOML parser — the workspace's
/// manifests are plain `key = value` tables, which is all it supports.
pub fn read_manifest(src: &str) -> ManifestFacts {
    let mut facts = ManifestFacts::default();
    let mut section = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        if section == "package" && key == "name" && facts.name.is_none() {
            facts.name = Some((value.trim().trim_matches('"').to_string(), lineno));
        }
        if section == "dependencies" && key.starts_with("litmus-") {
            facts.deps.push((key.to_string(), lineno));
        }
    }
    facts
}

/// Checks one crate's manifest against the DAG. `krate` is the crate
/// id derived from the path (directory name, or `litmus` for the
/// root); `rel_path` is used for reporting.
pub fn check_manifest(rel_path: &str, krate: &str, src: &str) -> Vec<Violation> {
    let facts = read_manifest(src);
    let snippet_of = |lineno: u32| {
        src.lines()
            .nth(lineno as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let Some(allowed) = allowed_deps(krate) else {
        let line = facts.name.as_ref().map(|&(_, l)| l).unwrap_or(1);
        return vec![Violation {
            rule: LAYERING.to_string(),
            file: rel_path.to_string(),
            line,
            snippet: snippet_of(line),
            message: format!(
                "crate `{krate}` is not in the layering table — add it to \
                 crates/lint/src/manifest.rs with its intended dependencies"
            ),
        }];
    };
    let mut violations = Vec::new();
    for (dep, line) in &facts.deps {
        let id = dep.trim_start_matches("litmus-");
        if !allowed.contains(&id) {
            violations.push(Violation {
                rule: LAYERING.to_string(),
                file: rel_path.to_string(),
                line: *line,
                snippet: snippet_of(*line),
                message: format!(
                    "crate `{krate}` must not depend on `{dep}` (allowed: {})",
                    if allowed.is_empty() {
                        "none".to_string()
                    } else {
                        allowed.join(", ")
                    }
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_is_acyclic_and_closed() {
        // Every allowed dep must itself be a table entry, and the
        // table must be topologically orderable (no cycles).
        for (krate, deps) in DAG {
            for dep in *deps {
                assert!(
                    allowed_deps(dep).is_some(),
                    "{krate} allows unknown crate {dep}"
                );
                assert_ne!(krate, dep, "{krate} depends on itself");
            }
        }
        // Kahn's algorithm over the table.
        let mut remaining: Vec<&(&str, &[&str])> = DAG.iter().collect();
        let mut placed: Vec<&str> = Vec::new();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|(krate, deps)| {
                if deps.iter().all(|d| placed.contains(d)) {
                    placed.push(krate);
                    false
                } else {
                    true
                }
            });
            assert!(remaining.len() < before, "cycle among {remaining:?}");
        }
    }

    #[test]
    fn reads_package_name_and_litmus_deps_only() {
        let src = "\
[package]
name = \"litmus-observe\"

[dependencies]
litmus-telemetry = { workspace = true }
proptest = { workspace = true }

[dev-dependencies]
litmus-cluster = { workspace = true }
";
        let facts = read_manifest(src);
        assert_eq!(facts.name, Some(("litmus-observe".to_string(), 2)));
        assert_eq!(facts.deps, vec![("litmus-telemetry".to_string(), 5)]);
    }

    #[test]
    fn forbidden_manifest_dep_fires_with_line() {
        let src = "\
[package]
name = \"litmus-telemetry\"

[dependencies]
litmus-cluster = { workspace = true }
";
        let violations = check_manifest("crates/telemetry/Cargo.toml", "telemetry", src);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, LAYERING);
        assert_eq!(violations[0].line, 5);
        assert!(violations[0].message.contains("litmus-cluster"));
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let src = "\
[package]
name = \"litmus-observe\"

[dependencies]
litmus-telemetry = { workspace = true }

[dev-dependencies]
litmus-cluster = { workspace = true }
litmus-platform = { workspace = true }
";
        assert!(check_manifest("crates/observe/Cargo.toml", "observe", src).is_empty());
    }

    #[test]
    fn unknown_crate_fires() {
        let src = "[package]\nname = \"litmus-newthing\"\n";
        let violations = check_manifest("crates/newthing/Cargo.toml", "newthing", src);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("not in the layering table"));
    }
}
