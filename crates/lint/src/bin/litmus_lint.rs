//! `litmus-lint` — run the workspace invariant lint.
//!
//! ```text
//! litmus-lint [--root PATH] [--format text|json] [--quiet]
//! litmus-lint --explain <rule>
//! litmus-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed violations, 2 usage/tool error.

use std::path::PathBuf;
use std::process::ExitCode;

use litmus_lint::rules;
use litmus_lint::{report, workspace};

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("litmus-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a path")?);
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format expects `text` or `json`, got {:?}",
                            other.unwrap_or("<missing>")
                        ))
                    }
                };
            }
            "--explain" => {
                let id = args.next().ok_or("--explain needs a rule id")?;
                return explain(&id);
            }
            "--list-rules" => {
                for rule in rules::RULES {
                    println!("{:<14} {}", rule.id, rule.summary);
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                print!("{HELP}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }

    let report = workspace::run(&root).map_err(|e| e.to_string())?;
    match format {
        Format::Text => {
            if !quiet || !report.clean() {
                print!("{}", report::render_text(&report));
            }
        }
        Format::Json => print!("{}", report::render_json(&report)),
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn explain(id: &str) -> Result<ExitCode, String> {
    let rule = rules::rule_info(id).ok_or_else(|| {
        format!(
            "unknown rule `{id}` — known rules: {}",
            rules::RULES
                .iter()
                .map(|r| r.id)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    println!("{} — {}\n", rule.id, rule.summary);
    println!("{}", rule.explain);
    Ok(ExitCode::SUCCESS)
}

const HELP: &str = "\
litmus-lint: static analyzer for the workspace's determinism and layering invariants

USAGE:
    litmus-lint [--root PATH] [--format text|json] [--quiet]
    litmus-lint --explain <rule>
    litmus-lint --list-rules

OPTIONS:
    --root PATH       Workspace root to scan (default: current directory)
    --format FORMAT   Report format: text (default) or json (CI artifact)
    --quiet           Print nothing when the workspace is clean
    --explain RULE    Print the rationale for one rule
    --list-rules      List rule ids with one-line summaries

Violations are suppressed only by an inline, reasoned pragma on (or
immediately above) the offending line:

    // lint:allow(<rule>[, <rule>...]): <reason>

Exit codes: 0 clean, 1 unsuppressed violations, 2 usage or I/O error.
";
