//! The rule engine: each determinism/layering invariant is a named
//! rule with an explanation, evaluated over the lexed token stream of
//! one file (manifest-level layering checks live in [`crate::manifest`]).

use crate::lexer::{self, Lexed, TokKind};
use crate::manifest;
use crate::pragma::{self, Pragma};
use crate::report::{Allow, Violation};

/// Rule ids. These are the names pragmas and `--explain` use; changing
/// one is a breaking change for every inline suppression in the tree.
pub const WALL_CLOCK: &str = "wall-clock";
pub const UNORDERED_ITER: &str = "unordered-iter";
pub const UNSEEDED_RNG: &str = "unseeded-rng";
pub const PANIC_IN_LIB: &str = "panic-in-lib";
pub const LAYERING: &str = "layering";
pub const PRAGMA: &str = "pragma";

/// One rule's id, one-line summary, and `--explain` paragraph.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub explain: &'static str,
}

/// Every rule the tool knows, in display order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: WALL_CLOCK,
        summary: "no wall-clock reads outside telemetry::profile and crates/bench",
        explain: "The replay engines promise byte-identical ClusterReports and telemetry \
JSONL across thread counts, slice vs event-driven stepping, and streaming vs materialized \
sources. That only holds if simulated state is a pure function of the trace and the seed — \
a single Instant::now() or SystemTime read smuggles the host's clock into the computation \
and the guarantee silently dies. Wall-clock time is allowed in exactly two places: the \
opt-in stage profiler (crates/telemetry/src/profile.rs), which is deliberately excluded \
from exports and equality, and crates/bench, whose whole job is measuring wall time. \
Anywhere else, derive time from the sim clock or suppress with a reason explaining why \
the reading can never feed simulated state.",
    },
    RuleInfo {
        id: UNORDERED_ITER,
        summary: "no HashMap/HashSet in crates that produce reports or exports",
        explain: "std's HashMap and HashSet iterate in a per-process randomized order \
(RandomState), so any export, report vector, or tie-break that observes that order \
diverges between runs — the exact class of bug the byte-identical JSONL tests exist to \
catch, except it surfaces later as an unexplainable cross-thread diff. In crates on the \
report/export path (cluster, telemetry, observe, trace, platform, and the root facade's \
lib/bin/example code) use BTreeMap/BTreeSet, or keep the hash container and sort before \
anything order-sensitive, suppressing with a reason that states why iteration order can \
never reach an output (e.g. lookup-only, or a commutative fold).",
    },
    RuleInfo {
        id: UNSEEDED_RNG,
        summary: "no thread_rng/random()/from_entropy — all randomness flows from a seed",
        explain: "Every stochastic choice in the workspace — workload bodies, intra-minute \
arrival placement, trace sampling — is a pure function of an explicit seed, which is what \
makes replays reproducible and proptest failures re-runnable. thread_rng(), random(), \
OsRng and from_entropy() draw from the OS entropy pool instead, producing runs nobody can \
ever reproduce. This rule has no sanctioned home anywhere in the tree, tests included: \
plumb a seed (or derive a stream from one with the vendored SplitMix/ChaCha shims) \
instead.",
    },
    RuleInfo {
        id: PANIC_IN_LIB,
        summary: "no unwrap/expect/panic! in non-test library code",
        explain: "Library crates return typed errors (each crate has an error module and a \
Result alias); a stray unwrap() turns a malformed trace row or an impossible config into \
a process abort that takes a whole replay (or a long study) down with it. unwrap, expect \
and panic! are therefore banned in library code. #[cfg(test)] modules, #[test] functions, \
integration tests, benches and binaries' main paths are exempt — panicking is how tests \
fail and how CLIs bail. For genuine invariants in library code (a value proven in-range \
two lines up), suppress with a reason that states the invariant.",
    },
    RuleInfo {
        id: LAYERING,
        summary: "crate dependencies must follow the declared DAG",
        explain: "The workspace has an intended dependency DAG — stats/sim/telemetry at the \
bottom; workloads, core, platform, forecast and trace in the middle; cluster above them; \
observe consuming only telemetry exports; bench and the root facade on top; the lint \
crate outside entirely. The DAG is what keeps telemetry reusable, keeps observe honest \
(it analyzes exported JSONL, it cannot reach into live cluster state), and keeps build \
times sane. This rule checks both [dependencies] in every crate manifest and litmus_* \
paths in lib/bin source against the table in crates/lint/src/manifest.rs. \
Dev-dependencies and test/example code are exempt: tests may cross layers. Adding a new \
crate means adding it to the table — a deliberate, reviewed layering decision.",
    },
    RuleInfo {
        id: PRAGMA,
        summary: "lint:allow pragmas must be well-formed, known, reasoned, and effective",
        explain: "Suppressions are part of the invariant record: `// lint:allow(<rule>): \
<reason>` must name real rules, carry a non-empty reason, and actually suppress a \
violation on the line it covers (a trailing pragma covers its own line, an own-line \
pragma the next code line). Unknown rule names, missing reasons, malformed syntax, and \
pragmas that suppress nothing are each violations of this meta-rule, so the suppression \
inventory the tool prints stays truthful as code moves. Pragma violations cannot \
themselves be suppressed.",
    },
];

/// Rule ids a pragma may name (everything except the meta-rule).
pub fn suppressible_rules() -> Vec<&'static str> {
    RULES
        .iter()
        .map(|r| r.id)
        .filter(|&id| id != PRAGMA)
        .collect()
}

/// Looks up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// How a file participates in the build — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `src/**` of a crate (excluding `src/bin/`).
    Lib,
    /// `src/bin/**` and `build.rs`.
    Bin,
    /// `tests/**`.
    Test,
    /// `examples/**`.
    Example,
    /// `benches/**`.
    Bench,
}

/// Identity of the file being scanned.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    /// Crate id: the directory name under `crates/`, or `litmus` for
    /// the root facade.
    pub krate: &'a str,
    pub class: FileClass,
}

/// Crates whose outputs are exported or compared byte-for-byte; the
/// unordered-iter rule applies to their non-test code.
pub const EXPORT_CRATES: &[&str] = &[
    "cluster",
    "telemetry",
    "observe",
    "trace",
    "platform",
    "litmus",
];

/// Identifiers that read OS entropy.
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct ScanOut {
    pub violations: Vec<Violation>,
    pub allows: Vec<Allow>,
}

/// Scans one file's source against every applicable rule.
pub fn scan_source(ctx: &FileCtx<'_>, src: &str) -> ScanOut {
    let lexed = lexer::lex(src);
    let exempt = lexer::test_exempt_ranges(&lexed);
    let known = suppressible_rules();
    let (mut pragmas, pragma_errors) = pragma::extract(&lexed, &known);

    let mut found: Vec<(u32, &'static str, String)> = Vec::new();
    token_rules(ctx, &lexed, &exempt, &mut found);

    let mut out = ScanOut::default();
    for (line, rule, message) in found {
        match claim_pragma(&mut pragmas, rule, line) {
            Some(reason) => out.allows.push(Allow {
                rule: rule.to_string(),
                file: ctx.rel_path.to_string(),
                line,
                reason,
            }),
            None => out.violations.push(Violation {
                rule: rule.to_string(),
                file: ctx.rel_path.to_string(),
                line,
                snippet: lexed.snippet(line),
                message,
            }),
        }
    }
    for err in pragma_errors {
        out.violations.push(Violation {
            rule: PRAGMA.to_string(),
            file: ctx.rel_path.to_string(),
            line: err.line,
            snippet: lexed.snippet(err.line),
            message: err.message,
        });
    }
    for unused in pragmas.iter().filter(|p| !p.used) {
        out.violations.push(Violation {
            rule: PRAGMA.to_string(),
            file: ctx.rel_path.to_string(),
            line: unused.line,
            snippet: lexed.snippet(unused.line),
            message: format!(
                "pragma suppresses nothing: no {} violation on line {} (is it on the wrong line?)",
                unused.rules.join("/"),
                if unused.applies_to == 0 {
                    "<none>".to_string()
                } else {
                    unused.applies_to.to_string()
                }
            ),
        });
    }
    out
}

/// Marks the first matching pragma used and returns its reason.
fn claim_pragma(pragmas: &mut [Pragma], rule: &str, line: u32) -> Option<String> {
    let hit = pragmas
        .iter_mut()
        .find(|p| p.applies_to == line && p.rules.iter().any(|r| r == rule))?;
    hit.used = true;
    Some(hit.reason.clone())
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// Runs every token-level rule over one lexed file, appending
/// `(line, rule, message)` candidates (suppression is applied later).
fn token_rules(
    ctx: &FileCtx<'_>,
    lexed: &Lexed,
    exempt: &[(u32, u32)],
    found: &mut Vec<(u32, &'static str, String)>,
) {
    let wall_clock_applies =
        ctx.krate != "bench" && ctx.rel_path != "crates/telemetry/src/profile.rs";
    let unordered_applies = EXPORT_CRATES.contains(&ctx.krate)
        && matches!(
            ctx.class,
            FileClass::Lib | FileClass::Bin | FileClass::Example
        );
    let panic_applies = ctx.class == FileClass::Lib;
    let layering_applies = matches!(ctx.class, FileClass::Lib | FileClass::Bin);
    let allowed = manifest::allowed_deps(ctx.krate);

    let toks = &lexed.toks;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.in_attr {
            continue;
        }
        let line = tok.line;
        let next_is = |c: char| toks.get(i + 1).is_some_and(|t| t.is_punct(c));
        let path_call_of = |name: &str| {
            // `<name> :: <tok[i]>`, e.g. `Instant::now`.
            toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident(name))
        };

        if wall_clock_applies {
            if tok.text == "SystemTime" {
                found.push((
                    line,
                    WALL_CLOCK,
                    "SystemTime reads the host clock; sim paths must derive time from the \
                     sim clock"
                        .to_string(),
                ));
            } else if tok.text == "Instant" && path_call_of("now") {
                found.push((
                    line,
                    WALL_CLOCK,
                    "Instant::now() reads the host clock; wall-clock time is allowed only \
                     in telemetry::profile and crates/bench"
                        .to_string(),
                ));
            }
        }

        if unordered_applies
            && (tok.text == "HashMap" || tok.text == "HashSet")
            && !in_ranges(exempt, line)
        {
            found.push((
                line,
                UNORDERED_ITER,
                format!(
                    "{} iterates in randomized order; this crate feeds reports/exports — \
                     use BTreeMap/BTreeSet or sort before anything order-sensitive",
                    tok.text
                ),
            ));
        }

        if ENTROPY_IDENTS.contains(&tok.text.as_str()) || (tok.text == "random" && next_is('(')) {
            found.push((
                line,
                UNSEEDED_RNG,
                format!(
                    "`{}` draws from OS entropy; all randomness must flow from an explicit \
                     seed",
                    tok.text
                ),
            ));
        }

        if panic_applies && !in_ranges(exempt, line) {
            if (tok.text == "unwrap" || tok.text == "expect") && next_is('(') {
                found.push((
                    line,
                    PANIC_IN_LIB,
                    format!(
                        "`{}()` can abort a replay mid-flight; return the crate's typed \
                         error instead",
                        tok.text
                    ),
                ));
            } else if tok.text == "panic" && next_is('!') {
                found.push((
                    line,
                    PANIC_IN_LIB,
                    "`panic!` in library code; return the crate's typed error instead".to_string(),
                ));
            }
        }

        if layering_applies && !in_ranges(exempt, line) {
            if let Some(dep) = tok.text.strip_prefix("litmus_") {
                // Only identifiers naming a crate in the DAG table are
                // crate references — `litmus_normalized()` and friends
                // are ordinary method names. A dependency on a crate
                // the table doesn't know is caught at the manifest
                // level.
                if let (Some(allowed), Some(_)) = (allowed, manifest::allowed_deps(dep)) {
                    if dep != ctx.krate && !allowed.contains(&dep) {
                        found.push((
                            line,
                            LAYERING,
                            format!(
                                "crate `{}` must not reach `litmus_{dep}` (allowed: {})",
                                ctx.krate,
                                if allowed.is_empty() {
                                    "none".to_string()
                                } else {
                                    allowed.join(", ")
                                }
                            ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(rel_path: &'a str, krate: &'a str, class: FileClass) -> FileCtx<'a> {
        FileCtx {
            rel_path,
            krate,
            class,
        }
    }

    fn rules_fired(out: &ScanOut) -> Vec<&str> {
        out.violations.iter().map(|v| v.rule.as_str()).collect()
    }

    #[test]
    fn wall_clock_fires_with_location() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let out = scan_source(
            &ctx("crates/cluster/src/driver.rs", "cluster", FileClass::Lib),
            src,
        );
        let v = out
            .violations
            .iter()
            .find(|v| v.rule == WALL_CLOCK)
            .expect("wall-clock fires");
        assert_eq!(v.line, 2);
        assert!(v.snippet.contains("Instant::now"));
    }

    #[test]
    fn wall_clock_exempt_in_bench_and_profile() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let bench = scan_source(
            &ctx("crates/bench/src/lib.rs", "bench", FileClass::Lib),
            src,
        );
        assert!(rules_fired(&bench).is_empty());
        let profile = scan_source(
            &ctx(
                "crates/telemetry/src/profile.rs",
                "telemetry",
                FileClass::Lib,
            ),
            src,
        );
        assert!(rules_fired(&profile).is_empty());
        let elsewhere = scan_source(
            &ctx(
                "crates/telemetry/src/metrics.rs",
                "telemetry",
                FileClass::Lib,
            ),
            src,
        );
        assert_eq!(rules_fired(&elsewhere), vec![WALL_CLOCK]);
    }

    #[test]
    fn unordered_iter_scoped_to_export_crates_and_non_test_code() {
        let src = "use std::collections::HashMap;\n";
        let hit = scan_source(
            &ctx("crates/trace/src/ingest.rs", "trace", FileClass::Lib),
            src,
        );
        assert_eq!(rules_fired(&hit), vec![UNORDERED_ITER]);
        let stats = scan_source(
            &ctx("crates/stats/src/table.rs", "stats", FileClass::Lib),
            src,
        );
        assert!(rules_fired(&stats).is_empty());
        let test = scan_source(
            &ctx("crates/trace/tests/roundtrip.rs", "trace", FileClass::Test),
            src,
        );
        assert!(rules_fired(&test).is_empty());
    }

    #[test]
    fn unseeded_rng_fires_everywhere_even_tests() {
        let src = "fn f() { let mut rng = thread_rng(); let x: f64 = random(); }\n";
        let out = scan_source(
            &ctx("crates/stats/tests/t.rs", "stats", FileClass::Test),
            src,
        );
        assert_eq!(rules_fired(&out), vec![UNSEEDED_RNG, UNSEEDED_RNG]);
    }

    #[test]
    fn panic_in_lib_fires_only_in_lib_code() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let lib = scan_source(
            &ctx("crates/core/src/model.rs", "core", FileClass::Lib),
            src,
        );
        assert_eq!(rules_fired(&lib), vec![PANIC_IN_LIB]);
        for class in [
            FileClass::Bin,
            FileClass::Test,
            FileClass::Example,
            FileClass::Bench,
        ] {
            let out = scan_source(&ctx("crates/core/tests/t.rs", "core", class), src);
            assert!(rules_fired(&out).is_empty(), "fired for {class:?}");
        }
    }

    #[test]
    fn panic_in_lib_exempts_cfg_test_mod_but_not_cfg_not_test() {
        let src = "\
pub fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
        panic!(\"boom\");
    }
}
";
        let out = scan_source(
            &ctx("crates/core/src/model.rs", "core", FileClass::Lib),
            src,
        );
        assert!(rules_fired(&out).is_empty());

        let src = "#[cfg(not(test))]\npub fn f() { Some(1).unwrap(); }\n";
        let out = scan_source(
            &ctx("crates/core/src/model.rs", "core", FileClass::Lib),
            src,
        );
        assert_eq!(rules_fired(&out), vec![PANIC_IN_LIB]);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        let out = scan_source(
            &ctx("crates/core/src/model.rs", "core", FileClass::Lib),
            src,
        );
        assert!(rules_fired(&out).is_empty());
    }

    #[test]
    fn quoted_and_commented_patterns_do_not_fire() {
        let src = "\
/// Doc example: `Instant::now()` and `x.unwrap()` and `HashMap`.
// thread_rng() in a comment
pub fn f() -> &'static str {
    \"SystemTime::now() quoted\"
}
";
        let out = scan_source(
            &ctx("crates/cluster/src/driver.rs", "cluster", FileClass::Lib),
            src,
        );
        assert!(rules_fired(&out).is_empty());
    }

    #[test]
    fn layering_fires_on_forbidden_use() {
        let src = "use litmus_cluster::ClusterReport;\n";
        let out = scan_source(
            &ctx("crates/observe/src/slo.rs", "observe", FileClass::Lib),
            src,
        );
        assert_eq!(rules_fired(&out), vec![LAYERING]);
        let ok = scan_source(
            &ctx("crates/observe/src/slo.rs", "observe", FileClass::Lib),
            "use litmus_telemetry::Timeline;\n",
        );
        assert!(rules_fired(&ok).is_empty());
        // Tests may cross layers (dev-dependencies).
        let test = scan_source(
            &ctx("crates/observe/tests/slo.rs", "observe", FileClass::Test),
            src,
        );
        assert!(rules_fired(&test).is_empty());
    }

    #[test]
    fn suppression_records_an_allow_and_unused_pragma_errors() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } \
// lint:allow(panic-in-lib): x proven Some above\n";
        let out = scan_source(
            &ctx("crates/core/src/model.rs", "core", FileClass::Lib),
            src,
        );
        assert!(out.violations.is_empty());
        assert_eq!(out.allows.len(), 1);
        assert_eq!(out.allows[0].reason, "x proven Some above");

        // Pragma one line too late: the violation fires AND the pragma
        // is flagged unused.
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
// lint:allow(panic-in-lib): wrong line\npub fn g() {}\n";
        let out = scan_source(
            &ctx("crates/core/src/model.rs", "core", FileClass::Lib),
            src,
        );
        let fired = rules_fired(&out);
        assert!(fired.contains(&PANIC_IN_LIB));
        assert!(fired.contains(&PRAGMA));
    }

    #[test]
    fn pragma_violations_cannot_be_suppressed() {
        let src = "// lint:allow(no-such): x // lint:allow(pragma): nice try\n";
        let out = scan_source(
            &ctx("crates/core/src/model.rs", "core", FileClass::Lib),
            src,
        );
        assert!(rules_fired(&out).contains(&PRAGMA));
    }
}
