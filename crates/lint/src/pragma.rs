//! Inline suppression pragmas.
//!
//! The only way to silence a rule is an explained, in-place comment:
//!
//! ```text
//! let started = Instant::now(); // lint:allow(wall-clock): progress output only
//! // lint:allow(panic-in-lib, unordered-iter): reason covering the next line
//! risky_line();
//! ```
//!
//! A trailing pragma covers its own line; an own-line pragma covers the
//! next line that carries code. Every pragma must name known rules and
//! carry a non-empty reason after the colon — a malformed, unknown or
//! unused pragma is itself a violation (rule `pragma`), so suppressions
//! can never rot silently.

use crate::lexer::Lexed;

/// One parsed `lint:allow` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Line the pragma comment sits on.
    pub line: u32,
    /// Line whose violations it suppresses.
    pub applies_to: u32,
    pub rules: Vec<String>,
    pub reason: String,
    /// Set during rule evaluation; an unused pragma is an error.
    pub used: bool,
}

/// A defect in a pragma itself (reported under the `pragma` rule).
#[derive(Debug, Clone)]
pub struct PragmaError {
    pub line: u32,
    pub message: String,
}

/// The marker every pragma starts with.
pub const MARKER: &str = "lint:allow";

/// Extracts pragmas (and pragma defects) from a file's comments.
/// `known_rules` are the suppressible rule ids.
pub fn extract(lexed: &Lexed, known_rules: &[&str]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for comment in &lexed.comments {
        if comment.doc {
            continue;
        }
        let Some(at) = comment.text.find(MARKER) else {
            continue;
        };
        let rest = &comment.text[at + MARKER.len()..];
        match parse_body(rest, known_rules) {
            Ok((rules, reason)) => {
                let applies_to = if comment.own_line {
                    // Own-line pragma: covers the next code line. A
                    // pragma at end of file covers nothing and will be
                    // reported as unused.
                    lexed.next_code_line(comment.line).unwrap_or(0)
                } else {
                    comment.line
                };
                pragmas.push(Pragma {
                    line: comment.line,
                    applies_to,
                    rules,
                    reason,
                    used: false,
                });
            }
            Err(message) => errors.push(PragmaError {
                line: comment.line,
                message,
            }),
        }
    }
    (pragmas, errors)
}

/// Parses `(<rule>[, <rule>…]): <reason>` after the marker.
fn parse_body(rest: &str, known_rules: &[&str]) -> Result<(Vec<String>, String), String> {
    let rest = rest.trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return Err(format!(
            "malformed pragma: expected `{MARKER}(<rule>): <reason>`"
        ));
    };
    let Some(close) = body.find(')') else {
        return Err("malformed pragma: missing `)` after rule list".to_string());
    };
    let mut rules = Vec::new();
    for raw in body[..close].split(',') {
        let rule = raw.trim();
        if rule.is_empty() {
            return Err("malformed pragma: empty rule name in list".to_string());
        }
        if !known_rules.contains(&rule) {
            return Err(format!(
                "unknown rule `{rule}` in pragma (known: {})",
                known_rules.join(", ")
            ));
        }
        rules.push(rule.to_string());
    }
    if rules.is_empty() {
        return Err("malformed pragma: empty rule list".to_string());
    }
    let after = &body[close + 1..];
    let Some(reason) = after.trim_start().strip_prefix(':') else {
        return Err("pragma missing `: <reason>` — every suppression must say why".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("pragma missing reason text after `:`".to_string());
    }
    Ok((rules, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const RULES: &[&str] = &["wall-clock", "panic-in-lib"];

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let lexed = lex("bad(); // lint:allow(wall-clock): example timing only\n");
        let (pragmas, errors) = extract(&lexed, RULES);
        assert!(errors.is_empty());
        assert_eq!(pragmas.len(), 1);
        assert_eq!(pragmas[0].applies_to, 1);
        assert_eq!(pragmas[0].reason, "example timing only");
    }

    #[test]
    fn own_line_pragma_covers_next_code_line() {
        let lexed = lex("// lint:allow(panic-in-lib): infallible by construction\n\nbad();\n");
        let (pragmas, errors) = extract(&lexed, RULES);
        assert!(errors.is_empty());
        assert_eq!(pragmas[0].applies_to, 3);
    }

    #[test]
    fn multiple_rules_one_pragma() {
        let lexed = lex("bad(); // lint:allow(wall-clock, panic-in-lib): both fine here\n");
        let (pragmas, _) = extract(&lexed, RULES);
        assert_eq!(pragmas[0].rules, vec!["wall-clock", "panic-in-lib"]);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let lexed = lex("bad(); // lint:allow(no-such-rule): whatever\n");
        let (pragmas, errors) = extract(&lexed, RULES);
        assert!(pragmas.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("unknown rule `no-such-rule`"));
    }

    #[test]
    fn missing_reason_is_an_error() {
        for src in [
            "bad(); // lint:allow(wall-clock)\n",
            "bad(); // lint:allow(wall-clock):\n",
            "bad(); // lint:allow(wall-clock):   \n",
        ] {
            let (pragmas, errors) = extract(&lex(src), RULES);
            assert!(pragmas.is_empty(), "parsed from {src:?}");
            assert_eq!(errors.len(), 1, "no error from {src:?}");
        }
    }

    #[test]
    fn malformed_pragma_is_an_error() {
        let (_, errors) = extract(&lex("// lint:allow wall-clock: no parens\n"), RULES);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("malformed"));
    }

    #[test]
    fn doc_comments_never_carry_pragmas() {
        let src = "\
/// Example: `// lint:allow(wall-clock): reason` suppresses it.
//! And so does `// lint:allow wall-clock` malformed prose.
/** block doc lint:allow(bogus-rule): nope */
fn f() {}
";
        let (pragmas, errors) = extract(&lex(src), RULES);
        assert!(pragmas.is_empty());
        assert!(errors.is_empty());
    }
}
