//! Workspace discovery: walks the repository, classifies every `.rs`
//! file (which crate, which build role), runs the rule engine over
//! each, and checks every crate manifest against the DAG.

use std::fs;
use std::path::{Path, PathBuf};

use crate::manifest;
use crate::report::Report;
use crate::rules::{self, FileClass, FileCtx};

/// A failure of the tool itself (not a lint finding). Exit code 2.
#[derive(Debug)]
pub enum LintError {
    Io { path: String, message: String },
    NotAWorkspace(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io { path, message } => write!(f, "io error on {path}: {message}"),
            LintError::NotAWorkspace(root) => {
                write!(f, "{root} has no Cargo.toml — pass the workspace root")
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Directories never scanned: VCS state, build output, and the
/// vendored third-party shims (stand-ins for external crates — they
/// are not first-party code and sit outside the DAG).
fn skip_dir(name: &str) -> bool {
    name.starts_with('.')
        || name.starts_with("target")
        || name == "vendor"
        || name == "node_modules"
}

/// Runs the full lint over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<Report, LintError> {
    if !root.join("Cargo.toml").is_file() {
        return Err(LintError::NotAWorkspace(root.display().to_string()));
    }
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    walk(root, &mut sources, &mut manifests)?;
    // read_dir order is platform-dependent; sort so reports (and the
    // JSON artifact) are byte-stable.
    sources.sort();
    manifests.sort();

    let mut report = Report::default();
    for path in &sources {
        let rel = rel_of(root, path);
        let Some((krate, class)) = classify(&rel) else {
            continue;
        };
        let src = read(path)?;
        let ctx = FileCtx {
            rel_path: &rel,
            krate: &krate,
            class,
        };
        let out = rules::scan_source(&ctx, &src);
        report.violations.extend(out.violations);
        report.allows.extend(out.allows);
        report.files_scanned += 1;
    }
    for path in &manifests {
        let rel = rel_of(root, path);
        let Some(krate) = manifest_crate(&rel) else {
            continue;
        };
        let src = read(path)?;
        report
            .violations
            .extend(manifest::check_manifest(&rel, &krate, &src));
        report.manifests_checked += 1;
    }
    report.finish();
    Ok(report)
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|e| LintError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn walk(
    dir: &Path,
    sources: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !skip_dir(&name) {
                walk(&path, sources, manifests)?;
            }
        } else if name.ends_with(".rs") {
            sources.push(path);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        }
    }
    Ok(())
}

/// Crate id + build role of a workspace-relative `.rs` path, or `None`
/// for files outside any crate layout (nothing in-tree today).
pub fn classify(rel: &str) -> Option<(String, FileClass)> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, rest) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        (parts[1].to_string(), &parts[2..])
    } else {
        ("litmus".to_string(), &parts[..])
    };
    let class = match *rest.first()? {
        "src" => {
            if rest.get(1) == Some(&"bin") {
                FileClass::Bin
            } else {
                FileClass::Lib
            }
        }
        "tests" => FileClass::Test,
        "examples" => FileClass::Example,
        "benches" => FileClass::Bench,
        "build.rs" => FileClass::Bin,
        _ => return None,
    };
    Some((krate, class))
}

/// Crate id owning a workspace-relative `Cargo.toml`, or `None` for
/// manifests the DAG does not govern.
pub fn manifest_crate(rel: &str) -> Option<String> {
    if rel == "Cargo.toml" {
        return Some("litmus".to_string());
    }
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, "Cargo.toml"] => Some((*krate).to_string()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layouts_in_tree() {
        assert_eq!(
            classify("crates/cluster/src/driver.rs"),
            Some(("cluster".to_string(), FileClass::Lib))
        );
        assert_eq!(
            classify("crates/bench/src/bin/bench_trajectory.rs"),
            Some(("bench".to_string(), FileClass::Bin))
        );
        assert_eq!(
            classify("crates/cluster/tests/event_engine.rs"),
            Some(("cluster".to_string(), FileClass::Test))
        );
        assert_eq!(
            classify("crates/workloads/examples/calibrate.rs"),
            Some(("workloads".to_string(), FileClass::Example))
        );
        assert_eq!(
            classify("src/lib.rs"),
            Some(("litmus".to_string(), FileClass::Lib))
        );
        assert_eq!(
            classify("examples/autoscale_study.rs"),
            Some(("litmus".to_string(), FileClass::Example))
        );
        assert_eq!(
            classify("tests/trace_replay.rs"),
            Some(("litmus".to_string(), FileClass::Test))
        );
        assert_eq!(classify("README.md".trim_end_matches(".md")), None);
    }

    #[test]
    fn manifest_ownership() {
        assert_eq!(manifest_crate("Cargo.toml"), Some("litmus".to_string()));
        assert_eq!(
            manifest_crate("crates/observe/Cargo.toml"),
            Some("observe".to_string())
        );
        assert_eq!(manifest_crate("crates/observe/extra/Cargo.toml"), None);
    }

    #[test]
    fn skip_list_covers_build_output_and_vendor() {
        for name in [".git", "target", "target-bench", "vendor", ".github"] {
            assert!(skip_dir(name), "{name} should be skipped");
        }
        for name in ["crates", "src", "tests", "examples", "scripts"] {
            assert!(!skip_dir(name), "{name} should be walked");
        }
    }
}
