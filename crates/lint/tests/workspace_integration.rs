//! Integration tests: the full workspace walk over synthetic
//! workspaces, pragma edge cases end-to-end, and the compiled
//! `litmus-lint` binary (exit codes, text and JSON output).
//!
//! Planted violations live inside string literals here, so scanning
//! this test file itself never trips a rule.

use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

use litmus_lint::{workspace, Report};

static NEXT: AtomicUsize = AtomicUsize::new(0);

/// A throwaway workspace under the OS temp dir; removed on drop.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "litmus-lint-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&root).expect("create temp workspace");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n")
            .expect("write root manifest");
        TempWs { root }
    }

    fn file(&self, rel: &str, content: &str) -> &Self {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("rel has a parent")).expect("create parent dirs");
        fs::write(path, content).expect("write file");
        self
    }

    fn run(&self) -> Report {
        workspace::run(&self.root).expect("lint run succeeds")
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn fired(report: &Report) -> Vec<(&str, &str, u32)> {
    report
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.file.as_str(), v.line))
        .collect()
}

#[test]
fn every_rule_fires_on_a_planted_violation() {
    let ws = TempWs::new("all-rules");
    ws.file(
        "crates/cluster/src/driver.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    )
    .file(
        "crates/observe/src/lib.rs",
        "pub type Index = std::collections::HashMap<u32, u32>;\n",
    )
    .file(
        "crates/stats/tests/rng.rs",
        "fn sample() -> u64 { rand::thread_rng().next_u64() }\n",
    )
    .file(
        "crates/core/src/lib.rs",
        "pub fn pick(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .file(
        "crates/telemetry/src/lib.rs",
        "use litmus_cluster::ClusterReport;\n",
    )
    .file(
        "crates/sim/src/lib.rs",
        "// lint:allow(wall-clock): covers nothing on the next line\npub fn idle() {}\n",
    )
    .file(
        "crates/core/Cargo.toml",
        "[package]\nname = \"litmus-core\"\n\n[dependencies]\nlitmus-cluster = { workspace = true }\n",
    );

    let report = ws.run();
    let hits = fired(&report);
    assert!(hits.contains(&("wall-clock", "crates/cluster/src/driver.rs", 1)));
    assert!(hits.contains(&("unordered-iter", "crates/observe/src/lib.rs", 1)));
    assert!(hits.contains(&("unseeded-rng", "crates/stats/tests/rng.rs", 1)));
    assert!(hits.contains(&("panic-in-lib", "crates/core/src/lib.rs", 1)));
    assert!(hits.contains(&("layering", "crates/telemetry/src/lib.rs", 1)));
    assert!(hits.contains(&("pragma", "crates/sim/src/lib.rs", 1)));
    // Manifest-level layering: core must not depend on cluster.
    assert!(hits.contains(&("layering", "crates/core/Cargo.toml", 5)));
    assert_eq!(report.files_scanned, 6);
    assert_eq!(report.manifests_checked, 2);
}

#[test]
fn sanctioned_wall_clock_zones_stay_silent() {
    let src = "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    let ws = TempWs::new("clock-zones");
    ws.file("crates/bench/src/lib.rs", src)
        .file("crates/telemetry/src/profile.rs", src);
    let report = ws.run();
    assert!(report.clean(), "violations: {:?}", fired(&report));
}

#[test]
fn unordered_iter_ignores_non_export_crates_and_tests() {
    let src = "pub type Index = std::collections::HashMap<u32, u32>;\n";
    let ws = TempWs::new("hash-scope");
    ws.file("crates/stats/src/lib.rs", src)
        .file("crates/observe/tests/query.rs", src);
    let report = ws.run();
    assert!(report.clean(), "violations: {:?}", fired(&report));
}

#[test]
fn cfg_test_modules_in_lib_code_are_exempt_from_panic_rule() {
    let ws = TempWs::new("cfg-test");
    ws.file(
        "crates/core/src/lib.rs",
        "pub fn live() {}\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn t() { Some(1).unwrap(); }\n\
         }\n",
    );
    let report = ws.run();
    assert!(report.clean(), "violations: {:?}", fired(&report));
}

#[test]
fn trailing_pragma_suppresses_and_is_inventoried() {
    let ws = TempWs::new("pragma-trailing");
    ws.file(
        "crates/core/src/lib.rs",
        "pub fn pick(x: Option<u32>) -> u32 { x.unwrap() } \
         // lint:allow(panic-in-lib): proven Some by caller contract\n",
    );
    let report = ws.run();
    assert!(report.clean(), "violations: {:?}", fired(&report));
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].rule, "panic-in-lib");
    assert_eq!(report.allows[0].reason, "proven Some by caller contract");
}

#[test]
fn own_line_pragma_covers_the_next_code_line() {
    let ws = TempWs::new("pragma-own-line");
    ws.file(
        "crates/core/src/lib.rs",
        "// lint:allow(panic-in-lib): validated one call up\n\
         pub fn pick(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let report = ws.run();
    assert!(report.clean(), "violations: {:?}", fired(&report));
    assert_eq!(report.allows.len(), 1);
}

#[test]
fn one_pragma_may_name_multiple_rules() {
    let ws = TempWs::new("pragma-multi");
    ws.file(
        "crates/cluster/src/lib.rs",
        "pub type T = (std::collections::HashMap<u32, u32>, std::time::SystemTime); \
         // lint:allow(unordered-iter, wall-clock): lookup-only cache stamped at ingest\n",
    );
    let report = ws.run();
    assert!(report.clean(), "violations: {:?}", fired(&report));
    // Both rules drew on the same pragma.
    let rules: Vec<&str> = report.allows.iter().map(|a| a.rule.as_str()).collect();
    assert!(rules.contains(&"unordered-iter"));
    assert!(rules.contains(&"wall-clock"));
}

#[test]
fn pragma_defects_are_violations_of_the_meta_rule() {
    let ws = TempWs::new("pragma-defects");
    ws.file(
        "crates/core/src/a.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
         // lint:allow(panic-in-lib): one line too late\n\
         pub fn g() {}\n",
    )
    .file(
        "crates/core/src/b.rs",
        "pub fn f() {} // lint:allow(no-such-rule): unknown id\n",
    )
    .file(
        "crates/core/src/c.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(panic-in-lib)\n",
    );
    let report = ws.run();
    let hits = fired(&report);
    // a.rs: the unwrap still fires AND the mispositioned pragma is unused.
    assert!(hits.contains(&("panic-in-lib", "crates/core/src/a.rs", 1)));
    assert!(hits.contains(&("pragma", "crates/core/src/a.rs", 2)));
    // b.rs: unknown rule id.
    assert!(hits.contains(&("pragma", "crates/core/src/b.rs", 1)));
    // c.rs: missing reason — the suppression does not take effect.
    assert!(hits.contains(&("pragma", "crates/core/src/c.rs", 1)));
    assert!(hits.contains(&("panic-in-lib", "crates/core/src/c.rs", 1)));
    assert!(report.allows.is_empty());
}

fn lint_bin(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_litmus-lint"))
        .args(args)
        .output()
        .expect("spawn litmus-lint")
}

#[test]
fn bin_exits_zero_on_a_clean_workspace() {
    let ws = TempWs::new("bin-clean");
    ws.file("crates/core/src/lib.rs", "pub fn ok() {}\n");
    let out = lint_bin(&["--root", ws.root.to_str().expect("utf-8 temp path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn bin_exits_one_and_names_the_violation() {
    let ws = TempWs::new("bin-dirty");
    ws.file(
        "crates/core/src/lib.rs",
        "pub fn pick(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let out = lint_bin(&["--root", ws.root.to_str().expect("utf-8 temp path")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(stdout.contains("panic-in-lib: crates/core/src/lib.rs:1"));
    assert!(stdout.contains("1 violation(s)"));
}

#[test]
fn bin_json_report_carries_violations_and_suppressions() {
    let ws = TempWs::new("bin-json");
    ws.file(
        "crates/core/src/lib.rs",
        "pub fn a(x: Option<u32>) -> u32 { x.unwrap() }\n\
         pub fn b(x: Option<u32>) -> u32 { x.unwrap() } \
         // lint:allow(panic-in-lib): proven Some by caller contract\n",
    );
    let out = lint_bin(&[
        "--root",
        ws.root.to_str().expect("utf-8 temp path"),
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8(out.stdout).expect("utf-8 json");
    assert!(json.contains("\"violation_count\": 1"));
    assert!(json.contains("\"rule\": \"panic-in-lib\""));
    assert!(json.contains("\"reason\": \"proven Some by caller contract\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn bin_usage_errors_exit_two() {
    let missing = lint_bin(&["--root", "/nonexistent/workspace/path"]);
    assert_eq!(missing.status.code(), Some(2));
    let unknown_rule = lint_bin(&["--explain", "no-such-rule"]);
    assert_eq!(unknown_rule.status.code(), Some(2));
    let unknown_flag = lint_bin(&["--frobnicate"]);
    assert_eq!(unknown_flag.status.code(), Some(2));
}

#[test]
fn bin_explains_and_lists_rules() {
    let explain = lint_bin(&["--explain", "wall-clock"]);
    assert_eq!(explain.status.code(), Some(0));
    let text = String::from_utf8(explain.stdout).expect("utf-8 explain");
    assert!(text.contains("telemetry::profile") || text.contains("crates/bench"));

    let list = lint_bin(&["--list-rules"]);
    let text = String::from_utf8(list.stdout).expect("utf-8 list");
    for id in [
        "wall-clock",
        "unordered-iter",
        "unseeded-rng",
        "panic-in-lib",
        "layering",
        "pragma",
    ] {
        assert!(text.contains(id), "missing {id}");
    }
}

/// Acceptance check: planting a wall-clock read in the real cluster
/// driver must fail the lint with the correct rule id and file:line.
#[test]
fn planted_wall_clock_in_real_driver_is_caught() {
    let real = concat!(env!("CARGO_MANIFEST_DIR"), "/../cluster/src/driver.rs");
    let src = fs::read_to_string(real).expect("read the real cluster driver");
    let planted =
        format!("{src}\nfn lint_probe() -> std::time::Instant {{ std::time::Instant::now() }}\n");
    let line = planted.lines().count() as u32;

    let ws = TempWs::new("driver-acceptance");
    ws.file("crates/cluster/src/driver.rs", &planted);
    let out = lint_bin(&["--root", ws.root.to_str().expect("utf-8 temp path")]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "planted clock must fail the lint"
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    let expected = format!("wall-clock: crates/cluster/src/driver.rs:{line}");
    assert!(
        stdout.contains(&expected),
        "expected {expected:?} in:\n{stdout}"
    );
}
