use litmus_core::{CongestionIndex, DiscountModel, LitmusReading, StartupBaseline};
use litmus_sim::ExecutionProfile;
use litmus_workloads::Language;

use crate::harness::CoRunHarness;
use crate::Result;

/// One congestion observation: a Litmus probe and the level it indexed
/// to (paper Fig. 7's y-axis).
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionSample {
    /// Simulation time when the probe was launched, ms.
    pub at_ms: u64,
    /// The probe reading.
    pub reading: LitmusReading,
    /// Blended congestion level from the congestion-table inverse
    /// lookup.
    pub level: f64,
}

/// Periodic Litmus-test congestion monitoring — the paper's §5.1
/// observation that "evaluating congestion also assists providers in
/// estimating remaining resources and making informed decisions
/// regarding job scheduling", made concrete.
///
/// The monitor owns a startup-only probe profile; each
/// [`CongestionMonitor::sample`] runs it in the harness's measurement
/// slot (exactly what a newly-launched function's startup would do) and
/// indexes the reading against the calibration tables.
#[derive(Debug, Clone)]
pub struct CongestionMonitor {
    probe: ExecutionProfile,
    baseline: StartupBaseline,
    model: DiscountModel,
    index: CongestionIndex,
}

impl CongestionMonitor {
    /// Creates a monitor probing with `language`'s startup routine.
    ///
    /// # Errors
    ///
    /// * [`litmus_core::CoreError::MissingLanguage`] when the tables
    ///   lack the language.
    pub fn new(
        tables: &litmus_core::PricingTables,
        model: DiscountModel,
        language: Language,
    ) -> Result<Self> {
        let baseline = *tables.baseline(language)?;
        let index = CongestionIndex::from_tables(tables)?;
        let mut builder = ExecutionProfile::builder(format!("{}-monitor-probe", language.abbr()));
        for phase in language.startup_phases() {
            builder = builder.startup_phase(phase);
        }
        let probe = builder.build().map_err(litmus_core::CoreError::from)?;
        Ok(CongestionMonitor {
            probe,
            baseline,
            model,
            index,
        })
    }

    /// Takes one congestion sample on the harness.
    ///
    /// # Errors
    ///
    /// Propagates probe execution and indexing failures.
    pub fn sample(&self, harness: &mut CoRunHarness) -> Result<CongestionSample> {
        let report = harness.measure(self.probe.clone())?;
        let startup = report
            .startup
            .as_ref()
            .ok_or(litmus_core::CoreError::NoStartup)?;
        let reading = LitmusReading::from_startup(&self.baseline, startup)?;
        let estimate = self.model.estimate(&reading)?;
        let level = self.index.level_for(&reading, &estimate)?;
        Ok(CongestionSample {
            at_ms: report.launched_ms,
            reading,
            level,
        })
    }

    /// Takes `count` samples with `gap_ms` of background execution in
    /// between — a Fig. 7 style time series.
    ///
    /// # Errors
    ///
    /// Propagates the first failing sample.
    pub fn series(
        &self,
        harness: &mut CoRunHarness,
        count: usize,
        gap_ms: u64,
    ) -> Result<Vec<CongestionSample>> {
        let mut samples = Vec::with_capacity(count);
        for i in 0..count {
            samples.push(self.sample(harness)?);
            if i + 1 < count {
                harness.advance(gap_ms)?;
            }
        }
        Ok(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{CoRunEnv, HarnessConfig};
    use litmus_core::TableBuilder;
    use litmus_sim::MachineSpec;

    fn monitor_and_tables() -> (CongestionMonitor, litmus_core::PricingTables) {
        let spec = MachineSpec::cascade_lake();
        let tables = TableBuilder::new(spec)
            .levels([6, 14, 24])
            .languages([Language::Python])
            .reference_scale(0.03)
            .build()
            .unwrap();
        let model = DiscountModel::fit(&tables).unwrap();
        let monitor = CongestionMonitor::new(&tables, model, Language::Python).unwrap();
        (monitor, tables)
    }

    #[test]
    fn busier_machines_read_higher_levels() {
        let (monitor, _) = monitor_and_tables();
        let spec = MachineSpec::cascade_lake();
        let mut quiet = CoRunHarness::start(
            HarnessConfig::new(spec.clone())
                .env(CoRunEnv::OnePerCore { co_runners: 2 })
                .mix_scale(0.05)
                .warmup_ms(50),
        )
        .unwrap();
        let mut busy = CoRunHarness::start(
            HarnessConfig::new(spec)
                .env(CoRunEnv::OnePerCore { co_runners: 24 })
                .mix_scale(0.05)
                .warmup_ms(50),
        )
        .unwrap();
        let q = monitor.sample(&mut quiet).unwrap();
        let b = monitor.sample(&mut busy).unwrap();
        assert!(
            b.level > q.level,
            "busy {} must exceed quiet {}",
            b.level,
            q.level
        );
        assert!(b.reading.shared_slowdown > q.reading.shared_slowdown);
    }

    #[test]
    fn series_produces_ordered_samples() {
        let (monitor, _) = monitor_and_tables();
        let mut harness = CoRunHarness::start(
            HarnessConfig::new(MachineSpec::cascade_lake())
                .env(CoRunEnv::OnePerCore { co_runners: 8 })
                .mix_scale(0.05)
                .warmup_ms(50),
        )
        .unwrap();
        let series = monitor.series(&mut harness, 4, 30).unwrap();
        assert_eq!(series.len(), 4);
        for pair in series.windows(2) {
            assert!(pair[1].at_ms > pair[0].at_ms);
        }
    }

    #[test]
    fn missing_language_is_rejected() {
        let (_, tables) = monitor_and_tables();
        let model = DiscountModel::fit(&tables).unwrap();
        assert!(CongestionMonitor::new(&tables, model, Language::Go).is_err());
    }
}
