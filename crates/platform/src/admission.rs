use litmus_sim::ExecutionProfile;

use crate::harness::CoRunHarness;
use crate::monitor::CongestionMonitor;
use crate::Result;

/// Outcome of an admission decision.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionDecision {
    /// The machine is calm enough: the function was launched and ran to
    /// completion; its execution report is attached.
    Admitted {
        /// Congestion level observed by the pre-launch probe.
        level: f64,
        /// Execution report of the admitted function.
        report: Box<litmus_sim::ExecutionReport>,
    },
    /// The machine was too congested; the function was not launched.
    Deferred {
        /// Congestion level observed by the pre-launch probe.
        level: f64,
    },
}

impl AdmissionDecision {
    /// Whether the function was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionDecision::Admitted { .. })
    }

    /// The probe level behind the decision.
    pub fn level(&self) -> f64 {
        match self {
            AdmissionDecision::Admitted { level, .. } => *level,
            AdmissionDecision::Deferred { level } => *level,
        }
    }
}

/// Congestion-aware admission control — the scheduling use of Litmus
/// tests the paper sketches in §5.1: congestion readings tell the
/// provider how much headroom a machine has, so new work can be
/// deferred (to another machine, or in time) when the reading is hot.
///
/// # Examples
///
/// ```no_run
/// use litmus_core::{DiscountModel, TableBuilder};
/// use litmus_platform::{AdmissionController, CongestionMonitor};
/// use litmus_sim::MachineSpec;
/// use litmus_workloads::Language;
///
/// # fn main() -> Result<(), litmus_platform::PlatformError> {
/// let tables = TableBuilder::new(MachineSpec::cascade_lake()).build()?;
/// let model = DiscountModel::fit(&tables)?;
/// let monitor = CongestionMonitor::new(&tables, model, Language::Python)?;
/// let controller = AdmissionController::new(monitor, 14.0);
/// # let _ = controller;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionController {
    monitor: CongestionMonitor,
    max_level: f64,
    admitted: usize,
    deferred: usize,
}

impl AdmissionController {
    /// Creates a controller that admits work while the probed
    /// congestion level stays at or below `max_level` (in congestion-
    /// table level units, i.e. equivalent generator threads).
    pub fn new(monitor: CongestionMonitor, max_level: f64) -> Self {
        AdmissionController {
            monitor,
            max_level,
            admitted: 0,
            deferred: 0,
        }
    }

    /// The admission threshold.
    pub fn max_level(&self) -> f64 {
        self.max_level
    }

    /// Functions admitted so far.
    pub fn admitted(&self) -> usize {
        self.admitted
    }

    /// Functions deferred so far.
    pub fn deferred(&self) -> usize {
        self.deferred
    }

    /// Probes the machine and, if calm enough, runs `profile` in the
    /// harness's measurement slot.
    ///
    /// # Errors
    ///
    /// Propagates probe and execution failures.
    pub fn try_admit(
        &mut self,
        harness: &mut CoRunHarness,
        profile: ExecutionProfile,
    ) -> Result<AdmissionDecision> {
        let sample = self.monitor.sample(harness)?;
        if sample.level <= self.max_level {
            let report = harness.measure(profile)?;
            self.admitted += 1;
            Ok(AdmissionDecision::Admitted {
                level: sample.level,
                report: Box::new(report),
            })
        } else {
            self.deferred += 1;
            Ok(AdmissionDecision::Deferred {
                level: sample.level,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{CoRunEnv, CoRunHarness, HarnessConfig};
    use litmus_core::{DiscountModel, TableBuilder};
    use litmus_sim::MachineSpec;
    use litmus_workloads::{suite, Language};

    fn controller(max_level: f64) -> AdmissionController {
        let tables = TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14, 24])
            .languages([Language::Python])
            .reference_scale(0.03)
            .build()
            .unwrap();
        let model = DiscountModel::fit(&tables).unwrap();
        let monitor = CongestionMonitor::new(&tables, model, Language::Python).unwrap();
        AdmissionController::new(monitor, max_level)
    }

    fn harness(co_runners: usize) -> CoRunHarness {
        CoRunHarness::start(
            HarnessConfig::new(MachineSpec::cascade_lake())
                .env(CoRunEnv::OnePerCore { co_runners })
                .mix_scale(0.05)
                .warmup_ms(50),
        )
        .unwrap()
    }

    #[test]
    fn calm_machines_admit() {
        let mut controller = controller(26.0);
        let mut harness = harness(3);
        let profile = suite::by_name("auth-py")
            .unwrap()
            .profile()
            .scaled(0.05)
            .unwrap();
        let decision = controller.try_admit(&mut harness, profile).unwrap();
        assert!(decision.is_admitted(), "level {}", decision.level());
        assert_eq!(controller.admitted(), 1);
        assert_eq!(controller.deferred(), 0);
    }

    #[test]
    fn hot_machines_defer() {
        // Threshold below any realistic reading on a busy machine.
        let mut controller = controller(5.0);
        let mut harness = harness(25);
        let profile = suite::by_name("auth-py")
            .unwrap()
            .profile()
            .scaled(0.05)
            .unwrap();
        let decision = controller.try_admit(&mut harness, profile).unwrap();
        assert!(!decision.is_admitted(), "level {}", decision.level());
        assert_eq!(controller.deferred(), 1);
        assert_eq!(controller.max_level(), 5.0);
    }

    #[test]
    fn decisions_expose_their_levels() {
        let mut controller = controller(26.0);
        let mut harness = harness(10);
        let profile = suite::by_name("fib-py")
            .unwrap()
            .profile()
            .scaled(0.05)
            .unwrap();
        let decision = controller.try_admit(&mut harness, profile).unwrap();
        assert!(decision.level() >= 6.0 - 1e-9, "clamped to table range");
    }
}
