use std::error::Error;
use std::fmt;

use litmus_core::CoreError;
use litmus_sim::SimError;

/// Errors produced by the platform layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A pricing-core operation failed.
    Core(CoreError),
    /// A simulation operation failed.
    Sim(SimError),
    /// The experiment was configured without test functions.
    NoTestFunctions,
    /// The experiment was configured with zero repetitions.
    NoReps,
    /// The co-run environment does not fit on the machine.
    EnvTooLarge {
        /// Cores the environment needs.
        needed: usize,
        /// Cores the machine has.
        cores: usize,
    },
    /// The workload mix pool was empty.
    EmptyMix,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Core(e) => write!(f, "pricing error: {e}"),
            PlatformError::Sim(e) => write!(f, "simulation error: {e}"),
            PlatformError::NoTestFunctions => {
                write!(f, "experiment has no test functions")
            }
            PlatformError::NoReps => write!(f, "experiment has zero repetitions"),
            PlatformError::EnvTooLarge { needed, cores } => write!(
                f,
                "co-run environment needs {needed} cores, machine has {cores}"
            ),
            PlatformError::EmptyMix => write!(f, "workload mix pool is empty"),
        }
    }
}

impl Error for PlatformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlatformError::Core(e) => Some(e),
            PlatformError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for PlatformError {
    fn from(e: CoreError) -> Self {
        PlatformError::Core(e)
    }
}

impl From<SimError> for PlatformError {
    fn from(e: SimError) -> Self {
        PlatformError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let e: PlatformError = SimError::EmptyProfile.into();
        assert!(e.source().is_some());
        let e = PlatformError::EnvTooLarge {
            needed: 33,
            cores: 32,
        };
        assert!(e.to_string().contains("33"));
    }
}
