use litmus_core::{
    CommercialPricing, IdealPricing, Invoice, LitmusPricing, LitmusReading, PricingTables,
};
use litmus_sim::{Placement, PmuCounters, Simulator};
use litmus_stats::geometric_mean;
use litmus_workloads::Benchmark;

use crate::error::PlatformError;
use crate::harness::{CoRunHarness, HarnessConfig};
use crate::Result;

/// The paper's evaluation loop (§7): run tenant functions repeatedly in
/// a congested environment, Litmus-test each invocation, and compare the
/// three prices.
///
/// Each function is executed `reps` times; its `T_private`, `T_shared`
/// and probe readings are averaged before pricing, exactly as §7.1
/// describes ("each function is executed 30 times, and we average its
/// T_private and T_shared values").
#[derive(Debug, Clone)]
pub struct PricingExperiment {
    config: HarnessConfig,
    reps: usize,
    test_scale: f64,
}

impl PricingExperiment {
    /// Creates an experiment over a harness configuration with the
    /// paper's 30 repetitions.
    pub fn new(config: HarnessConfig) -> Self {
        PricingExperiment {
            config,
            reps: 30,
            test_scale: 1.0,
        }
    }

    /// Sets the repetition count.
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps;
        self
    }

    /// Scales test-function bodies (for fast tests; per-instruction
    /// metrics are scale-invariant).
    pub fn test_scale(mut self, scale: f64) -> Self {
        self.test_scale = scale;
        self
    }

    /// The harness configuration.
    pub fn config(&self) -> &HarnessConfig {
        &self.config
    }

    /// Runs the experiment: one invoice per test function.
    ///
    /// `tables` supplies the per-language startup baselines for reading
    /// probes; `pricing` is the Litmus engine under evaluation.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::NoTestFunctions`] / [`PlatformError::NoReps`]
    ///   on empty configuration.
    /// * Propagated harness, probe and pricing failures.
    pub fn run(
        &self,
        pricing: &LitmusPricing,
        tables: &PricingTables,
        tests: &[Benchmark],
    ) -> Result<ExperimentResults> {
        if tests.is_empty() {
            return Err(PlatformError::NoTestFunctions);
        }
        if self.reps == 0 {
            return Err(PlatformError::NoReps);
        }

        let mut harness = CoRunHarness::start(self.config.clone())?;
        let mut invoices = Vec::with_capacity(tests.len());
        for bench in tests {
            let profile = bench.profile().scaled(self.test_scale)?;

            // Solo oracle baseline on an idle machine.
            let mut solo_sim = Simulator::new(self.config.spec.clone());
            let id = solo_sim.launch(profile.clone(), Placement::pinned(0))?;
            let solo = solo_sim.run_to_completion(id)?.counters;

            // Congested repetitions: average counters and probe readings.
            let baseline = tables.baseline(bench.language())?;
            let mut counter_sum = PmuCounters::default();
            let mut reading_sum = (0.0, 0.0, 0.0, 0.0);
            for _ in 0..self.reps {
                let report = harness.measure(profile.clone())?;
                counter_sum += report.counters;
                let startup = report
                    .startup
                    .as_ref()
                    .ok_or(litmus_core::CoreError::NoStartup)?;
                let reading = LitmusReading::from_startup(baseline, startup)?;
                reading_sum.0 += reading.private_slowdown;
                reading_sum.1 += reading.shared_slowdown;
                reading_sum.2 += reading.total_slowdown;
                reading_sum.3 += reading.l3_miss_rate;
            }
            let n = self.reps as f64;
            let avg_counters = PmuCounters {
                cycles: counter_sum.cycles / n,
                instructions: counter_sum.instructions / n,
                stall_l2_cycles: counter_sum.stall_l2_cycles / n,
                l2_misses: counter_sum.l2_misses / n,
                l3_misses: counter_sum.l3_misses / n,
                context_switches: counter_sum.context_switches / n,
            };
            let avg_reading = LitmusReading {
                language: bench.language(),
                private_slowdown: reading_sum.0 / n,
                shared_slowdown: reading_sum.1 / n,
                total_slowdown: reading_sum.2 / n,
                l3_miss_rate: reading_sum.3 / n,
            };

            let commercial = CommercialPricing::new().price(&avg_counters);
            let litmus = pricing.price(&avg_reading, &avg_counters)?;
            let ideal = IdealPricing::new().price(&avg_counters, &solo);
            invoices.push(Invoice {
                function: bench.name().to_owned(),
                counters: avg_counters,
                commercial,
                litmus,
                ideal,
            });
        }
        Ok(ExperimentResults { invoices })
    }
}

/// Outcome of a [`PricingExperiment`]: per-function invoices plus the
/// aggregates the paper quotes under every figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResults {
    invoices: Vec<Invoice>,
}

impl ExperimentResults {
    /// Builds results from raw invoices (used by custom experiment
    /// drivers in the bench harness).
    pub fn from_invoices(invoices: Vec<Invoice>) -> Self {
        ExperimentResults { invoices }
    }

    /// Per-function invoices, in test-function order.
    pub fn invoices(&self) -> &[Invoice] {
        &self.invoices
    }

    /// The invoice for a specific function, if present.
    pub fn invoice(&self, function: &str) -> Option<&Invoice> {
        self.invoices.iter().find(|i| i.function == function)
    }

    /// Geometric mean of Litmus prices normalised to commercial (the
    /// "gmean" bar of Figs. 11/15–21).
    pub fn gmean_litmus_price(&self) -> f64 {
        geometric_mean(
            &self
                .invoices
                .iter()
                .map(Invoice::litmus_normalized)
                .collect::<Vec<_>>(),
        )
        .unwrap_or(1.0)
    }

    /// Geometric mean of ideal prices normalised to commercial.
    pub fn gmean_ideal_price(&self) -> f64 {
        geometric_mean(
            &self
                .invoices
                .iter()
                .map(Invoice::ideal_normalized)
                .collect::<Vec<_>>(),
        )
        .unwrap_or(1.0)
    }

    /// Average Litmus discount (1 − gmean normalised price).
    pub fn mean_litmus_discount(&self) -> f64 {
        1.0 - self.gmean_litmus_price()
    }

    /// Average ideal discount.
    pub fn mean_ideal_discount(&self) -> f64 {
        1.0 - self.gmean_ideal_price()
    }

    /// Gap between Litmus and ideal average discounts — the headline
    /// number the paper reports per configuration (0.2%–2.9%).
    pub fn discount_gap(&self) -> f64 {
        (self.mean_litmus_discount() - self.mean_ideal_discount()).abs()
    }

    /// Geometric mean of absolute total price errors vs ideal (the
    /// "abs geomean" bar of Fig. 12).
    pub fn abs_gmean_error(&self) -> f64 {
        let errs: Vec<f64> = self
            .invoices
            .iter()
            .map(|i| i.total_error().abs().max(1e-6))
            .collect();
        geometric_mean(&errs).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::CoRunEnv;
    use litmus_core::{DiscountModel, TableBuilder};
    use litmus_sim::MachineSpec;
    use litmus_workloads::{suite, Language};

    fn tiny_experiment() -> (LitmusPricing, PricingTables, PricingExperiment) {
        let spec = MachineSpec::cascade_lake();
        let tables = TableBuilder::new(spec.clone())
            .levels([6, 14, 24])
            .reference_scale(0.03)
            .build()
            .unwrap();
        let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
        let config = HarnessConfig::new(spec)
            .env(CoRunEnv::OnePerCore { co_runners: 12 })
            .mix_scale(0.05)
            .warmup_ms(100);
        let experiment = PricingExperiment::new(config).reps(2).test_scale(0.05);
        (pricing, tables, experiment)
    }

    #[test]
    fn experiment_produces_discounted_invoices() {
        let (pricing, tables, experiment) = tiny_experiment();
        let tests: Vec<_> = ["aes-py", "pager-py", "float-py", "geo-go"]
            .iter()
            .map(|n| suite::by_name(n).unwrap())
            .collect();
        let results = experiment.run(&pricing, &tables, &tests).unwrap();
        assert_eq!(results.invoices().len(), 4);
        for invoice in results.invoices() {
            assert!(
                invoice.litmus_normalized() < 1.0,
                "{}: litmus must discount, got {}",
                invoice.function,
                invoice.litmus_normalized()
            );
            assert!(
                invoice.ideal_normalized() < 1.0,
                "{}: congestion must slow functions down",
                invoice.function
            );
        }
        // Litmus tracks ideal within a few points at this scale.
        assert!(
            results.discount_gap() < 0.08,
            "gap {} too wide",
            results.discount_gap()
        );
        assert!(results.mean_litmus_discount() > 0.0);
    }

    #[test]
    fn empty_tests_and_reps_are_rejected() {
        let (pricing, tables, experiment) = tiny_experiment();
        assert!(matches!(
            experiment.run(&pricing, &tables, &[]),
            Err(PlatformError::NoTestFunctions)
        ));
        let zero_reps = experiment.clone().reps(0);
        let tests = vec![suite::by_name("aes-py").unwrap()];
        assert!(matches!(
            zero_reps.run(&pricing, &tables, &tests),
            Err(PlatformError::NoReps)
        ));
    }

    #[test]
    fn missing_language_baseline_surfaces() {
        let spec = MachineSpec::cascade_lake();
        let tables = TableBuilder::new(spec.clone())
            .levels([6, 14])
            .languages([Language::Python])
            .reference_scale(0.03)
            .build()
            .unwrap();
        let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
        let config = HarnessConfig::new(spec)
            .env(CoRunEnv::OnePerCore { co_runners: 4 })
            .mix_scale(0.05)
            .warmup_ms(50);
        let experiment = PricingExperiment::new(config).reps(1).test_scale(0.05);
        let tests = vec![suite::by_name("geo-go").unwrap()];
        assert!(experiment.run(&pricing, &tables, &tests).is_err());
    }

    #[test]
    fn results_helpers() {
        let (pricing, tables, experiment) = tiny_experiment();
        let tests = vec![suite::by_name("aes-py").unwrap()];
        let results = experiment.run(&pricing, &tables, &tests).unwrap();
        assert!(results.invoice("aes-py").is_some());
        assert!(results.invoice("nope").is_none());
        assert!(results.abs_gmean_error() >= 0.0);
        let rebuilt = ExperimentResults::from_invoices(results.invoices().to_vec());
        assert_eq!(rebuilt, results);
    }
}
