use litmus_sim::{
    Event, ExecutionProfile, ExecutionReport, FrequencyGovernor, InstanceId, MachineSpec,
    Placement, Simulator,
};
use litmus_workloads::{suite, BackfillPool, Benchmark, WorkloadMix};

use crate::error::PlatformError;
use crate::Result;

/// How the congested machine is organised (paper §7.1 vs §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoRunEnv {
    /// One function per core: the function under test owns core 0,
    /// `co_runners` backfilled functions own cores `1..=co_runners`
    /// (§7.1, Figs. 2/3/11–13).
    OnePerCore {
        /// Number of co-running functions.
        co_runners: usize,
    },
    /// Temporal sharing: the function under test and `co_runners`
    /// fillers all share a pool of `cores` cores without exclusive
    /// assignment (§7.2, Figs. 15–21; e.g. 160 functions on 16 cores).
    Shared {
        /// Number of co-running functions.
        co_runners: usize,
        /// Cores in the shared pool.
        cores: usize,
    },
}

impl CoRunEnv {
    /// Cores this environment occupies (including the measurement slot).
    pub fn cores_needed(&self) -> usize {
        match *self {
            CoRunEnv::OnePerCore { co_runners } => co_runners + 1,
            CoRunEnv::Shared { cores, .. } => cores,
        }
    }

    /// Number of co-running functions kept alive.
    pub fn co_runners(&self) -> usize {
        match *self {
            CoRunEnv::OnePerCore { co_runners } => co_runners,
            CoRunEnv::Shared { co_runners, .. } => co_runners,
        }
    }

    /// Average functions per core, counting the one under test — the
    /// quantity Method 1 calibrates against (10 in the paper's §7.2
    /// setup).
    pub fn functions_per_core(&self) -> f64 {
        match *self {
            CoRunEnv::OnePerCore { .. } => 1.0,
            CoRunEnv::Shared { co_runners, cores } => (co_runners + 1) as f64 / cores as f64,
        }
    }
}

/// Configuration for a [`CoRunHarness`].
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Machine to simulate.
    pub spec: MachineSpec,
    /// Frequency policy (the paper pins 2.8 GHz except in §8).
    pub governor: FrequencyGovernor,
    /// Co-run organisation.
    pub env: CoRunEnv,
    /// Benchmarks the random co-runner mix draws from.
    pub mix_pool: Vec<Benchmark>,
    /// RNG seed for the mix (experiments are fully deterministic).
    pub seed: u64,
    /// Warm-up time before the first measurement, ms.
    pub warmup_ms: u64,
    /// Instruction-count scale applied to co-runner profiles (tests use
    /// small values; per-instruction behaviour is unchanged).
    pub mix_scale: f64,
}

impl HarnessConfig {
    /// Defaults matching §7.1: 26 co-runners one-per-core, the full
    /// Table-1 mix, 300 ms warm-up, pinned frequency.
    pub fn new(spec: MachineSpec) -> Self {
        let governor = FrequencyGovernor::fixed(spec.frequency_ghz);
        HarnessConfig {
            spec,
            governor,
            env: CoRunEnv::OnePerCore { co_runners: 26 },
            mix_pool: suite::benchmarks(),
            seed: 0xC0FFEE,
            warmup_ms: 300,
            mix_scale: 1.0,
        }
    }

    /// Sets the co-run environment.
    pub fn env(mut self, env: CoRunEnv) -> Self {
        self.env = env;
        self
    }

    /// Sets the frequency governor (§8 passes a turbo governor).
    pub fn governor(mut self, governor: FrequencyGovernor) -> Self {
        self.governor = governor;
        self
    }

    /// Sets the co-runner mix pool (§8 "Heavy Congestion" passes the
    /// eight memory-intensive picks).
    pub fn mix_pool(mut self, pool: Vec<Benchmark>) -> Self {
        self.mix_pool = pool;
        self
    }

    /// Sets the mix RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the warm-up duration in ms.
    pub fn warmup_ms(mut self, ms: u64) -> Self {
        self.warmup_ms = ms;
        self
    }

    /// Sets the co-runner profile scale.
    pub fn mix_scale(mut self, scale: f64) -> Self {
        self.mix_scale = scale;
        self
    }
}

/// A running congested machine with a measurement slot — the
/// experimental apparatus shared by every evaluation figure.
#[derive(Debug)]
pub struct CoRunHarness {
    sim: Simulator,
    pool: BackfillPool,
    test_placement: Placement,
    env: CoRunEnv,
    draining: bool,
}

impl CoRunHarness {
    /// Boots the environment: launches the co-runners and warms the
    /// machine up to steady state.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::EnvTooLarge`] if the environment does not fit.
    /// * [`PlatformError::EmptyMix`] for an empty mix pool.
    /// * [`PlatformError::Sim`] on launch failures.
    pub fn start(config: HarnessConfig) -> Result<Self> {
        let needed = config.env.cores_needed();
        if needed > config.spec.cores {
            return Err(PlatformError::EnvTooLarge {
                needed,
                cores: config.spec.cores,
            });
        }
        let mix = WorkloadMix::new(config.mix_pool.clone(), config.seed)
            .ok_or(PlatformError::EmptyMix)?
            .with_scale(config.mix_scale);
        let (filler_placement, test_placement) = match config.env {
            CoRunEnv::OnePerCore { co_runners } => (
                Placement::pool_range(1, co_runners + 1),
                Placement::pinned(0),
            ),
            CoRunEnv::Shared { cores, .. } => (
                Placement::pool_range(0, cores),
                Placement::pool_range(0, cores),
            ),
        };
        let mut sim = Simulator::with_governor(config.spec.clone(), config.governor);
        let mut pool = BackfillPool::from_mix(mix, filler_placement);
        pool.fill(&mut sim, config.env.co_runners())?;
        pool.run(&mut sim, config.warmup_ms)?;
        Ok(CoRunHarness {
            sim,
            pool,
            test_placement,
            env: config.env,
            draining: false,
        })
    }

    /// Puts the machine into drain: co-runners already executing finish
    /// but are no longer replaced, so the machine winds down to idle.
    /// Used when a cluster retires a machine. Draining is one-way — a
    /// retired machine is dropped, not reused.
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// Whether the machine is draining (backfill stopped).
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// The co-run environment.
    pub fn env(&self) -> CoRunEnv {
        self.env
    }

    /// The underlying simulator (congestion introspection for Fig. 7
    /// style monitoring).
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Runs `profile` in the measurement slot to completion, keeping
    /// the co-runners backfilled throughout.
    ///
    /// # Errors
    ///
    /// Propagates launch/backfill failures.
    pub fn measure(&mut self, profile: ExecutionProfile) -> Result<ExecutionReport> {
        let id = self.sim.launch(profile, self.test_placement.clone())?;
        Ok(self.pool.run_until(&mut self.sim, id)?)
    }

    /// Advances the congested machine by `ms` without measuring.
    ///
    /// # Errors
    ///
    /// Propagates backfill failures.
    pub fn advance(&mut self, ms: u64) -> Result<()> {
        Ok(self.pool.run(&mut self.sim, ms)?)
    }

    /// Launches `profile` in the measurement slot *without* running it
    /// to completion — callers drive progress with [`CoRunHarness::step`]
    /// and harvest the report when the returned id completes. This is
    /// the building block external schedulers (e.g. a cluster driver)
    /// use to interleave many in-flight invocations on one machine.
    ///
    /// # Errors
    ///
    /// Propagates launch failures.
    pub fn submit(&mut self, profile: ExecutionProfile) -> Result<InstanceId> {
        Ok(self.sim.launch(profile, self.test_placement.clone())?)
    }

    /// Advances the machine by exactly one scheduling quantum, keeping
    /// the co-runner population backfilled, and returns the quantum's
    /// completion events (which may include ids from
    /// [`CoRunHarness::submit`]).
    ///
    /// # Errors
    ///
    /// Propagates backfill launch failures.
    pub fn step(&mut self) -> Result<Vec<Event>> {
        let events = self.sim.step();
        if !self.draining {
            self.pool.backfill(&mut self.sim, &events)?;
        }
        Ok(events)
    }

    /// Fast-forwards an *idle* machine (no active instances, serving or
    /// filler) to local sim time `target_ms` without stepping every
    /// quantum — bit-identical to calling [`CoRunHarness::step`] once
    /// per quantum, because an idle simulator's state is a fixed point
    /// after one settling quantum ([`Simulator::skip_idle_to`]) and
    /// backfill only reacts to completion events, of which an idle
    /// machine produces none. A no-op when `target_ms` is in the past.
    ///
    /// # Errors
    ///
    /// Propagates [`litmus_sim::SimError::SkipWhileActive`] when the
    /// machine is not idle.
    pub fn fast_forward_to(&mut self, target_ms: u64) -> Result<()> {
        Ok(self.sim.skip_idle_to(target_ms)?)
    }

    /// The report of a completed instance (see [`CoRunHarness::submit`]).
    ///
    /// # Errors
    ///
    /// Propagates [`litmus_sim::SimError`] for unknown or still-running
    /// instances.
    pub fn report(&self, id: InstanceId) -> Result<ExecutionReport> {
        Ok(self.sim.report(id)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(env: CoRunEnv) -> HarnessConfig {
        HarnessConfig::new(MachineSpec::cascade_lake())
            .env(env)
            .mix_scale(0.05)
            .warmup_ms(100)
    }

    #[test]
    fn env_accounting() {
        let one = CoRunEnv::OnePerCore { co_runners: 26 };
        assert_eq!(one.cores_needed(), 27);
        assert_eq!(one.co_runners(), 26);
        assert_eq!(one.functions_per_core(), 1.0);
        let shared = CoRunEnv::Shared {
            co_runners: 159,
            cores: 16,
        };
        assert_eq!(shared.cores_needed(), 16);
        assert_eq!(shared.functions_per_core(), 10.0);
    }

    #[test]
    fn oversized_env_is_rejected() {
        let config = fast_config(CoRunEnv::OnePerCore { co_runners: 32 });
        assert!(matches!(
            CoRunHarness::start(config),
            Err(PlatformError::EnvTooLarge { .. })
        ));
    }

    #[test]
    fn harness_keeps_corunners_alive_and_measures() {
        let config = fast_config(CoRunEnv::OnePerCore { co_runners: 8 });
        let mut harness = CoRunHarness::start(config).unwrap();
        assert_eq!(harness.sim().active_instances(), 8);
        let profile = suite::by_name("auth-go")
            .unwrap()
            .profile()
            .scaled(0.05)
            .unwrap();
        let report = harness.measure(profile).unwrap();
        assert_eq!(report.name, "auth-go");
        // Population unchanged after the measurement completes.
        assert_eq!(harness.sim().active_instances(), 8);
    }

    #[test]
    fn congested_measurement_is_slower_than_solo() {
        let profile = suite::by_name("bfs-py")
            .unwrap()
            .profile()
            .scaled(0.05)
            .unwrap();
        let mut solo_sim = Simulator::new(MachineSpec::cascade_lake());
        let id = solo_sim
            .launch(profile.clone(), Placement::pinned(0))
            .unwrap();
        let solo = solo_sim.run_to_completion(id).unwrap();

        let config = fast_config(CoRunEnv::OnePerCore { co_runners: 20 });
        let mut harness = CoRunHarness::start(config).unwrap();
        let congested = harness.measure(profile).unwrap();
        assert!(congested.wall_ms() > solo.wall_ms() * 1.02);
    }

    #[test]
    fn shared_env_time_shares_the_pool() {
        let config = fast_config(CoRunEnv::Shared {
            co_runners: 31,
            cores: 4,
        });
        let mut harness = CoRunHarness::start(config).unwrap();
        let profile = suite::by_name("auth-go")
            .unwrap()
            .profile()
            .scaled(0.05)
            .unwrap();
        let report = harness.measure(profile).unwrap();
        // Heavily shared pool: wall time must far exceed busy time.
        let busy = report.busy_ms(2.8);
        assert!(
            report.wall_ms() > busy * 3.0,
            "wall {} vs busy {busy}",
            report.wall_ms()
        );
        assert!(report.counters.context_switches > 0.0);
    }

    #[test]
    fn draining_stops_backfill_and_winds_down() {
        let config = fast_config(CoRunEnv::Shared {
            co_runners: 6,
            cores: 4,
        });
        let mut harness = CoRunHarness::start(config).unwrap();
        assert!(!harness.is_draining());
        assert_eq!(harness.sim().active_instances(), 6);
        harness.drain();
        assert!(harness.is_draining());
        // With backfill stopped, the filler population must strictly
        // shrink as co-runners complete, and never recover.
        let mut low_water = harness.sim().active_instances();
        for _ in 0..5_000 {
            let _ = harness.step().unwrap();
            let active = harness.sim().active_instances();
            assert!(active <= low_water, "backfill ran while draining");
            low_water = active;
            if active == 0 {
                break;
            }
        }
        assert_eq!(low_water, 0, "fillers never wound down");
    }

    #[test]
    fn advance_makes_progress() {
        let config = fast_config(CoRunEnv::OnePerCore { co_runners: 4 });
        let mut harness = CoRunHarness::start(config).unwrap();
        let t0 = harness.sim().now_ms();
        harness.advance(50).unwrap();
        assert_eq!(harness.sim().now_ms(), t0 + 50);
    }
}
