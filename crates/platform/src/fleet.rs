use litmus_sim::ExecutionProfile;

use crate::error::PlatformError;
use crate::harness::{CoRunHarness, HarnessConfig};
use crate::monitor::{CongestionMonitor, CongestionSample};
use crate::Result;

/// A fleet of simulated machines balanced by Litmus probes.
///
/// Paper §5.1 notes that congestion readings "assist providers in
/// estimating remaining resources and making informed decisions
/// regarding job scheduling". At fleet scale that means: probe every
/// candidate machine with the (already free) startup Litmus test and
/// dispatch the invocation to the calmest one.
///
/// # Examples
///
/// ```no_run
/// use litmus_core::{DiscountModel, TableBuilder};
/// use litmus_platform::{CongestionMonitor, Fleet, HarnessConfig};
/// use litmus_sim::MachineSpec;
/// use litmus_workloads::Language;
///
/// # fn main() -> Result<(), litmus_platform::PlatformError> {
/// let spec = MachineSpec::cascade_lake();
/// let tables = TableBuilder::new(spec.clone()).build()?;
/// let model = DiscountModel::fit(&tables)?;
/// let monitor = CongestionMonitor::new(&tables, model, Language::Python)?;
/// let configs = vec![HarnessConfig::new(spec.clone()), HarnessConfig::new(spec)];
/// let fleet = Fleet::start(configs, monitor)?;
/// assert_eq!(fleet.len(), 2);
/// # Ok(()) }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "superseded by `litmus-cluster`: `Cluster` + `ClusterDriver` \
            serve traces across many machines with pluggable placement \
            policies and sharded billing; `Fleet` only dispatches one \
            blocking invocation at a time"
)]
#[derive(Debug)]
pub struct Fleet {
    machines: Vec<CoRunHarness>,
    monitor: CongestionMonitor,
    dispatched: Vec<usize>,
}

#[allow(deprecated)]
impl Fleet {
    /// Boots one machine per configuration (configurations may differ —
    /// heterogeneous load, different mixes, different seeds).
    ///
    /// # Errors
    ///
    /// * [`PlatformError::EmptyMix`] for an empty `configs` list.
    /// * Propagated per-machine harness failures.
    pub fn start(configs: Vec<HarnessConfig>, monitor: CongestionMonitor) -> Result<Self> {
        if configs.is_empty() {
            return Err(PlatformError::EmptyMix);
        }
        let machines = configs
            .into_iter()
            .map(CoRunHarness::start)
            .collect::<Result<Vec<_>>>()?;
        let dispatched = vec![0; machines.len()];
        Ok(Fleet {
            machines,
            monitor,
            dispatched,
        })
    }

    /// Number of machines in the fleet.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the fleet has no machines (never true after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// How many invocations each machine has received.
    pub fn dispatch_counts(&self) -> &[usize] {
        &self.dispatched
    }

    /// A machine's harness, for inspection.
    pub fn machine(&self, idx: usize) -> Option<&CoRunHarness> {
        self.machines.get(idx)
    }

    /// Probes every machine and returns the per-machine samples.
    ///
    /// # Errors
    ///
    /// Propagates the first failing probe.
    pub fn probe_all(&mut self) -> Result<Vec<CongestionSample>> {
        self.machines
            .iter_mut()
            .map(|m| self.monitor.sample(m))
            .collect()
    }

    /// Index of the machine with the lowest probed congestion level.
    ///
    /// Each machine is probed twice and the two levels averaged: a
    /// single probe can land inside a transient burst (a co-runner's
    /// own startup, a churn spike — the fast-changing states of paper
    /// Fig. 7), and one extra probe halves that noise at negligible
    /// cost.
    ///
    /// # Errors
    ///
    /// Propagates probe failures.
    pub fn least_congested(&mut self) -> Result<usize> {
        let first = self.probe_all()?;
        let second = self.probe_all()?;
        Ok(first
            .iter()
            .zip(&second)
            .map(|(a, b)| (a.level + b.level) / 2.0)
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("levels are finite"))
            .map(|(idx, _)| idx)
            .expect("fleet is non-empty"))
    }

    /// Dispatches an invocation to the calmest machine and runs it to
    /// completion there.
    ///
    /// # Errors
    ///
    /// Propagates probe and execution failures.
    pub fn dispatch(
        &mut self,
        profile: ExecutionProfile,
    ) -> Result<(usize, litmus_sim::ExecutionReport)> {
        let idx = self.least_congested()?;
        let report = self.machines[idx].measure(profile)?;
        self.dispatched[idx] += 1;
        Ok((idx, report))
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::harness::CoRunEnv;
    use litmus_core::{DiscountModel, TableBuilder};
    use litmus_sim::MachineSpec;
    use litmus_workloads::{suite, Language};

    fn monitor() -> CongestionMonitor {
        let tables = TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14, 24])
            .languages([Language::Python])
            .reference_scale(0.03)
            .build()
            .unwrap();
        let model = DiscountModel::fit(&tables).unwrap();
        CongestionMonitor::new(&tables, model, Language::Python).unwrap()
    }

    fn config(co_runners: usize) -> HarnessConfig {
        HarnessConfig::new(MachineSpec::cascade_lake())
            .env(CoRunEnv::OnePerCore { co_runners })
            .mix_scale(0.05)
            .warmup_ms(50)
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert!(matches!(
            Fleet::start(Vec::new(), monitor()),
            Err(PlatformError::EmptyMix)
        ));
    }

    #[test]
    fn dispatch_prefers_the_cool_machine() {
        // Machine 0 hot (24 co-runners), machine 1 cool (2).
        let mut fleet = Fleet::start(vec![config(24), config(2)], monitor()).unwrap();
        assert_eq!(fleet.len(), 2);
        assert!(!fleet.is_empty());
        let profile = suite::by_name("auth-py")
            .unwrap()
            .profile()
            .scaled(0.05)
            .unwrap();
        let mut cool_wins = 0;
        for _ in 0..5 {
            let (idx, report) = fleet.dispatch(profile.clone()).unwrap();
            assert_eq!(report.name, "auth-py");
            if idx == 1 {
                cool_wins += 1;
            }
        }
        // Individual probes can catch transient bursts (Fig. 7's point:
        // congestion states change fast), but routing must strongly
        // favour the cool machine overall.
        assert!(cool_wins >= 4, "cool machine won only {cool_wins}/5");
        assert_eq!(fleet.dispatch_counts().iter().sum::<usize>(), 5);
    }

    #[test]
    fn probe_all_reports_per_machine_levels() {
        let mut fleet = Fleet::start(vec![config(24), config(2)], monitor()).unwrap();
        let samples = fleet.probe_all().unwrap();
        assert_eq!(samples.len(), 2);
        assert!(
            samples[0].level > samples[1].level,
            "hot {} vs cool {}",
            samples[0].level,
            samples[1].level
        );
        assert!(fleet.machine(0).is_some());
        assert!(fleet.machine(2).is_none());
    }
}
