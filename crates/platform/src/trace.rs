use std::collections::BTreeMap;

use litmus_core::{
    BillingLedger, CommercialPricing, IdealPricing, Invoice, LitmusPricing, LitmusReading,
    PricingTables,
};
use litmus_sim::{Event, InstanceId, MachineSpec, Placement, PmuCounters, Simulator};
use litmus_workloads::{Benchmark, WorkloadMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::PlatformError;
use crate::Result;

/// Identifier of the tenant (customer account) an invocation bills to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// One invocation request in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Arrival time, ms.
    pub at_ms: u64,
    /// Which Table-1 function is invoked.
    pub function: Benchmark,
    /// Tenant the invocation bills to (single-tenant generators use
    /// [`TenantId`]'s default, tenant 0).
    pub tenant: TenantId,
}

/// A streaming supplier of trace events in global time order.
///
/// `TraceSource` is the single front door replays pull workloads
/// through: synthetic generators ([`SyntheticSource`]), materialized
/// traces ([`InvocationTrace::source`]) and external trace replays
/// (e.g. the Azure Functions expander in `litmus-trace`) all implement
/// it, so [`TraceDriver::replay_source`] and the cluster driver can
/// stream events in time-order chunks instead of materializing whole
/// traces.
///
/// # Invariants
///
/// * `next_event` yields events with non-decreasing `at_ms`;
/// * ties on `at_ms` are yielded in ascending [`TenantId`] order (the
///   same canonical order [`InvocationTrace::from_events`] sorts into),
///   so collecting a source and re-sorting is a no-op and streaming a
///   source through a replay is bit-identical to materializing it
///   first.
pub trait TraceSource {
    /// The next event in global time order, or `None` once the trace
    /// is exhausted.
    fn next_event(&mut self) -> Option<TraceEvent>;

    /// `(lower, upper)` bounds on the number of remaining events, like
    /// [`Iterator::size_hint`]; used to pre-size replay buffers.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn next_event(&mut self) -> Option<TraceEvent> {
        (**self).next_event()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }
}

/// One-event-lookahead adapter replays wrap around a [`TraceSource`]
/// to pull events in time-order chunks: everything arriving before a
/// slice boundary is drained without consuming the first event of the
/// next slice.
#[derive(Debug)]
pub struct ChunkedSource<S> {
    source: S,
    lookahead: Option<TraceEvent>,
    primed: bool,
}

impl<S: TraceSource> ChunkedSource<S> {
    /// Wraps `source` (no events are consumed until the first pull).
    pub fn new(source: S) -> Self {
        ChunkedSource {
            source,
            lookahead: None,
            primed: false,
        }
    }

    fn prime(&mut self) {
        if !self.primed {
            self.lookahead = self.source.next_event();
            self.primed = true;
        }
    }

    /// Arrival time of the next event, if any.
    pub fn peek_at_ms(&mut self) -> Option<u64> {
        self.prime();
        self.lookahead.as_ref().map(|e| e.at_ms)
    }

    /// Pops the next event if it arrives strictly before `before_ms`.
    pub fn next_before(&mut self, before_ms: u64) -> Option<TraceEvent> {
        self.prime();
        if self.lookahead.as_ref()?.at_ms < before_ms {
            let event = self.lookahead.take();
            self.lookahead = self.source.next_event();
            event
        } else {
            None
        }
    }

    /// Drains every event arriving strictly before `before_ms` into
    /// `out` — one chunk of the stream.
    pub fn fill_before(&mut self, before_ms: u64, out: &mut Vec<TraceEvent>) {
        while let Some(event) = self.next_before(before_ms) {
            out.push(event);
        }
    }

    /// Whether the underlying source has no events left.
    pub fn is_exhausted(&mut self) -> bool {
        self.prime();
        self.lookahead.is_none()
    }

    /// Remaining-event bounds, including the buffered lookahead.
    pub fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.source.size_hint();
        let buffered = usize::from(self.lookahead.is_some());
        (lo + buffered, hi.map(|h| h + buffered))
    }
}

/// Plays several [`TraceSource`]s back to back, each shifted onto the
/// global clock by its own start offset — the streaming analogue of
/// concatenating materialized traces, so a week-scale multi-day replay
/// can chain per-day sources without materializing any of them.
///
/// # Invariants
///
/// Offsets must be non-decreasing part to part
/// ([`ConcatSource::new`] rejects anything else), and each part must
/// keep its shifted events below the next part's offset — e.g. a
/// bounded source whose span is at most the gap to the next offset.
/// The output is checked: an event that would travel back in time
/// panics rather than silently corrupting the canonical replay order.
#[derive(Debug, Clone)]
pub struct ConcatSource<S> {
    /// `(start offset ms, source)`, played in order.
    parts: Vec<(u64, S)>,
    current: usize,
    last_ms: u64,
}

impl<S: TraceSource> ConcatSource<S> {
    /// Builds the chained source over `parts`, each a `(start offset,
    /// source)` pair. Returns `None` when offsets decrease.
    pub fn new(parts: Vec<(u64, S)>) -> Option<Self> {
        if parts.windows(2).any(|pair| pair[0].0 > pair[1].0) {
            return None;
        }
        Some(ConcatSource {
            parts,
            current: 0,
            last_ms: 0,
        })
    }

    /// How many parts the chain was built over.
    pub fn parts(&self) -> usize {
        self.parts.len()
    }
}

impl<S: TraceSource> TraceSource for ConcatSource<S> {
    fn next_event(&mut self) -> Option<TraceEvent> {
        while let Some((offset, source)) = self.parts.get_mut(self.current) {
            match source.next_event() {
                Some(mut event) => {
                    event.at_ms += *offset;
                    assert!(
                        event.at_ms >= self.last_ms,
                        "ConcatSource part {} broke time order: event at {} ms \
                         after {} ms (its span overruns the next part's offset)",
                        self.current,
                        event.at_ms,
                        self.last_ms,
                    );
                    self.last_ms = event.at_ms;
                    return Some(event);
                }
                None => self.current += 1,
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let mut lo = 0usize;
        let mut hi = Some(0usize);
        for (_, source) in &self.parts[self.current.min(self.parts.len())..] {
            let (part_lo, part_hi) = source.size_hint();
            lo += part_lo;
            hi = match (hi, part_hi) {
                (Some(h), Some(p)) => Some(h + p),
                _ => None,
            };
        }
        (lo, hi)
    }
}

/// Pass-through [`TraceSource`] adapter that counts arrivals per
/// fixed-width time bucket while a replay streams events — the
/// arrival-count tap predictive-autoscaling studies feed forecasters
/// from without a second pass over the trace.
///
/// The tap does not reorder, drop or buffer events; it only tallies.
/// Pass it by `&mut` into a replay (every replay API accepts
/// `&mut S: TraceSource`) and read [`CountingSource::bucket_counts`]
/// afterwards:
///
/// ```
/// use litmus_platform::{CountingSource, InvocationTrace, TraceSource};
/// use litmus_workloads::suite;
///
/// let trace = InvocationTrace::poisson(suite::benchmarks(), 80.0, 2_000, 7)
///     .expect("non-empty pool");
/// let mut tap = CountingSource::new(trace.source(), 500);
/// while let Some(_event) = tap.next_event() {}
/// assert_eq!(tap.total() as usize, trace.len());
/// assert_eq!(tap.bucket_counts().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CountingSource<S> {
    source: S,
    bucket_ms: u64,
    counts: Vec<u64>,
}

impl<S: TraceSource> CountingSource<S> {
    /// Wraps `source`, counting arrivals per `bucket_ms` window
    /// (minimum 1 ms). Buckets are indexed from time 0; gaps between
    /// arrivals appear as explicit zero buckets.
    pub fn new(source: S, bucket_ms: u64) -> Self {
        CountingSource {
            source,
            bucket_ms: bucket_ms.max(1),
            counts: Vec::new(),
        }
    }

    /// The bucket width, ms.
    pub fn bucket_ms(&self) -> u64 {
        self.bucket_ms
    }

    /// Arrivals counted per bucket so far, bucket 0 first. The last
    /// entry is the bucket of the latest event streamed; trailing
    /// silence is not materialized.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total arrivals streamed through the tap.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Unwraps the tap, returning the inner source and the counts.
    pub fn into_parts(self) -> (S, Vec<u64>) {
        (self.source, self.counts)
    }
}

impl<S: TraceSource> TraceSource for CountingSource<S> {
    fn next_event(&mut self) -> Option<TraceEvent> {
        let event = self.source.next_event()?;
        let bucket = (event.at_ms / self.bucket_ms) as usize;
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        Some(event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.source.size_hint()
    }
}

/// Arrival-rate shape of one tenant's traffic over time.
///
/// Rates are arrivals per second; time-varying patterns are sampled by
/// thinning a homogeneous Poisson process at the pattern's peak rate,
/// so every pattern stays exactly reproducible for a given seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Constant-rate Poisson arrivals.
    Steady {
        /// Mean arrivals per second.
        rate_per_s: f64,
    },
    /// Baseline Poisson traffic with periodic bursts: every `period_ms`
    /// the rate jumps to `burst_rate_per_s` for `burst_ms`.
    Bursty {
        /// Rate outside bursts, arrivals per second.
        base_rate_per_s: f64,
        /// Rate inside bursts, arrivals per second.
        burst_rate_per_s: f64,
        /// Burst spacing (start to start), ms.
        period_ms: u64,
        /// Burst length, ms.
        burst_ms: u64,
    },
    /// Diurnal (sinusoidal) modulation around a mean rate:
    /// `rate(t) = mean·(1 + amplitude·sin(2πt/period))`, clamped at 0.
    Diurnal {
        /// Mean arrivals per second.
        mean_rate_per_s: f64,
        /// Relative swing in `[0, 1]` (1 = rate touches zero at trough).
        amplitude: f64,
        /// One full day-night cycle, ms.
        period_ms: u64,
    },
}

impl ArrivalPattern {
    /// Peak instantaneous rate, used as the thinning envelope.
    fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalPattern::Steady { rate_per_s } => rate_per_s,
            ArrivalPattern::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                ..
            } => base_rate_per_s.max(burst_rate_per_s),
            ArrivalPattern::Diurnal {
                mean_rate_per_s,
                amplitude,
                ..
            } => mean_rate_per_s * (1.0 + amplitude),
        }
    }

    /// Instantaneous rate at time `t_ms`.
    fn rate_at(&self, t_ms: f64) -> f64 {
        match *self {
            ArrivalPattern::Steady { rate_per_s } => rate_per_s,
            ArrivalPattern::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                period_ms,
                burst_ms,
            } => {
                let phase = (t_ms as u64) % period_ms.max(1);
                if phase < burst_ms {
                    burst_rate_per_s
                } else {
                    base_rate_per_s
                }
            }
            ArrivalPattern::Diurnal {
                mean_rate_per_s,
                amplitude,
                period_ms,
            } => {
                let phase = t_ms / period_ms.max(1) as f64 * std::f64::consts::TAU;
                (mean_rate_per_s * (1.0 + amplitude * phase.sin())).max(0.0)
            }
        }
    }

    fn is_valid(&self) -> bool {
        let finite_non_negative = |r: f64| r.is_finite() && r >= 0.0;
        let shape_ok = match *self {
            ArrivalPattern::Steady { rate_per_s } => rate_per_s.is_finite(),
            // A zero baseline (pure bursts) is meaningful; a NaN or
            // negative one is not — and it would silently skew the
            // thinning acceptance test rather than fail loudly.
            ArrivalPattern::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                ..
            } => finite_non_negative(base_rate_per_s) && burst_rate_per_s.is_finite(),
            ArrivalPattern::Diurnal {
                mean_rate_per_s,
                amplitude,
                ..
            } => mean_rate_per_s.is_finite() && (0.0..=1.0).contains(&amplitude),
        };
        let peak = self.peak_rate();
        shape_ok && peak > 0.0 && peak.is_finite()
    }
}

/// One tenant's contribution to a multi-tenant trace: who they are,
/// which functions they invoke and how their arrival rate evolves.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTraffic {
    /// The billing tenant.
    pub tenant: TenantId,
    /// Functions this tenant invokes (drawn uniformly).
    pub pool: Vec<Benchmark>,
    /// The tenant's arrival-rate shape.
    pub pattern: ArrivalPattern,
}

/// One tenant's live arrival stream: exponential inter-arrival gaps at
/// the pattern's peak rate, thinned to the instantaneous rate, with the
/// function drawn from the tenant's pool — exactly the process
/// [`InvocationTrace::multi_tenant`] materializes, yielded one event at
/// a time.
#[derive(Debug, Clone)]
struct PatternStream {
    tenant: TenantId,
    rng: StdRng,
    mix: WorkloadMix,
    pattern: ArrivalPattern,
    peak: f64,
    mean_gap_ms: f64,
    t: f64,
    duration_ms: u64,
}

impl PatternStream {
    fn new(traffic: TenantTraffic, duration_ms: u64, seed: u64) -> Option<Self> {
        if !traffic.pattern.is_valid() {
            return None;
        }
        let tenant_seed = seed ^ (traffic.tenant.0 as u64).wrapping_mul(0x9E37_79B9);
        let peak = traffic.pattern.peak_rate();
        Some(PatternStream {
            tenant: traffic.tenant,
            rng: StdRng::seed_from_u64(tenant_seed),
            mix: WorkloadMix::new(traffic.pool, tenant_seed ^ 0xABCD)?,
            pattern: traffic.pattern,
            peak,
            mean_gap_ms: 1000.0 / peak,
            t: 0.0,
            duration_ms,
        })
    }

    fn next(&mut self) -> Option<TraceEvent> {
        loop {
            // Inverse-CDF exponential sampling at the peak rate…
            let u: f64 = self.rng.gen_range(1e-12..1.0);
            self.t += -self.mean_gap_ms * u.ln();
            if self.t >= self.duration_ms as f64 {
                return None;
            }
            // …thinned down to the instantaneous rate. The acceptance
            // draw happens unconditionally so steady traffic consumes
            // the same stream shape.
            let keep: f64 = self.rng.gen_range(0.0..1.0);
            if keep * self.peak >= self.pattern.rate_at(self.t) {
                continue;
            }
            return Some(TraceEvent {
                at_ms: self.t as u64,
                function: self.mix.next_benchmark().clone(),
                tenant: self.tenant,
            });
        }
    }
}

/// Streaming form of the Steady/Bursty/Diurnal generators: per-tenant
/// [`ArrivalPattern`] streams merged into one globally time-ordered
/// event stream without ever materializing the trace.
///
/// [`InvocationTrace::multi_tenant`] is exactly this source collected,
/// so streaming a `SyntheticSource` through a replay is bit-identical
/// to replaying the materialized trace at the same seed.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    streams: Vec<PatternStream>,
    /// Front of each stream; the merge repeatedly takes the minimum by
    /// `(at_ms, tenant, stream index)`, reproducing the stable
    /// `(at_ms, tenant)` sort [`InvocationTrace::from_events`] applies.
    fronts: Vec<Option<TraceEvent>>,
}

impl SyntheticSource {
    /// Builds the merged stream over `tenants` for `duration_ms`,
    /// seeded like [`InvocationTrace::multi_tenant`] (each tenant draws
    /// from an independent RNG stream derived from `seed` and their
    /// [`TenantId`]).
    ///
    /// An empty `tenants` list yields an empty stream. Returns `None`
    /// when any pool is empty or any pattern is invalid.
    pub fn new(tenants: Vec<TenantTraffic>, duration_ms: u64, seed: u64) -> Option<Self> {
        let mut streams = Vec::with_capacity(tenants.len());
        for traffic in tenants {
            streams.push(PatternStream::new(traffic, duration_ms, seed)?);
        }
        let fronts = streams.iter_mut().map(PatternStream::next).collect();
        Some(SyntheticSource { streams, fronts })
    }
}

impl TraceSource for SyntheticSource {
    fn next_event(&mut self) -> Option<TraceEvent> {
        // Track the best front's sort key alongside its index, so the
        // comparison never has to re-index into `fronts`.
        let mut best: Option<(usize, (u64, TenantId))> = None;
        for (idx, front) in self.fronts.iter().enumerate() {
            let Some(event) = front else { continue };
            let key = (event.at_ms, event.tenant);
            let better = match best {
                None => true,
                Some((_, best_key)) => key < best_key,
            };
            if better {
                best = Some((idx, key));
            }
        }
        let (idx, _) = best?;
        let event = self.fronts[idx].take();
        self.fronts[idx] = self.streams[idx].next();
        event
    }
}

/// Borrowed streaming view over a materialized [`InvocationTrace`],
/// yielding its (already time-ordered) events one at a time.
#[derive(Debug, Clone)]
pub struct MaterializedSource<'a> {
    events: std::slice::Iter<'a, TraceEvent>,
}

impl TraceSource for MaterializedSource<'_> {
    fn next_event(&mut self) -> Option<TraceEvent> {
        self.events.next().cloned()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.events.len();
        (remaining, Some(remaining))
    }
}

/// An invocation arrival trace.
///
/// # Examples
///
/// ```
/// use litmus_platform::InvocationTrace;
/// use litmus_workloads::suite;
///
/// let trace = InvocationTrace::poisson(suite::benchmarks(), 40.0, 2_000, 7)
///     .expect("non-empty pool");
/// assert!(!trace.events().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationTrace {
    events: Vec<TraceEvent>,
}

impl InvocationTrace {
    /// Builds a trace from explicit events (sorted by arrival time;
    /// ties broken by tenant so ordering is deterministic). An empty
    /// event list is a valid, empty trace — every constructor that
    /// takes a *collection of work* shares that invariant
    /// ([`InvocationTrace::multi_tenant`] included); only degenerate
    /// *parameters* (an empty function pool, an invalid pattern) are
    /// rejected.
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| (e.at_ms, e.tenant));
        InvocationTrace { events }
    }

    /// Materializes a streaming [`TraceSource`] into a trace.
    pub fn from_source(mut source: impl TraceSource) -> Self {
        let mut events = Vec::with_capacity(source.size_hint().0);
        while let Some(event) = source.next_event() {
            events.push(event);
        }
        InvocationTrace::from_events(events)
    }

    /// Streaming view over this trace's events, for APIs that take a
    /// [`TraceSource`].
    pub fn source(&self) -> MaterializedSource<'_> {
        MaterializedSource {
            events: self.events.iter(),
        }
    }

    /// Synthesises a Poisson-like arrival process: exponential
    /// inter-arrival gaps at `rate_per_s` arrivals per second over
    /// `duration_ms`, drawing functions uniformly from `pool`.
    /// Deterministic for a given seed. All events bill to tenant 0.
    ///
    /// Returns `None` when `pool` is empty or the rate is not positive.
    pub fn poisson(
        pool: Vec<Benchmark>,
        rate_per_s: f64,
        duration_ms: u64,
        seed: u64,
    ) -> Option<Self> {
        InvocationTrace::multi_tenant(
            vec![TenantTraffic {
                tenant: TenantId::default(),
                pool,
                pattern: ArrivalPattern::Steady { rate_per_s },
            }],
            duration_ms,
            seed,
        )
    }

    /// Single-tenant bursty traffic (see [`ArrivalPattern::Bursty`]).
    ///
    /// Returns `None` when `pool` is empty, the burst rate is not
    /// positive, or the base rate is negative or non-finite (a zero
    /// base — traffic only in bursts — is allowed).
    pub fn bursty(
        pool: Vec<Benchmark>,
        base_rate_per_s: f64,
        burst_rate_per_s: f64,
        period_ms: u64,
        burst_ms: u64,
        duration_ms: u64,
        seed: u64,
    ) -> Option<Self> {
        InvocationTrace::multi_tenant(
            vec![TenantTraffic {
                tenant: TenantId::default(),
                pool,
                pattern: ArrivalPattern::Bursty {
                    base_rate_per_s,
                    burst_rate_per_s,
                    period_ms,
                    burst_ms,
                },
            }],
            duration_ms,
            seed,
        )
    }

    /// Single-tenant diurnal traffic (see [`ArrivalPattern::Diurnal`]).
    ///
    /// Returns `None` when `pool` is empty or the pattern is invalid.
    pub fn diurnal(
        pool: Vec<Benchmark>,
        mean_rate_per_s: f64,
        amplitude: f64,
        period_ms: u64,
        duration_ms: u64,
        seed: u64,
    ) -> Option<Self> {
        InvocationTrace::multi_tenant(
            vec![TenantTraffic {
                tenant: TenantId::default(),
                pool,
                pattern: ArrivalPattern::Diurnal {
                    mean_rate_per_s,
                    amplitude,
                    period_ms,
                },
            }],
            duration_ms,
            seed,
        )
    }

    /// Synthesises a multi-tenant trace: each tenant's arrivals follow
    /// their own [`ArrivalPattern`] (sampled by thinning, so
    /// time-varying rates stay exactly reproducible), and the streams
    /// merge into one globally time-ordered trace.
    ///
    /// Each tenant draws from an independent RNG stream derived from
    /// `seed` and their [`TenantId`], so adding a tenant never perturbs
    /// another tenant's arrivals.
    ///
    /// An empty `tenants` list yields an empty trace — consistent with
    /// [`InvocationTrace::from_events`] on an empty event list (no
    /// traffic is a valid workload). Returns `None` only for degenerate
    /// parameters: an empty function pool, or a pattern with a
    /// non-positive peak rate.
    ///
    /// This is [`SyntheticSource`] fully materialized: replaying the
    /// streaming source is bit-identical to replaying this trace.
    pub fn multi_tenant(tenants: Vec<TenantTraffic>, duration_ms: u64, seed: u64) -> Option<Self> {
        Some(InvocationTrace::from_source(SyntheticSource::new(
            tenants,
            duration_ms,
            seed,
        )?))
    }

    /// Merges two traces into one time-ordered trace.
    pub fn merge(self, other: InvocationTrace) -> InvocationTrace {
        let mut events = self.events;
        events.extend(other.events);
        InvocationTrace::from_events(events)
    }

    /// The trace events, sorted by arrival time.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of invocations in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct tenants appearing in the trace, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut tenants: Vec<TenantId> = self.events.iter().map(|e| e.tenant).collect();
        tenants.sort_unstable();
        tenants.dedup();
        tenants
    }
}

/// Outcome of replaying a trace through the metering pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOutcome {
    /// One invoice per completed invocation, in completion order.
    pub ledger: BillingLedger,
    /// Invocations still running when the replay horizon was reached.
    pub unfinished: usize,
    /// Mean wall-clock latency of completed invocations, ms.
    pub mean_latency_ms: f64,
}

/// End-to-end production pipeline: arrivals → concurrent execution on a
/// shared-core machine → Litmus test per invocation → invoice per
/// completion — what a provider's metering plane does continuously.
#[derive(Debug, Clone)]
pub struct TraceDriver {
    spec: MachineSpec,
    cores: usize,
    scale: f64,
    drain_ms: u64,
}

impl TraceDriver {
    /// Creates a driver replaying onto the first `cores` cores of
    /// `spec` (functions time-share the pool).
    pub fn new(spec: MachineSpec, cores: usize) -> Self {
        TraceDriver {
            spec,
            cores,
            scale: 1.0,
            drain_ms: 60_000,
        }
    }

    /// Scales function bodies (tests use small values).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Maximum extra time after the last arrival to let stragglers
    /// finish before declaring them unfinished.
    pub fn drain_ms(mut self, ms: u64) -> Self {
        self.drain_ms = ms;
        self
    }

    /// Replays `trace`, pricing every completed invocation with
    /// `pricing` (tables supply probe baselines and solo oracles are
    /// cached per function).
    ///
    /// Equivalent to [`TraceDriver::replay_source`] on
    /// [`InvocationTrace::source`].
    ///
    /// # Errors
    ///
    /// * [`PlatformError::EnvTooLarge`] if `cores` exceeds the machine.
    /// * Propagated simulation and pricing failures.
    pub fn replay(
        &self,
        trace: &InvocationTrace,
        pricing: &LitmusPricing,
        tables: &PricingTables,
    ) -> Result<TraceOutcome> {
        self.replay_source(trace.source(), pricing, tables)
    }

    /// Replays a streaming [`TraceSource`]: events are pulled in
    /// time-order chunks as simulated time advances, so the trace is
    /// never materialized and event buffering stays proportional to
    /// the invocations in flight. (The returned [`TraceOutcome`] still
    /// records one invoice and one latency sample per completion, so
    /// the *outcome* grows with the trace.) Solo oracles are warmed
    /// lazily, the first time each function appears.
    ///
    /// Bit-identical to materializing the source first and calling
    /// [`TraceDriver::replay`] — warming order cannot affect results
    /// (each solo oracle runs on its own idle simulator).
    ///
    /// # Errors
    ///
    /// * [`PlatformError::EnvTooLarge`] if `cores` exceeds the machine.
    /// * Propagated simulation and pricing failures.
    pub fn replay_source<S: TraceSource>(
        &self,
        source: S,
        pricing: &LitmusPricing,
        tables: &PricingTables,
    ) -> Result<TraceOutcome> {
        if self.cores > self.spec.cores || self.cores == 0 {
            return Err(PlatformError::EnvTooLarge {
                needed: self.cores,
                cores: self.spec.cores,
            });
        }
        let placement = Placement::pool_range(0, self.cores);
        let mut source = ChunkedSource::new(source);
        let mut sim = Simulator::new(self.spec.clone());

        // Solo oracle cache, one entry per distinct function, filled
        // lazily as functions first appear in the stream.
        let mut solo_cache: BTreeMap<&'static str, PmuCounters> = BTreeMap::new();
        let mut pending: BTreeMap<InstanceId, Benchmark> = BTreeMap::new();
        let mut ledger = BillingLedger::new();
        let mut latencies = Vec::new();
        let mut last_arrival_ms = 0u64;

        loop {
            // Launch everything that has arrived by now.
            while let Some(event) = source.next_before(sim.now_ms() + 1) {
                let name = event.function.name();
                if !solo_cache.contains_key(name) {
                    let mut solo_sim = Simulator::new(self.spec.clone());
                    let profile = event.function.profile().scaled(self.scale)?;
                    let id = solo_sim.launch(profile, Placement::pinned(0))?;
                    let counters = solo_sim.run_to_completion(id)?.counters;
                    solo_cache.insert(name, counters);
                }
                let profile = event.function.profile().scaled(self.scale)?;
                let id = sim.launch(profile, placement.clone())?;
                last_arrival_ms = last_arrival_ms.max(event.at_ms);
                pending.insert(id, event.function);
            }
            if source.is_exhausted()
                && (pending.is_empty() || sim.now_ms() >= last_arrival_ms + self.drain_ms)
            {
                break;
            }
            for completion in sim.step() {
                let Event::Completed { id, .. } = completion;
                let Some(bench) = pending.remove(&id) else {
                    continue;
                };
                let report = sim.report(id)?;
                let baseline = tables.baseline(bench.language())?;
                let startup = report
                    .startup
                    .as_ref()
                    .ok_or(litmus_core::CoreError::NoStartup)?;
                let reading = LitmusReading::from_startup(baseline, startup)?;
                let counters = report.counters;
                let solo = solo_cache[bench.name()];
                latencies.push(report.wall_ms());
                ledger.record(Invoice {
                    function: bench.name().to_owned(),
                    counters,
                    commercial: CommercialPricing::new().price(&counters),
                    litmus: pricing.price(&reading, &counters)?,
                    ideal: IdealPricing::new().price(&counters, &solo),
                });
            }
        }

        let mean_latency_ms = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        Ok(TraceOutcome {
            ledger,
            unfinished: pending.len(),
            mean_latency_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus_core::{DiscountModel, TableBuilder};
    use litmus_workloads::suite;

    fn pricing_setup() -> (LitmusPricing, PricingTables) {
        let tables = TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14, 24])
            .reference_scale(0.03)
            .build()
            .unwrap();
        let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
        (pricing, tables)
    }

    #[test]
    fn poisson_traces_are_deterministic_and_ordered() {
        let a = InvocationTrace::poisson(suite::benchmarks(), 50.0, 3000, 9).unwrap();
        let b = InvocationTrace::poisson(suite::benchmarks(), 50.0, 3000, 9).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for pair in a.events().windows(2) {
            assert!(pair[0].at_ms <= pair[1].at_ms);
        }
        // ~50/s over 3 s → ~150 arrivals; allow wide slack.
        assert!(a.len() > 75 && a.len() < 300, "{} arrivals", a.len());
    }

    #[test]
    fn poisson_rejects_bad_inputs() {
        assert!(InvocationTrace::poisson(Vec::new(), 10.0, 1000, 1).is_none());
        assert!(InvocationTrace::poisson(suite::benchmarks(), 0.0, 1000, 1).is_none());
        // No tenants is a valid (empty) workload, matching
        // `from_events(Vec::new())`; only degenerate parameters reject.
        assert!(InvocationTrace::multi_tenant(Vec::new(), 1000, 1)
            .is_some_and(|trace| trace.is_empty()));
        assert!(InvocationTrace::diurnal(
            suite::benchmarks(),
            50.0,
            1.7, // amplitude outside [0, 1]
            1000,
            1000,
            1
        )
        .is_none());
        // Every rate field is validated, not just the peak: a NaN or
        // negative base rate must reject, not silently skew thinning.
        for bad_base in [f64::NAN, -5.0] {
            assert!(InvocationTrace::bursty(
                suite::benchmarks(),
                bad_base,
                100.0,
                1000,
                200,
                2000,
                1
            )
            .is_none());
        }
        assert!(InvocationTrace::poisson(suite::benchmarks(), f64::NAN, 1000, 1).is_none());
        // A zero baseline (traffic only in bursts) is legitimate.
        let pure_bursts =
            InvocationTrace::bursty(suite::benchmarks(), 0.0, 200.0, 1000, 200, 4000, 1).unwrap();
        assert!(!pure_bursts.is_empty());
        assert!(pure_bursts.events().iter().all(|e| e.at_ms % 1000 < 200));
    }

    #[test]
    fn bursty_traces_concentrate_arrivals_in_bursts() {
        // 10/s baseline, 400/s bursts for 200 ms out of every 1000 ms.
        let trace =
            InvocationTrace::bursty(suite::benchmarks(), 10.0, 400.0, 1000, 200, 8_000, 5).unwrap();
        let in_burst = trace
            .events()
            .iter()
            .filter(|e| e.at_ms % 1000 < 200)
            .count();
        // Bursts cover 20% of the time but ~89% of the expected volume.
        assert!(
            in_burst as f64 > trace.len() as f64 * 0.7,
            "{in_burst}/{} arrivals in bursts",
            trace.len()
        );
        assert_eq!(
            trace,
            InvocationTrace::bursty(suite::benchmarks(), 10.0, 400.0, 1000, 200, 8_000, 5,)
                .unwrap()
        );
    }

    #[test]
    fn diurnal_traces_swing_between_peak_and_trough() {
        // One full cycle over 20 s; peak in the first half (sin > 0).
        let trace =
            InvocationTrace::diurnal(suite::benchmarks(), 40.0, 0.9, 20_000, 20_000, 6).unwrap();
        let first_half = trace.events().iter().filter(|e| e.at_ms < 10_000).count();
        let second_half = trace.len() - first_half;
        assert!(
            first_half as f64 > second_half as f64 * 2.0,
            "peak half {first_half} vs trough half {second_half}"
        );
    }

    #[test]
    fn multi_tenant_streams_are_independent_and_ordered() {
        let tenant = |id: u32, rate: f64| TenantTraffic {
            tenant: TenantId(id),
            pool: suite::benchmarks(),
            pattern: ArrivalPattern::Steady { rate_per_s: rate },
        };
        let both = InvocationTrace::multi_tenant(vec![tenant(1, 30.0), tenant(2, 60.0)], 5_000, 17)
            .unwrap();
        for pair in both.events().windows(2) {
            assert!(pair[0].at_ms <= pair[1].at_ms);
        }
        assert_eq!(both.tenants(), vec![TenantId(1), TenantId(2)]);
        let t1: Vec<_> = both
            .events()
            .iter()
            .filter(|e| e.tenant == TenantId(1))
            .collect();
        let t2 = both.len() - t1.len();
        // Tenant 2 arrives at twice the rate.
        assert!(
            t2 as f64 > t1.len() as f64 * 1.4,
            "{} vs {t2} arrivals",
            t1.len()
        );
        // Tenant 1's stream is identical when tenant 2 leaves: streams
        // are seeded per tenant, not shared.
        let alone = InvocationTrace::multi_tenant(vec![tenant(1, 30.0)], 5_000, 17).unwrap();
        let alone_events: Vec<_> = alone.events().iter().collect();
        assert_eq!(t1, alone_events);
    }

    #[test]
    fn synthetic_source_streams_exactly_the_materialized_trace() {
        let tenants = || {
            vec![
                TenantTraffic {
                    tenant: TenantId(3),
                    pool: suite::benchmarks(),
                    pattern: ArrivalPattern::Steady { rate_per_s: 40.0 },
                },
                TenantTraffic {
                    tenant: TenantId(1),
                    pool: suite::benchmarks(),
                    pattern: ArrivalPattern::Bursty {
                        base_rate_per_s: 5.0,
                        burst_rate_per_s: 120.0,
                        period_ms: 1_000,
                        burst_ms: 250,
                    },
                },
            ]
        };
        let materialized = InvocationTrace::multi_tenant(tenants(), 4_000, 99).unwrap();
        let mut source = SyntheticSource::new(tenants(), 4_000, 99).unwrap();
        let mut streamed = Vec::new();
        while let Some(event) = source.next_event() {
            streamed.push(event);
        }
        assert!(!streamed.is_empty());
        assert_eq!(streamed, materialized.events());
        // Collecting the source through `from_source` is the same
        // trace: the merge already yields the canonical order, so the
        // stable re-sort is a no-op.
        assert_eq!(
            InvocationTrace::from_source(SyntheticSource::new(tenants(), 4_000, 99).unwrap()),
            materialized
        );
    }

    #[test]
    fn chunked_source_drains_in_time_order_chunks() {
        let trace = InvocationTrace::poisson(suite::benchmarks(), 60.0, 2_000, 12).unwrap();
        let mut chunked = ChunkedSource::new(trace.source());
        assert_eq!(chunked.size_hint(), (trace.len(), Some(trace.len())));
        let mut rebuilt = Vec::new();
        let mut boundary = 0;
        while !chunked.is_exhausted() {
            boundary += 500;
            let before = rebuilt.len();
            chunked.fill_before(boundary, &mut rebuilt);
            for event in &rebuilt[before..] {
                assert!(event.at_ms < boundary);
                assert!(event.at_ms + 500 >= boundary, "event leaked a chunk early");
            }
        }
        assert_eq!(rebuilt, trace.events());
    }

    #[test]
    fn streaming_replay_is_bit_identical_to_materialized() {
        // A source the driver does not construct itself (replay() is
        // replay_source() on trace.source(), so comparing those two
        // would be vacuous): hand-rolled, with no size hint, so the
        // chunked lookahead path is exercised end to end.
        struct OwnedSource(std::collections::VecDeque<TraceEvent>);
        impl TraceSource for OwnedSource {
            fn next_event(&mut self) -> Option<TraceEvent> {
                self.0.pop_front()
            }
        }

        let (pricing, tables) = pricing_setup();
        let trace = InvocationTrace::poisson(suite::benchmarks(), 90.0, 700, 21).unwrap();
        let driver = TraceDriver::new(MachineSpec::cascade_lake(), 8)
            .scale(0.04)
            .drain_ms(20_000);
        let materialized = driver.replay(&trace, &pricing, &tables).unwrap();
        let streamed = driver
            .replay_source(
                OwnedSource(trace.events().iter().cloned().collect()),
                &pricing,
                &tables,
            )
            .unwrap();
        assert_eq!(materialized, streamed);
        assert_eq!(materialized.ledger.len(), trace.len());
    }

    #[test]
    fn counting_tap_is_transparent_and_tallies_buckets() {
        let trace = InvocationTrace::poisson(suite::benchmarks(), 70.0, 3_000, 33).unwrap();
        let mut tap = CountingSource::new(trace.source(), 250);
        let mut streamed = Vec::new();
        while let Some(event) = tap.next_event() {
            streamed.push(event);
        }
        assert_eq!(streamed, trace.events(), "the tap must not perturb events");
        assert_eq!(tap.total() as usize, trace.len());
        // Counts match a direct bucketing of the trace.
        let buckets = trace
            .events()
            .iter()
            .map(|e| (e.at_ms / 250) as usize)
            .max()
            .unwrap()
            + 1;
        let mut expected = vec![0u64; buckets];
        for event in trace.events() {
            expected[(event.at_ms / 250) as usize] += 1;
        }
        assert_eq!(tap.bucket_counts(), expected);
        // A replay through the tap prices identically to one without.
        let (pricing, tables) = pricing_setup();
        let driver = TraceDriver::new(MachineSpec::cascade_lake(), 8)
            .scale(0.04)
            .drain_ms(20_000);
        let plain = driver.replay(&trace, &pricing, &tables).unwrap();
        let mut tap = CountingSource::new(trace.source(), 250);
        let tapped = driver.replay_source(&mut tap, &pricing, &tables).unwrap();
        assert_eq!(plain, tapped);
        assert_eq!(tap.total() as usize, trace.len());
    }

    #[test]
    fn merge_interleaves_by_time() {
        let a = InvocationTrace::poisson(suite::benchmarks(), 20.0, 2_000, 1).unwrap();
        let b = InvocationTrace::poisson(suite::benchmarks(), 20.0, 2_000, 2).unwrap();
        let merged = a.clone().merge(b.clone());
        assert_eq!(merged.len(), a.len() + b.len());
        for pair in merged.events().windows(2) {
            assert!(pair[0].at_ms <= pair[1].at_ms);
        }
    }

    #[test]
    fn replay_prices_every_completed_invocation() {
        let (pricing, tables) = pricing_setup();
        let trace = InvocationTrace::poisson(suite::benchmarks(), 120.0, 800, 3).unwrap();
        let outcome = TraceDriver::new(MachineSpec::cascade_lake(), 8)
            .scale(0.04)
            .drain_ms(20_000)
            .replay(&trace, &pricing, &tables)
            .unwrap();
        assert_eq!(outcome.unfinished, 0, "drain window must suffice");
        assert_eq!(outcome.ledger.len(), trace.len());
        assert!(outcome.mean_latency_ms > 0.0);
        // Litmus revenue ≤ commercial; discounts are genuine.
        assert!(outcome.ledger.litmus_revenue() <= outcome.ledger.commercial_revenue());
        assert!(outcome.ledger.average_discount() > 0.0);
    }

    #[test]
    fn empty_trace_replays_to_empty_ledger() {
        let (pricing, tables) = pricing_setup();
        let trace = InvocationTrace::from_events(Vec::new());
        let outcome = TraceDriver::new(MachineSpec::cascade_lake(), 4)
            .replay(&trace, &pricing, &tables)
            .unwrap();
        assert!(outcome.ledger.is_empty());
        assert_eq!(outcome.mean_latency_ms, 0.0);
    }

    #[test]
    fn oversized_core_pool_is_rejected() {
        let (pricing, tables) = pricing_setup();
        let trace = InvocationTrace::from_events(Vec::new());
        assert!(matches!(
            TraceDriver::new(MachineSpec::cascade_lake(), 64).replay(&trace, &pricing, &tables),
            Err(PlatformError::EnvTooLarge { .. })
        ));
    }
}
