use std::collections::HashMap;

use litmus_core::{
    BillingLedger, CommercialPricing, IdealPricing, Invoice, LitmusPricing,
    LitmusReading, PricingTables,
};
use litmus_sim::{
    Event, InstanceId, MachineSpec, Placement, PmuCounters, Simulator,
};
use litmus_workloads::{Benchmark, WorkloadMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::PlatformError;
use crate::Result;

/// One invocation request in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Arrival time, ms.
    pub at_ms: u64,
    /// Which Table-1 function is invoked.
    pub function: Benchmark,
}

/// An invocation arrival trace.
///
/// # Examples
///
/// ```
/// use litmus_platform::InvocationTrace;
/// use litmus_workloads::suite;
///
/// let trace = InvocationTrace::poisson(suite::benchmarks(), 40.0, 2_000, 7)
///     .expect("non-empty pool");
/// assert!(!trace.events().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationTrace {
    events: Vec<TraceEvent>,
}

impl InvocationTrace {
    /// Builds a trace from explicit events (sorted by arrival time).
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.at_ms);
        InvocationTrace { events }
    }

    /// Synthesises a Poisson-like arrival process: exponential
    /// inter-arrival gaps at `rate_per_s` arrivals per second over
    /// `duration_ms`, drawing functions uniformly from `pool`.
    /// Deterministic for a given seed.
    ///
    /// Returns `None` when `pool` is empty or the rate is not positive.
    pub fn poisson(
        pool: Vec<Benchmark>,
        rate_per_s: f64,
        duration_ms: u64,
        seed: u64,
    ) -> Option<Self> {
        if pool.is_empty() || rate_per_s <= 0.0 || !rate_per_s.is_finite() {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mix = WorkloadMix::new(pool, seed ^ 0xABCD)?;
        let mut events = Vec::new();
        let mut t = 0.0f64;
        let mean_gap_ms = 1000.0 / rate_per_s;
        loop {
            // Inverse-CDF exponential sampling.
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -mean_gap_ms * u.ln();
            if t >= duration_ms as f64 {
                break;
            }
            events.push(TraceEvent {
                at_ms: t as u64,
                function: mix.next_benchmark().clone(),
            });
        }
        Some(InvocationTrace { events })
    }

    /// The trace events, sorted by arrival time.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of invocations in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Outcome of replaying a trace through the metering pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOutcome {
    /// One invoice per completed invocation, in completion order.
    pub ledger: BillingLedger,
    /// Invocations still running when the replay horizon was reached.
    pub unfinished: usize,
    /// Mean wall-clock latency of completed invocations, ms.
    pub mean_latency_ms: f64,
}

/// End-to-end production pipeline: arrivals → concurrent execution on a
/// shared-core machine → Litmus test per invocation → invoice per
/// completion — what a provider's metering plane does continuously.
#[derive(Debug, Clone)]
pub struct TraceDriver {
    spec: MachineSpec,
    cores: usize,
    scale: f64,
    drain_ms: u64,
}

impl TraceDriver {
    /// Creates a driver replaying onto the first `cores` cores of
    /// `spec` (functions time-share the pool).
    pub fn new(spec: MachineSpec, cores: usize) -> Self {
        TraceDriver {
            spec,
            cores,
            scale: 1.0,
            drain_ms: 60_000,
        }
    }

    /// Scales function bodies (tests use small values).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Maximum extra time after the last arrival to let stragglers
    /// finish before declaring them unfinished.
    pub fn drain_ms(mut self, ms: u64) -> Self {
        self.drain_ms = ms;
        self
    }

    /// Replays `trace`, pricing every completed invocation with
    /// `pricing` (tables supply probe baselines and solo oracles are
    /// cached per function).
    ///
    /// # Errors
    ///
    /// * [`PlatformError::EnvTooLarge`] if `cores` exceeds the machine.
    /// * Propagated simulation and pricing failures.
    pub fn replay(
        &self,
        trace: &InvocationTrace,
        pricing: &LitmusPricing,
        tables: &PricingTables,
    ) -> Result<TraceOutcome> {
        if self.cores > self.spec.cores || self.cores == 0 {
            return Err(PlatformError::EnvTooLarge {
                needed: self.cores,
                cores: self.spec.cores,
            });
        }
        let placement = Placement::pool_range(0, self.cores);
        let mut sim = Simulator::new(self.spec.clone());

        // Solo oracle cache, one entry per distinct function.
        let mut solo_cache: HashMap<&str, PmuCounters> = HashMap::new();
        for event in trace.events() {
            let name = event.function.name();
            if !solo_cache.contains_key(name) {
                let mut solo_sim = Simulator::new(self.spec.clone());
                let profile = event.function.profile().scaled(self.scale)?;
                let id = solo_sim.launch(profile, Placement::pinned(0))?;
                let counters = solo_sim.run_to_completion(id)?.counters;
                solo_cache.insert(name, counters);
            }
        }

        let mut pending: HashMap<InstanceId, &Benchmark> = HashMap::new();
        let mut ledger = BillingLedger::new();
        let mut latencies = Vec::new();
        let mut next_event = 0;
        let horizon = trace
            .events()
            .last()
            .map(|e| e.at_ms + self.drain_ms)
            .unwrap_or(0);

        while next_event < trace.len() || (!pending.is_empty() && sim.now_ms() < horizon)
        {
            // Launch everything that has arrived by now.
            while next_event < trace.len()
                && trace.events()[next_event].at_ms <= sim.now_ms()
            {
                let event = &trace.events()[next_event];
                let profile = event.function.profile().scaled(self.scale)?;
                let id = sim.launch(profile, placement.clone())?;
                pending.insert(id, &event.function);
                next_event += 1;
            }
            for completion in sim.step() {
                let Event::Completed { id, .. } = completion;
                let Some(bench) = pending.remove(&id) else {
                    continue;
                };
                let report = sim.report(id)?;
                let baseline = tables.baseline(bench.language())?;
                let startup = report
                    .startup
                    .as_ref()
                    .ok_or(litmus_core::CoreError::NoStartup)?;
                let reading = LitmusReading::from_startup(baseline, startup)?;
                let counters = report.counters;
                let solo = solo_cache[bench.name()];
                latencies.push(report.wall_ms());
                ledger.record(Invoice {
                    function: bench.name().to_owned(),
                    counters,
                    commercial: CommercialPricing::new().price(&counters),
                    litmus: pricing.price(&reading, &counters)?,
                    ideal: IdealPricing::new().price(&counters, &solo),
                });
            }
        }

        let mean_latency_ms = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        Ok(TraceOutcome {
            ledger,
            unfinished: pending.len(),
            mean_latency_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus_core::{DiscountModel, TableBuilder};
    use litmus_workloads::suite;

    fn pricing_setup() -> (LitmusPricing, PricingTables) {
        let tables = TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14, 24])
            .reference_scale(0.03)
            .build()
            .unwrap();
        let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
        (pricing, tables)
    }

    #[test]
    fn poisson_traces_are_deterministic_and_ordered() {
        let a = InvocationTrace::poisson(suite::benchmarks(), 50.0, 3000, 9).unwrap();
        let b = InvocationTrace::poisson(suite::benchmarks(), 50.0, 3000, 9).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for pair in a.events().windows(2) {
            assert!(pair[0].at_ms <= pair[1].at_ms);
        }
        // ~50/s over 3 s → ~150 arrivals; allow wide slack.
        assert!(a.len() > 75 && a.len() < 300, "{} arrivals", a.len());
    }

    #[test]
    fn poisson_rejects_bad_inputs() {
        assert!(InvocationTrace::poisson(Vec::new(), 10.0, 1000, 1).is_none());
        assert!(
            InvocationTrace::poisson(suite::benchmarks(), 0.0, 1000, 1).is_none()
        );
    }

    #[test]
    fn replay_prices_every_completed_invocation() {
        let (pricing, tables) = pricing_setup();
        let trace =
            InvocationTrace::poisson(suite::benchmarks(), 120.0, 800, 3).unwrap();
        let outcome = TraceDriver::new(MachineSpec::cascade_lake(), 8)
            .scale(0.04)
            .drain_ms(20_000)
            .replay(&trace, &pricing, &tables)
            .unwrap();
        assert_eq!(outcome.unfinished, 0, "drain window must suffice");
        assert_eq!(outcome.ledger.len(), trace.len());
        assert!(outcome.mean_latency_ms > 0.0);
        // Litmus revenue ≤ commercial; discounts are genuine.
        assert!(outcome.ledger.litmus_revenue() <= outcome.ledger.commercial_revenue());
        assert!(outcome.ledger.average_discount() > 0.0);
    }

    #[test]
    fn empty_trace_replays_to_empty_ledger() {
        let (pricing, tables) = pricing_setup();
        let trace = InvocationTrace::from_events(Vec::new());
        let outcome = TraceDriver::new(MachineSpec::cascade_lake(), 4)
            .replay(&trace, &pricing, &tables)
            .unwrap();
        assert!(outcome.ledger.is_empty());
        assert_eq!(outcome.mean_latency_ms, 0.0);
    }

    #[test]
    fn oversized_core_pool_is_rejected() {
        let (pricing, tables) = pricing_setup();
        let trace = InvocationTrace::from_events(Vec::new());
        assert!(matches!(
            TraceDriver::new(MachineSpec::cascade_lake(), 64)
                .replay(&trace, &pricing, &tables),
            Err(PlatformError::EnvTooLarge { .. })
        ));
    }
}
