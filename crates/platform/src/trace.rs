use std::collections::HashMap;

use litmus_core::{
    BillingLedger, CommercialPricing, IdealPricing, Invoice, LitmusPricing, LitmusReading,
    PricingTables,
};
use litmus_sim::{Event, InstanceId, MachineSpec, Placement, PmuCounters, Simulator};
use litmus_workloads::{Benchmark, WorkloadMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::PlatformError;
use crate::Result;

/// Identifier of the tenant (customer account) an invocation bills to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// One invocation request in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Arrival time, ms.
    pub at_ms: u64,
    /// Which Table-1 function is invoked.
    pub function: Benchmark,
    /// Tenant the invocation bills to (single-tenant generators use
    /// [`TenantId`]'s default, tenant 0).
    pub tenant: TenantId,
}

/// Arrival-rate shape of one tenant's traffic over time.
///
/// Rates are arrivals per second; time-varying patterns are sampled by
/// thinning a homogeneous Poisson process at the pattern's peak rate,
/// so every pattern stays exactly reproducible for a given seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Constant-rate Poisson arrivals.
    Steady {
        /// Mean arrivals per second.
        rate_per_s: f64,
    },
    /// Baseline Poisson traffic with periodic bursts: every `period_ms`
    /// the rate jumps to `burst_rate_per_s` for `burst_ms`.
    Bursty {
        /// Rate outside bursts, arrivals per second.
        base_rate_per_s: f64,
        /// Rate inside bursts, arrivals per second.
        burst_rate_per_s: f64,
        /// Burst spacing (start to start), ms.
        period_ms: u64,
        /// Burst length, ms.
        burst_ms: u64,
    },
    /// Diurnal (sinusoidal) modulation around a mean rate:
    /// `rate(t) = mean·(1 + amplitude·sin(2πt/period))`, clamped at 0.
    Diurnal {
        /// Mean arrivals per second.
        mean_rate_per_s: f64,
        /// Relative swing in `[0, 1]` (1 = rate touches zero at trough).
        amplitude: f64,
        /// One full day-night cycle, ms.
        period_ms: u64,
    },
}

impl ArrivalPattern {
    /// Peak instantaneous rate, used as the thinning envelope.
    fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalPattern::Steady { rate_per_s } => rate_per_s,
            ArrivalPattern::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                ..
            } => base_rate_per_s.max(burst_rate_per_s),
            ArrivalPattern::Diurnal {
                mean_rate_per_s,
                amplitude,
                ..
            } => mean_rate_per_s * (1.0 + amplitude),
        }
    }

    /// Instantaneous rate at time `t_ms`.
    fn rate_at(&self, t_ms: f64) -> f64 {
        match *self {
            ArrivalPattern::Steady { rate_per_s } => rate_per_s,
            ArrivalPattern::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                period_ms,
                burst_ms,
            } => {
                let phase = (t_ms as u64) % period_ms.max(1);
                if phase < burst_ms {
                    burst_rate_per_s
                } else {
                    base_rate_per_s
                }
            }
            ArrivalPattern::Diurnal {
                mean_rate_per_s,
                amplitude,
                period_ms,
            } => {
                let phase = t_ms / period_ms.max(1) as f64 * std::f64::consts::TAU;
                (mean_rate_per_s * (1.0 + amplitude * phase.sin())).max(0.0)
            }
        }
    }

    fn is_valid(&self) -> bool {
        let finite_non_negative = |r: f64| r.is_finite() && r >= 0.0;
        let shape_ok = match *self {
            ArrivalPattern::Steady { rate_per_s } => rate_per_s.is_finite(),
            // A zero baseline (pure bursts) is meaningful; a NaN or
            // negative one is not — and it would silently skew the
            // thinning acceptance test rather than fail loudly.
            ArrivalPattern::Bursty {
                base_rate_per_s,
                burst_rate_per_s,
                ..
            } => finite_non_negative(base_rate_per_s) && burst_rate_per_s.is_finite(),
            ArrivalPattern::Diurnal {
                mean_rate_per_s,
                amplitude,
                ..
            } => mean_rate_per_s.is_finite() && (0.0..=1.0).contains(&amplitude),
        };
        let peak = self.peak_rate();
        shape_ok && peak > 0.0 && peak.is_finite()
    }
}

/// One tenant's contribution to a multi-tenant trace: who they are,
/// which functions they invoke and how their arrival rate evolves.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTraffic {
    /// The billing tenant.
    pub tenant: TenantId,
    /// Functions this tenant invokes (drawn uniformly).
    pub pool: Vec<Benchmark>,
    /// The tenant's arrival-rate shape.
    pub pattern: ArrivalPattern,
}

/// An invocation arrival trace.
///
/// # Examples
///
/// ```
/// use litmus_platform::InvocationTrace;
/// use litmus_workloads::suite;
///
/// let trace = InvocationTrace::poisson(suite::benchmarks(), 40.0, 2_000, 7)
///     .expect("non-empty pool");
/// assert!(!trace.events().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationTrace {
    events: Vec<TraceEvent>,
}

impl InvocationTrace {
    /// Builds a trace from explicit events (sorted by arrival time;
    /// ties broken by tenant so ordering is deterministic).
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| (e.at_ms, e.tenant));
        InvocationTrace { events }
    }

    /// Synthesises a Poisson-like arrival process: exponential
    /// inter-arrival gaps at `rate_per_s` arrivals per second over
    /// `duration_ms`, drawing functions uniformly from `pool`.
    /// Deterministic for a given seed. All events bill to tenant 0.
    ///
    /// Returns `None` when `pool` is empty or the rate is not positive.
    pub fn poisson(
        pool: Vec<Benchmark>,
        rate_per_s: f64,
        duration_ms: u64,
        seed: u64,
    ) -> Option<Self> {
        InvocationTrace::multi_tenant(
            vec![TenantTraffic {
                tenant: TenantId::default(),
                pool,
                pattern: ArrivalPattern::Steady { rate_per_s },
            }],
            duration_ms,
            seed,
        )
    }

    /// Single-tenant bursty traffic (see [`ArrivalPattern::Bursty`]).
    ///
    /// Returns `None` when `pool` is empty, the burst rate is not
    /// positive, or the base rate is negative or non-finite (a zero
    /// base — traffic only in bursts — is allowed).
    pub fn bursty(
        pool: Vec<Benchmark>,
        base_rate_per_s: f64,
        burst_rate_per_s: f64,
        period_ms: u64,
        burst_ms: u64,
        duration_ms: u64,
        seed: u64,
    ) -> Option<Self> {
        InvocationTrace::multi_tenant(
            vec![TenantTraffic {
                tenant: TenantId::default(),
                pool,
                pattern: ArrivalPattern::Bursty {
                    base_rate_per_s,
                    burst_rate_per_s,
                    period_ms,
                    burst_ms,
                },
            }],
            duration_ms,
            seed,
        )
    }

    /// Single-tenant diurnal traffic (see [`ArrivalPattern::Diurnal`]).
    ///
    /// Returns `None` when `pool` is empty or the pattern is invalid.
    pub fn diurnal(
        pool: Vec<Benchmark>,
        mean_rate_per_s: f64,
        amplitude: f64,
        period_ms: u64,
        duration_ms: u64,
        seed: u64,
    ) -> Option<Self> {
        InvocationTrace::multi_tenant(
            vec![TenantTraffic {
                tenant: TenantId::default(),
                pool,
                pattern: ArrivalPattern::Diurnal {
                    mean_rate_per_s,
                    amplitude,
                    period_ms,
                },
            }],
            duration_ms,
            seed,
        )
    }

    /// Synthesises a multi-tenant trace: each tenant's arrivals follow
    /// their own [`ArrivalPattern`] (sampled by thinning, so
    /// time-varying rates stay exactly reproducible), and the streams
    /// merge into one globally time-ordered trace.
    ///
    /// Each tenant draws from an independent RNG stream derived from
    /// `seed` and their [`TenantId`], so adding a tenant never perturbs
    /// another tenant's arrivals.
    ///
    /// Returns `None` when `tenants` is empty, any pool is empty, or
    /// any pattern has a non-positive peak rate.
    pub fn multi_tenant(tenants: Vec<TenantTraffic>, duration_ms: u64, seed: u64) -> Option<Self> {
        if tenants.is_empty() {
            return None;
        }
        let mut events = Vec::new();
        for traffic in tenants {
            if !traffic.pattern.is_valid() {
                return None;
            }
            let tenant_seed = seed ^ (traffic.tenant.0 as u64).wrapping_mul(0x9E37_79B9);
            let mut rng = StdRng::seed_from_u64(tenant_seed);
            let mut mix = WorkloadMix::new(traffic.pool, tenant_seed ^ 0xABCD)?;
            let peak = traffic.pattern.peak_rate();
            let mean_gap_ms = 1000.0 / peak;
            let mut t = 0.0f64;
            loop {
                // Inverse-CDF exponential sampling at the peak rate…
                let u: f64 = rng.gen_range(1e-12..1.0);
                t += -mean_gap_ms * u.ln();
                if t >= duration_ms as f64 {
                    break;
                }
                // …thinned down to the instantaneous rate. The
                // acceptance draw happens unconditionally so steady
                // traffic consumes the same stream shape.
                let keep: f64 = rng.gen_range(0.0..1.0);
                if keep * peak >= traffic.pattern.rate_at(t) {
                    continue;
                }
                events.push(TraceEvent {
                    at_ms: t as u64,
                    function: mix.next_benchmark().clone(),
                    tenant: traffic.tenant,
                });
            }
        }
        Some(InvocationTrace::from_events(events))
    }

    /// Merges two traces into one time-ordered trace.
    pub fn merge(self, other: InvocationTrace) -> InvocationTrace {
        let mut events = self.events;
        events.extend(other.events);
        InvocationTrace::from_events(events)
    }

    /// The trace events, sorted by arrival time.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of invocations in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct tenants appearing in the trace, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut tenants: Vec<TenantId> = self.events.iter().map(|e| e.tenant).collect();
        tenants.sort_unstable();
        tenants.dedup();
        tenants
    }
}

/// Outcome of replaying a trace through the metering pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOutcome {
    /// One invoice per completed invocation, in completion order.
    pub ledger: BillingLedger,
    /// Invocations still running when the replay horizon was reached.
    pub unfinished: usize,
    /// Mean wall-clock latency of completed invocations, ms.
    pub mean_latency_ms: f64,
}

/// End-to-end production pipeline: arrivals → concurrent execution on a
/// shared-core machine → Litmus test per invocation → invoice per
/// completion — what a provider's metering plane does continuously.
#[derive(Debug, Clone)]
pub struct TraceDriver {
    spec: MachineSpec,
    cores: usize,
    scale: f64,
    drain_ms: u64,
}

impl TraceDriver {
    /// Creates a driver replaying onto the first `cores` cores of
    /// `spec` (functions time-share the pool).
    pub fn new(spec: MachineSpec, cores: usize) -> Self {
        TraceDriver {
            spec,
            cores,
            scale: 1.0,
            drain_ms: 60_000,
        }
    }

    /// Scales function bodies (tests use small values).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Maximum extra time after the last arrival to let stragglers
    /// finish before declaring them unfinished.
    pub fn drain_ms(mut self, ms: u64) -> Self {
        self.drain_ms = ms;
        self
    }

    /// Replays `trace`, pricing every completed invocation with
    /// `pricing` (tables supply probe baselines and solo oracles are
    /// cached per function).
    ///
    /// # Errors
    ///
    /// * [`PlatformError::EnvTooLarge`] if `cores` exceeds the machine.
    /// * Propagated simulation and pricing failures.
    pub fn replay(
        &self,
        trace: &InvocationTrace,
        pricing: &LitmusPricing,
        tables: &PricingTables,
    ) -> Result<TraceOutcome> {
        if self.cores > self.spec.cores || self.cores == 0 {
            return Err(PlatformError::EnvTooLarge {
                needed: self.cores,
                cores: self.spec.cores,
            });
        }
        let placement = Placement::pool_range(0, self.cores);
        let mut sim = Simulator::new(self.spec.clone());

        // Solo oracle cache, one entry per distinct function.
        let mut solo_cache: HashMap<&str, PmuCounters> = HashMap::new();
        for event in trace.events() {
            let name = event.function.name();
            if !solo_cache.contains_key(name) {
                let mut solo_sim = Simulator::new(self.spec.clone());
                let profile = event.function.profile().scaled(self.scale)?;
                let id = solo_sim.launch(profile, Placement::pinned(0))?;
                let counters = solo_sim.run_to_completion(id)?.counters;
                solo_cache.insert(name, counters);
            }
        }

        let mut pending: HashMap<InstanceId, &Benchmark> = HashMap::new();
        let mut ledger = BillingLedger::new();
        let mut latencies = Vec::new();
        let mut next_event = 0;
        let horizon = trace
            .events()
            .last()
            .map(|e| e.at_ms + self.drain_ms)
            .unwrap_or(0);

        while next_event < trace.len() || (!pending.is_empty() && sim.now_ms() < horizon) {
            // Launch everything that has arrived by now.
            while next_event < trace.len() && trace.events()[next_event].at_ms <= sim.now_ms() {
                let event = &trace.events()[next_event];
                let profile = event.function.profile().scaled(self.scale)?;
                let id = sim.launch(profile, placement.clone())?;
                pending.insert(id, &event.function);
                next_event += 1;
            }
            for completion in sim.step() {
                let Event::Completed { id, .. } = completion;
                let Some(bench) = pending.remove(&id) else {
                    continue;
                };
                let report = sim.report(id)?;
                let baseline = tables.baseline(bench.language())?;
                let startup = report
                    .startup
                    .as_ref()
                    .ok_or(litmus_core::CoreError::NoStartup)?;
                let reading = LitmusReading::from_startup(baseline, startup)?;
                let counters = report.counters;
                let solo = solo_cache[bench.name()];
                latencies.push(report.wall_ms());
                ledger.record(Invoice {
                    function: bench.name().to_owned(),
                    counters,
                    commercial: CommercialPricing::new().price(&counters),
                    litmus: pricing.price(&reading, &counters)?,
                    ideal: IdealPricing::new().price(&counters, &solo),
                });
            }
        }

        let mean_latency_ms = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        Ok(TraceOutcome {
            ledger,
            unfinished: pending.len(),
            mean_latency_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus_core::{DiscountModel, TableBuilder};
    use litmus_workloads::suite;

    fn pricing_setup() -> (LitmusPricing, PricingTables) {
        let tables = TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14, 24])
            .reference_scale(0.03)
            .build()
            .unwrap();
        let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
        (pricing, tables)
    }

    #[test]
    fn poisson_traces_are_deterministic_and_ordered() {
        let a = InvocationTrace::poisson(suite::benchmarks(), 50.0, 3000, 9).unwrap();
        let b = InvocationTrace::poisson(suite::benchmarks(), 50.0, 3000, 9).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for pair in a.events().windows(2) {
            assert!(pair[0].at_ms <= pair[1].at_ms);
        }
        // ~50/s over 3 s → ~150 arrivals; allow wide slack.
        assert!(a.len() > 75 && a.len() < 300, "{} arrivals", a.len());
    }

    #[test]
    fn poisson_rejects_bad_inputs() {
        assert!(InvocationTrace::poisson(Vec::new(), 10.0, 1000, 1).is_none());
        assert!(InvocationTrace::poisson(suite::benchmarks(), 0.0, 1000, 1).is_none());
        assert!(InvocationTrace::multi_tenant(Vec::new(), 1000, 1).is_none());
        assert!(InvocationTrace::diurnal(
            suite::benchmarks(),
            50.0,
            1.7, // amplitude outside [0, 1]
            1000,
            1000,
            1
        )
        .is_none());
        // Every rate field is validated, not just the peak: a NaN or
        // negative base rate must reject, not silently skew thinning.
        for bad_base in [f64::NAN, -5.0] {
            assert!(InvocationTrace::bursty(
                suite::benchmarks(),
                bad_base,
                100.0,
                1000,
                200,
                2000,
                1
            )
            .is_none());
        }
        assert!(InvocationTrace::poisson(suite::benchmarks(), f64::NAN, 1000, 1).is_none());
        // A zero baseline (traffic only in bursts) is legitimate.
        let pure_bursts =
            InvocationTrace::bursty(suite::benchmarks(), 0.0, 200.0, 1000, 200, 4000, 1).unwrap();
        assert!(!pure_bursts.is_empty());
        assert!(pure_bursts.events().iter().all(|e| e.at_ms % 1000 < 200));
    }

    #[test]
    fn bursty_traces_concentrate_arrivals_in_bursts() {
        // 10/s baseline, 400/s bursts for 200 ms out of every 1000 ms.
        let trace =
            InvocationTrace::bursty(suite::benchmarks(), 10.0, 400.0, 1000, 200, 8_000, 5).unwrap();
        let in_burst = trace
            .events()
            .iter()
            .filter(|e| e.at_ms % 1000 < 200)
            .count();
        // Bursts cover 20% of the time but ~89% of the expected volume.
        assert!(
            in_burst as f64 > trace.len() as f64 * 0.7,
            "{in_burst}/{} arrivals in bursts",
            trace.len()
        );
        assert_eq!(
            trace,
            InvocationTrace::bursty(suite::benchmarks(), 10.0, 400.0, 1000, 200, 8_000, 5,)
                .unwrap()
        );
    }

    #[test]
    fn diurnal_traces_swing_between_peak_and_trough() {
        // One full cycle over 20 s; peak in the first half (sin > 0).
        let trace =
            InvocationTrace::diurnal(suite::benchmarks(), 40.0, 0.9, 20_000, 20_000, 6).unwrap();
        let first_half = trace.events().iter().filter(|e| e.at_ms < 10_000).count();
        let second_half = trace.len() - first_half;
        assert!(
            first_half as f64 > second_half as f64 * 2.0,
            "peak half {first_half} vs trough half {second_half}"
        );
    }

    #[test]
    fn multi_tenant_streams_are_independent_and_ordered() {
        let tenant = |id: u32, rate: f64| TenantTraffic {
            tenant: TenantId(id),
            pool: suite::benchmarks(),
            pattern: ArrivalPattern::Steady { rate_per_s: rate },
        };
        let both = InvocationTrace::multi_tenant(vec![tenant(1, 30.0), tenant(2, 60.0)], 5_000, 17)
            .unwrap();
        for pair in both.events().windows(2) {
            assert!(pair[0].at_ms <= pair[1].at_ms);
        }
        assert_eq!(both.tenants(), vec![TenantId(1), TenantId(2)]);
        let t1: Vec<_> = both
            .events()
            .iter()
            .filter(|e| e.tenant == TenantId(1))
            .collect();
        let t2 = both.len() - t1.len();
        // Tenant 2 arrives at twice the rate.
        assert!(
            t2 as f64 > t1.len() as f64 * 1.4,
            "{} vs {t2} arrivals",
            t1.len()
        );
        // Tenant 1's stream is identical when tenant 2 leaves: streams
        // are seeded per tenant, not shared.
        let alone = InvocationTrace::multi_tenant(vec![tenant(1, 30.0)], 5_000, 17).unwrap();
        let alone_events: Vec<_> = alone.events().iter().collect();
        assert_eq!(t1, alone_events);
    }

    #[test]
    fn merge_interleaves_by_time() {
        let a = InvocationTrace::poisson(suite::benchmarks(), 20.0, 2_000, 1).unwrap();
        let b = InvocationTrace::poisson(suite::benchmarks(), 20.0, 2_000, 2).unwrap();
        let merged = a.clone().merge(b.clone());
        assert_eq!(merged.len(), a.len() + b.len());
        for pair in merged.events().windows(2) {
            assert!(pair[0].at_ms <= pair[1].at_ms);
        }
    }

    #[test]
    fn replay_prices_every_completed_invocation() {
        let (pricing, tables) = pricing_setup();
        let trace = InvocationTrace::poisson(suite::benchmarks(), 120.0, 800, 3).unwrap();
        let outcome = TraceDriver::new(MachineSpec::cascade_lake(), 8)
            .scale(0.04)
            .drain_ms(20_000)
            .replay(&trace, &pricing, &tables)
            .unwrap();
        assert_eq!(outcome.unfinished, 0, "drain window must suffice");
        assert_eq!(outcome.ledger.len(), trace.len());
        assert!(outcome.mean_latency_ms > 0.0);
        // Litmus revenue ≤ commercial; discounts are genuine.
        assert!(outcome.ledger.litmus_revenue() <= outcome.ledger.commercial_revenue());
        assert!(outcome.ledger.average_discount() > 0.0);
    }

    #[test]
    fn empty_trace_replays_to_empty_ledger() {
        let (pricing, tables) = pricing_setup();
        let trace = InvocationTrace::from_events(Vec::new());
        let outcome = TraceDriver::new(MachineSpec::cascade_lake(), 4)
            .replay(&trace, &pricing, &tables)
            .unwrap();
        assert!(outcome.ledger.is_empty());
        assert_eq!(outcome.mean_latency_ms, 0.0);
    }

    #[test]
    fn oversized_core_pool_is_rejected() {
        let (pricing, tables) = pricing_setup();
        let trace = InvocationTrace::from_events(Vec::new());
        assert!(matches!(
            TraceDriver::new(MachineSpec::cascade_lake(), 64).replay(&trace, &pricing, &tables),
            Err(PlatformError::EnvTooLarge { .. })
        ));
    }
}
