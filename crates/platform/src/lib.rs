//! Serverless platform orchestration for the Litmus reproduction.
//!
//! This crate drives the paper's experimental protocols end to end:
//!
//! * [`CoRunHarness`] — a steady-state congested machine: N random
//!   functions kept alive by launch-on-completion backfill, either one
//!   per core (§7.1) or time-sharing a core pool (§7.2), with a
//!   measurement slot for the function under test;
//! * [`PricingExperiment`] — the full evaluation loop behind Figs.
//!   11–13 and 15–21: run each tenant function repeatedly in the
//!   congested environment, probe it with Litmus tests, and produce an
//!   [`Invoice`](litmus_core::Invoice) comparing commercial, Litmus and
//!   ideal prices;
//! * [`ExperimentResults`] — per-function invoices plus the aggregate
//!   discount/error summaries the paper quotes.
//!
//! # Examples
//!
//! A miniature §7.1 experiment (tiny scales for speed):
//!
//! ```no_run
//! use litmus_core::{DiscountModel, LitmusPricing, TableBuilder};
//! use litmus_platform::{CoRunEnv, HarnessConfig, PricingExperiment};
//! use litmus_sim::MachineSpec;
//! use litmus_workloads::suite;
//!
//! # fn main() -> Result<(), litmus_platform::PlatformError> {
//! let spec = MachineSpec::cascade_lake();
//! let tables = TableBuilder::new(spec.clone()).build()?;
//! let pricing = LitmusPricing::new(DiscountModel::fit(&tables)?);
//!
//! let config = HarnessConfig::new(spec).env(CoRunEnv::OnePerCore { co_runners: 26 });
//! let experiment = PricingExperiment::new(config).reps(30);
//! let results = experiment.run(&pricing, &tables, &suite::test_benchmarks())?;
//! println!("avg Litmus discount: {:.1}%", results.mean_litmus_discount() * 100.0);
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod error;
mod experiment;
mod harness;
mod monitor;
mod trace;

pub use admission::{AdmissionController, AdmissionDecision};
pub use error::PlatformError;
pub use experiment::{ExperimentResults, PricingExperiment};
pub use harness::{CoRunEnv, CoRunHarness, HarnessConfig};
pub use monitor::{CongestionMonitor, CongestionSample};
pub use trace::{
    ArrivalPattern, ChunkedSource, ConcatSource, CountingSource, InvocationTrace,
    MaterializedSource, SyntheticSource, TenantId, TenantTraffic, TraceDriver, TraceEvent,
    TraceOutcome, TraceSource,
};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PlatformError>;
