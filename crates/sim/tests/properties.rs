//! Property-based tests on simulator invariants.

use litmus_sim::{
    ContentionInputs, ContentionModel, ExecPhase, ExecutionProfile, MachineSpec, Placement,
    Simulator,
};
use proptest::prelude::*;

fn arb_phase() -> impl Strategy<Value = ExecPhase> {
    (
        1.0e5f64..5.0e7, // instructions
        0.2f64..2.0,     // cpi_private
        0.0f64..20.0,    // l2_mpki
        0.0f64..1.0,     // l3_miss_ratio
        0.1f64..1.0,     // blocking
        0.5f64..120.0,   // footprint
    )
        .prop_map(|(i, cpi, mpki, ratio, blocking, fp)| {
            ExecPhase::new(i, cpi, mpki, ratio, blocking, fp)
        })
}

fn profile_from(phases: Vec<ExecPhase>) -> ExecutionProfile {
    let mut builder = ExecutionProfile::builder("prop");
    for p in phases {
        builder = builder.phase(p);
    }
    builder.build().expect("arbitrary phases are in-range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counters are internally consistent for any workload:
    /// instructions exactly match the profile, T_priv + T_shared equals
    /// total cycles, and L3 misses never exceed L2 misses.
    #[test]
    fn pmu_accounting_is_consistent(phases in prop::collection::vec(arb_phase(), 1..4)) {
        let profile = profile_from(phases);
        let expected_instr = profile.total_instructions();
        let mut sim = Simulator::new(MachineSpec::cascade_lake());
        let id = sim.launch(profile, Placement::pinned(0)).unwrap();
        let report = sim.run_to_completion(id).unwrap();
        let c = report.counters;
        prop_assert!((c.instructions - expected_instr).abs() < 1.0);
        prop_assert!(
            (c.t_private_cycles() + c.t_shared_cycles() - c.cycles).abs()
                < 1e-6 * c.cycles
        );
        prop_assert!(c.l3_misses <= c.l2_misses * (1.0 + 1e-9));
        prop_assert!(c.cycles > 0.0);
        prop_assert!(report.wall_ms() > 0.0);
    }

    /// Adding co-runners never speeds a workload up.
    #[test]
    fn corunners_never_speed_things_up(
        phase in arb_phase(),
        noise in arb_phase(),
        corunners in 1usize..12,
    ) {
        let profile = profile_from(vec![phase]);
        let mut solo = Simulator::new(MachineSpec::cascade_lake());
        let id = solo.launch(profile.clone(), Placement::pinned(0)).unwrap();
        let solo_report = solo.run_to_completion(id).unwrap();

        let mut busy = Simulator::new(MachineSpec::cascade_lake());
        for core in 1..=corunners {
            // Long-lived noise so it outlasts the measured workload.
            let noise_profile = profile_from(vec![ExecPhase::new(
                1.0e10,
                noise.cpi_private,
                noise.l2_mpki,
                noise.l3_miss_ratio,
                noise.blocking,
                noise.footprint_mb,
            )]);
            busy.launch(noise_profile, Placement::pinned(core)).unwrap();
        }
        let id = busy.launch(profile, Placement::pinned(0)).unwrap();
        let busy_report = busy.run_to_completion(id).unwrap();
        prop_assert!(
            busy_report.counters.cycles >= solo_report.counters.cycles * 0.999,
            "solo {} vs congested {}",
            solo_report.counters.cycles,
            busy_report.counters.cycles
        );
    }

    /// The contention model is monotone: more traffic never lowers
    /// latencies, and utilisations scale with demand.
    #[test]
    fn contention_model_is_monotone(
        l2_rate in 0.0f64..3.0e6,
        l3_rate in 0.0f64..2.0e6,
        footprint in 0.0f64..4096.0,
        bump in 1.01f64..3.0,
    ) {
        let model = ContentionModel::new(MachineSpec::cascade_lake());
        let l3_rate = l3_rate.min(l2_rate); // L3 misses ⊆ L2 misses
        let base = model.evaluate(
            ContentionInputs {
                l2_miss_rate: l2_rate,
                l3_miss_rate: l3_rate,
                total_footprint_mb: footprint,
            },
            8,
        );
        let more = model.evaluate(
            ContentionInputs {
                l2_miss_rate: l2_rate * bump,
                l3_miss_rate: l3_rate * bump,
                total_footprint_mb: footprint * bump,
            },
            8,
        );
        prop_assert!(more.l3_latency >= base.l3_latency);
        prop_assert!(more.mem_latency >= base.mem_latency);
        prop_assert!(more.capacity_pressure >= base.capacity_pressure);
        prop_assert!(base.l3_latency.is_finite());
        prop_assert!(more.mem_latency.is_finite());
    }

    /// Scaling a profile scales its cycles near-linearly when alone.
    #[test]
    fn scaled_profiles_scale_cycles(phase in arb_phase(), scale in 1.5f64..4.0) {
        let profile = profile_from(vec![phase]);
        let run = |p: ExecutionProfile| {
            let mut sim = Simulator::new(MachineSpec::cascade_lake());
            let id = sim.launch(p, Placement::pinned(0)).unwrap();
            sim.run_to_completion(id).unwrap().counters.cycles
        };
        let base = run(profile.clone());
        let scaled = run(profile.scaled(scale).unwrap());
        let ratio = scaled / base;
        prop_assert!(
            (ratio / scale - 1.0).abs() < 0.02,
            "cycles ratio {ratio} vs scale {scale}"
        );
    }

    /// Determinism: identical launch sequences give identical counters.
    #[test]
    fn simulation_is_reproducible(phases in prop::collection::vec(arb_phase(), 1..3)) {
        let run = || {
            let mut sim = Simulator::new(MachineSpec::cascade_lake());
            let ids: Vec<_> = phases
                .iter()
                .enumerate()
                .map(|(core, &p)| {
                    sim.launch(profile_from(vec![p]), Placement::pinned(core))
                        .unwrap()
                })
                .collect();
            sim.run_until_idle().unwrap();
            ids.into_iter()
                .map(|id| sim.report(id).unwrap().counters)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
