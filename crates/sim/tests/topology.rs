//! Multi-socket topology: per-domain contention isolation.

use litmus_sim::{ExecPhase, ExecutionProfile, MachineSpec, Placement, Simulator};

fn memory_hog(instructions: f64) -> ExecutionProfile {
    ExecutionProfile::builder("hog")
        .phase(ExecPhase::new(instructions, 0.6, 30.0, 0.8, 0.9, 30.0))
        .build()
        .unwrap()
}

fn victim() -> ExecutionProfile {
    ExecutionProfile::builder("victim")
        .phase(ExecPhase::new(20_000_000.0, 0.6, 4.0, 0.4, 0.8, 16.0))
        .build()
        .unwrap()
}

/// Runs the victim on core 0 with 8 hogs on the given cores; returns
/// the victim's T_shared per instruction.
fn victim_t_shared(spec: MachineSpec, hog_cores: std::ops::Range<usize>) -> f64 {
    let mut sim = Simulator::new(spec);
    for core in hog_cores {
        sim.launch(memory_hog(5.0e9), Placement::pinned(core))
            .unwrap();
    }
    let id = sim.launch(victim(), Placement::pinned(0)).unwrap();
    let report = sim.run_to_completion(id).unwrap();
    report.counters.t_shared_per_instruction()
}

#[test]
fn dual_socket_preset_validates_and_maps_cores() {
    let spec = MachineSpec::cascade_lake_dual();
    assert!(spec.validate().is_ok());
    assert_eq!(spec.sockets, 2);
    assert_eq!(spec.cores_per_domain(), 16);
    assert_eq!(spec.domain_of(0), 0);
    assert_eq!(spec.domain_of(15), 0);
    assert_eq!(spec.domain_of(16), 1);
    assert_eq!(spec.domain_of(31), 1);
}

#[test]
fn invalid_socket_splits_are_rejected() {
    let mut spec = MachineSpec::cascade_lake();
    spec.sockets = 3; // 32 % 3 != 0
    assert!(spec.validate().is_err());
    spec.sockets = 0;
    assert!(spec.validate().is_err());
}

#[test]
fn remote_socket_hogs_do_not_interfere() {
    let spec = MachineSpec::cascade_lake_dual();
    // Hogs on the victim's socket (cores 1..9) vs the remote one (16..24).
    let local = victim_t_shared(spec.clone(), 1..9);
    let remote = victim_t_shared(spec.clone(), 16..24);
    // Solo baseline.
    let mut sim = Simulator::new(spec);
    let id = sim.launch(victim(), Placement::pinned(0)).unwrap();
    let solo = sim
        .run_to_completion(id)
        .unwrap()
        .counters
        .t_shared_per_instruction();

    assert!(
        local > solo * 1.3,
        "same-socket hogs must slow the victim: {local} vs solo {solo}"
    );
    assert!(
        (remote - solo).abs() / solo < 0.02,
        "remote-socket hogs must not interfere: {remote} vs solo {solo}"
    );
}

#[test]
fn domain_snapshots_report_independent_states() {
    let spec = MachineSpec::cascade_lake_dual();
    let mut sim = Simulator::new(spec);
    for core in 16..28 {
        sim.launch(memory_hog(5.0e9), Placement::pinned(core))
            .unwrap();
    }
    sim.run_for_ms(20);
    let quiet = sim.domain_congestion(0).unwrap();
    let busy = sim.domain_congestion(1).unwrap();
    assert!(busy.level() > quiet.level() + 1.0);
    assert!(sim.domain_congestion(2).is_none());
    // The machine-level view is the conservative (busy) one.
    assert_eq!(sim.congestion().level(), busy.level());
}

#[test]
fn merged_domain_preset_behaves_like_before() {
    // Single-domain: hogs interfere regardless of core distance.
    let spec = MachineSpec::cascade_lake();
    let near = victim_t_shared(spec.clone(), 1..9);
    let far = victim_t_shared(spec, 16..24);
    assert!(
        (near - far).abs() / near < 0.05,
        "merged domain: placement distance must not matter ({near} vs {far})"
    );
}
