use std::fmt;

use crate::contention::{CongestionSnapshot, ContentionInputs, ContentionModel};
use crate::error::SimError;
use crate::frequency::FrequencyGovernor;
use crate::pmu::{PmuCounters, PmuSample};
use crate::profile::ExecutionProfile;
use crate::report::{ExecutionReport, StartupReport};
use crate::spec::MachineSpec;
use crate::Result;

/// Iterations of the per-quantum congestion fixed point. Demand and
/// latency feed back into each other; eight damped rounds are enough for
/// well under 0.1% residual at the loads the experiments use.
const FIXED_POINT_ITERS: usize = 8;

/// Safety horizon for [`Simulator::run_to_completion`], in quanta (ms).
const HORIZON_MS: u64 = 30_000_000;

/// Opaque handle to a launched workload instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(usize);

impl InstanceId {
    /// The raw index (stable for the lifetime of the simulator).
    pub fn as_usize(&self) -> usize {
        self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instance#{}", self.0)
    }
}

/// Where a workload instance may execute.
///
/// * [`Placement::pinned`] — the §7.1 protocol: one function bound to one
///   core, no temporal sharing with other pinned functions unless they
///   share the core.
/// * [`Placement::pool`] — the §7.2 protocol: the function may run on any
///   core of the pool and time-shares them with everything else in the
///   pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    allowed: Vec<usize>,
}

impl Placement {
    /// Pins the instance to a single core.
    pub fn pinned(core: usize) -> Self {
        Placement {
            allowed: vec![core],
        }
    }

    /// Allows the instance on every core in `cores` (deduplicated,
    /// order-insensitive).
    pub fn pool(cores: impl IntoIterator<Item = usize>) -> Self {
        let mut allowed: Vec<usize> = cores.into_iter().collect();
        allowed.sort_unstable();
        allowed.dedup();
        Placement { allowed }
    }

    /// Allows the instance on cores `start..end`.
    pub fn pool_range(start: usize, end: usize) -> Self {
        Placement::pool(start..end)
    }

    /// The sorted list of allowed cores.
    pub fn allowed_cores(&self) -> &[usize] {
        &self.allowed
    }

    fn validate(&self, spec: &MachineSpec) -> Result<()> {
        if self.allowed.is_empty() {
            return Err(SimError::EmptyPlacement);
        }
        for &core in &self.allowed {
            if core >= spec.cores {
                return Err(SimError::UnknownCore {
                    core,
                    cores: spec.cores,
                });
            }
        }
        Ok(())
    }
}

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Launched and still executing (or waiting for a core).
    Active,
    /// Finished; an [`ExecutionReport`] is available.
    Completed,
}

/// Notification produced by [`Simulator::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// An instance ran to completion during the step.
    Completed {
        /// The finished instance.
        id: InstanceId,
        /// Completion time in (fractional) ms.
        at_ms: f64,
    },
}

#[derive(Debug)]
struct Context {
    profile: ExecutionProfile,
    allowed: Vec<usize>,
    phase_idx: usize,
    instr_into_phase: f64,
    counters: PmuCounters,
    launched_ms: u64,
    completed_ms: Option<f64>,
    last_run_ms: u64,
    ran_last_quantum: bool,
    has_run: bool,
    startup_pending: bool,
    startup_quanta: u64,
    startup_l3_rate_sum: f64,
    startup_report: Option<StartupReport>,
    sampling: bool,
    samples: Vec<PmuSample>,
}

impl Context {
    fn is_active(&self) -> bool {
        self.completed_ms.is_none()
    }
}

/// Per-quantum execution plan for one scheduled context.
#[derive(Debug, Clone, Copy)]
struct Slot {
    ctx: usize,
    core: usize,
    smt_busy: bool,
    co_resident: f64,
}

/// The quantum-stepped machine simulator.
///
/// See the [crate-level documentation](crate) for the performance model.
/// Typical use: [`Simulator::launch`] workloads, [`Simulator::step`] (or
/// the `run_*` helpers) until the instances of interest complete, then
/// read [`Simulator::report`].
#[derive(Debug)]
pub struct Simulator {
    spec: MachineSpec,
    model: ContentionModel,
    governor: FrequencyGovernor,
    now_ms: u64,
    contexts: Vec<Context>,
    machine_l3_misses: f64,
    /// One congestion snapshot per sharing domain (socket).
    last_snapshots: Vec<CongestionSnapshot>,
    /// Whether the most recent quantum scheduled nothing — i.e. the
    /// simulator state is at its idle fixed point and a further empty
    /// quantum could only advance the clock (see
    /// [`Simulator::skip_idle_to`]).
    idle_settled: bool,
}

impl Simulator {
    /// Creates a simulator with the paper's pinned-frequency governor.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`MachineSpec::validate`] — constructing a
    /// machine from an invalid spec is a programming error.
    pub fn new(spec: MachineSpec) -> Self {
        Simulator::with_governor(spec.clone(), FrequencyGovernor::fixed(spec.frequency_ghz))
    }

    /// Creates a simulator with an explicit frequency governor (the §8
    /// "CPU Frequency" study passes a turbo governor here).
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`MachineSpec::validate`].
    pub fn with_governor(spec: MachineSpec, governor: FrequencyGovernor) -> Self {
        spec.validate().expect("machine spec must be valid"); // lint:allow(panic-in-lib): constructor contract; `# Panics` documented on this fn
        let last_snapshots = vec![CongestionSnapshot::idle(&spec); spec.sockets];
        Simulator {
            model: ContentionModel::new(spec.clone()),
            spec,
            governor,
            now_ms: 0,
            contexts: Vec::new(),
            machine_l3_misses: 0.0,
            last_snapshots,
            idle_settled: false,
        }
    }

    /// The machine specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Current simulation time in ms.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Congestion state observed during the most recent quantum. On a
    /// multi-socket machine this is the *most congested* domain — the
    /// conservative reading an admission controller wants.
    pub fn congestion(&self) -> &CongestionSnapshot {
        self.last_snapshots
            .iter()
            .max_by(|a, b| a.level().total_cmp(&b.level()))
            .expect("at least one domain") // lint:allow(panic-in-lib): spec.validate() above requires sockets >= 1
    }

    /// Congestion state of one sharing domain (socket), if it exists.
    pub fn domain_congestion(&self, domain: usize) -> Option<&CongestionSnapshot> {
        self.last_snapshots.get(domain)
    }

    /// Machine-wide cumulative L3 misses.
    pub fn machine_l3_misses(&self) -> f64 {
        self.machine_l3_misses
    }

    /// Number of instances still active.
    pub fn active_instances(&self) -> usize {
        self.contexts.iter().filter(|c| c.is_active()).count()
    }

    /// Launches a workload without per-quantum sampling.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyPlacement`] or [`SimError::UnknownCore`]
    /// for invalid placements.
    pub fn launch(
        &mut self,
        profile: ExecutionProfile,
        placement: Placement,
    ) -> Result<InstanceId> {
        self.launch_inner(profile, placement, false)
    }

    /// Launches a workload recording a [`PmuSample`] every quantum
    /// (needed for Fig. 6-style IPC timelines).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::launch`].
    pub fn launch_sampled(
        &mut self,
        profile: ExecutionProfile,
        placement: Placement,
    ) -> Result<InstanceId> {
        self.launch_inner(profile, placement, true)
    }

    fn launch_inner(
        &mut self,
        profile: ExecutionProfile,
        placement: Placement,
        sampling: bool,
    ) -> Result<InstanceId> {
        placement.validate(&self.spec)?;
        let id = InstanceId(self.contexts.len());
        let startup_pending = profile.has_startup();
        self.contexts.push(Context {
            profile,
            allowed: placement.allowed,
            phase_idx: 0,
            instr_into_phase: 0.0,
            counters: PmuCounters::default(),
            launched_ms: self.now_ms,
            completed_ms: None,
            last_run_ms: self.now_ms,
            ran_last_quantum: false,
            has_run: false,
            startup_pending,
            startup_quanta: 0,
            startup_l3_rate_sum: 0.0,
            startup_report: None,
            sampling,
            samples: Vec::new(),
        });
        Ok(id)
    }

    /// Lifecycle state of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownInstance`] for an id this simulator
    /// never issued.
    pub fn state(&self, id: InstanceId) -> Result<InstanceState> {
        let ctx = self
            .contexts
            .get(id.0)
            .ok_or(SimError::UnknownInstance(id))?;
        Ok(if ctx.is_active() {
            InstanceState::Active
        } else {
            InstanceState::Completed
        })
    }

    /// Execution report for a completed instance.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownInstance`] for an unknown id.
    /// * [`SimError::StillRunning`] if the instance has not finished.
    pub fn report(&self, id: InstanceId) -> Result<ExecutionReport> {
        let ctx = self
            .contexts
            .get(id.0)
            .ok_or(SimError::UnknownInstance(id))?;
        let completed_ms = ctx.completed_ms.ok_or(SimError::StillRunning(id))?;
        Ok(ExecutionReport {
            name: ctx.profile.name().to_owned(),
            launched_ms: ctx.launched_ms,
            completed_ms,
            counters: ctx.counters,
            startup: ctx.startup_report.clone(),
            samples: ctx.samples.clone(),
        })
    }

    /// Advances one quantum; returns completion events in instance order.
    pub fn step(&mut self) -> Vec<Event> {
        let slots = self.schedule();
        let active = slots.len();
        let freq = self
            .governor
            .frequency_ghz(active, self.spec.hardware_threads());
        let cycles_q = self.spec.cycles_per_quantum(freq);

        let snapshots = self.solve_congestion(&slots, cycles_q);

        let mut events = Vec::new();
        let mut machine_l3_this_quantum = 0.0;
        for slot in &slots {
            let snapshot = snapshots[self.spec.domain_of(slot.core)];
            if let Some(event) =
                self.advance(slot, cycles_q, &snapshot, &mut machine_l3_this_quantum)
            {
                events.push(event);
            }
        }

        self.machine_l3_misses += machine_l3_this_quantum;
        self.last_snapshots = snapshots;

        // Bookkeeping for round-robin fairness and switch counting. The
        // run stamp is the quantum's *end* time so that a context that
        // just ran sorts behind peers still waiting from earlier quanta.
        self.now_ms += 1;
        let scheduled: Vec<usize> = slots.iter().map(|s| s.ctx).collect();
        for (idx, ctx) in self.contexts.iter_mut().enumerate() {
            let ran = scheduled.contains(&idx);
            if ran {
                ctx.last_run_ms = self.now_ms;
                ctx.has_run = true;
            }
            ctx.ran_last_quantum = ran;
        }
        self.idle_settled = active == 0;
        events
    }

    /// Whether the most recent quantum scheduled nothing, so the
    /// machine state has reached its idle fixed point: another empty
    /// [`Simulator::step`] would change nothing but the clock.
    pub fn is_idle_settled(&self) -> bool {
        self.idle_settled
    }

    /// Fast-forwards an idle machine to `target_ms` in O(1), exactly
    /// as if [`Simulator::step`] had been called once per quantum.
    ///
    /// An empty quantum's only effects are the clock tick, refreshing
    /// [`Simulator::congestion`] from the (empty) schedule and
    /// clearing the contexts' ran-last-quantum flags — all of which
    /// reach a fixed point after a single empty quantum. So the skip
    /// runs at most one real settling quantum (none if the machine is
    /// already settled) and then jumps the clock, which is
    /// bit-identical to stepping quantum by quantum. A no-op when
    /// `target_ms` is not in the future.
    ///
    /// # Errors
    ///
    /// [`SimError::SkipWhileActive`] if any instance is still active —
    /// skipping would lose execution progress and completions.
    pub fn skip_idle_to(&mut self, target_ms: u64) -> Result<()> {
        let active = self.active_instances();
        if active > 0 {
            return Err(SimError::SkipWhileActive { active });
        }
        if !self.idle_settled && self.now_ms < target_ms {
            self.step();
        }
        if self.now_ms < target_ms {
            self.now_ms = target_ms;
        }
        Ok(())
    }

    /// Steps `ms` quanta, collecting all events.
    pub fn run_for_ms(&mut self, ms: u64) -> Vec<Event> {
        let mut events = Vec::new();
        for _ in 0..ms {
            events.extend(self.step());
        }
        events
    }

    /// Steps until `id` completes, then returns its report.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownInstance`] for an unknown id.
    /// * [`SimError::HorizonExceeded`] if the instance does not finish
    ///   within the safety horizon (deadlocked placements, runaway
    ///   profiles).
    pub fn run_to_completion(&mut self, id: InstanceId) -> Result<ExecutionReport> {
        if id.0 >= self.contexts.len() {
            return Err(SimError::UnknownInstance(id));
        }
        let deadline = self.now_ms + HORIZON_MS;
        while self.contexts[id.0].is_active() {
            if self.now_ms >= deadline {
                return Err(SimError::HorizonExceeded {
                    horizon_ms: HORIZON_MS,
                });
            }
            self.step();
        }
        self.report(id)
    }

    /// Steps until every launched instance has completed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HorizonExceeded`] on runaway workloads.
    pub fn run_until_idle(&mut self) -> Result<Vec<Event>> {
        let deadline = self.now_ms + HORIZON_MS;
        let mut events = Vec::new();
        while self.active_instances() > 0 {
            if self.now_ms >= deadline {
                return Err(SimError::HorizonExceeded {
                    horizon_ms: HORIZON_MS,
                });
            }
            events.extend(self.step());
        }
        Ok(events)
    }

    /// Round-robin, least-recently-run-first scheduling of active
    /// contexts onto hardware-thread slots.
    fn schedule(&self) -> Vec<Slot> {
        let smt = self.spec.smt_ways;
        let mut free: Vec<usize> = vec![smt; self.spec.cores];

        // Fractional per-core load: each active context spreads one unit
        // of demand across its allowed cores. Used for the Fig. 14
        // switch-overhead factor.
        let mut load = vec![0.0f64; self.spec.cores];
        let mut runnable: Vec<usize> = Vec::new();
        for (idx, ctx) in self.contexts.iter().enumerate() {
            if !ctx.is_active() {
                continue;
            }
            runnable.push(idx);
            let share = 1.0 / ctx.allowed.len() as f64;
            for &core in &ctx.allowed {
                load[core] += share;
            }
        }
        runnable.sort_by_key(|&idx| (self.contexts[idx].last_run_ms, idx));

        let mut assigned: Vec<Slot> = Vec::new();
        for &idx in &runnable {
            let ctx = &self.contexts[idx];
            if let Some(&core) = ctx.allowed.iter().find(|&&c| free[c] > 0) {
                free[core] -= 1;
                assigned.push(Slot {
                    ctx: idx,
                    core,
                    smt_busy: false,
                    co_resident: 1.0,
                });
            }
        }
        // Post-pass: mark SMT siblings and attach per-core sharing level.
        let mut occupancy = vec![0usize; self.spec.cores];
        for slot in &assigned {
            occupancy[slot.core] += 1;
        }
        for slot in &mut assigned {
            slot.smt_busy = occupancy[slot.core] > 1;
            slot.co_resident = (load[slot.core] / smt as f64).max(1.0);
        }
        assigned.sort_by_key(|s| s.ctx);
        assigned
    }

    /// Damped fixed point per sharing domain: aggregate demand →
    /// latencies → rates → demand.
    ///
    /// Traffic comes from the contexts *running* this quantum in each
    /// domain; cache footprint pressure comes from every *live* context
    /// (attributed across the domains its placement spans) — a
    /// descheduled function's working set still occupies the L3, which is
    /// what makes heavily time-shared machines (§7.2) more congested
    /// than one-function-per-core setups with the same running count.
    fn solve_congestion(&self, slots: &[Slot], cycles_q: f64) -> Vec<CongestionSnapshot> {
        let domains = self.spec.sockets;
        // Live footprint per domain: a context's working set lands on
        // the domains its allowed cores belong to, split proportionally.
        let mut live_footprint = vec![0.0f64; domains];
        for ctx in self.contexts.iter().filter(|c| c.is_active()) {
            let fp = ctx.profile.phases()[ctx.phase_idx].footprint_mb;
            let share = fp / ctx.allowed.len() as f64;
            for &core in &ctx.allowed {
                live_footprint[self.spec.domain_of(core)] += share;
            }
        }
        let mut active = vec![0usize; domains];
        for slot in slots {
            active[self.spec.domain_of(slot.core)] += 1;
        }

        let mut snapshots = self.last_snapshots.clone();
        let mut inputs: Vec<ContentionInputs> = live_footprint
            .iter()
            .map(|&fp| ContentionInputs {
                total_footprint_mb: fp,
                ..Default::default()
            })
            .collect();
        for iter in 0..FIXED_POINT_ITERS {
            let mut next: Vec<ContentionInputs> = live_footprint
                .iter()
                .map(|&fp| ContentionInputs {
                    total_footprint_mb: fp,
                    ..Default::default()
                })
                .collect();
            for slot in slots {
                let domain = self.spec.domain_of(slot.core);
                let snapshot = &snapshots[domain];
                let ctx = &self.contexts[slot.ctx];
                let phase = ctx.profile.phases()[ctx.phase_idx];
                let cpi = self.effective_cpi(slot, &phase, snapshot);
                let instr_rate = cycles_q / cpi;
                let mpki = phase.l2_mpki + self.spec.switch_mpki(slot.co_resident);
                let l2_rate = instr_rate * mpki / 1000.0;
                let miss = self
                    .model
                    .effective_miss_ratio(phase.l3_miss_ratio, snapshot.capacity_pressure);
                next[domain].l2_miss_rate += l2_rate;
                next[domain].l3_miss_rate += l2_rate * miss;
            }
            for domain in 0..domains {
                if iter > 0 {
                    // Damping stabilises queueing near saturation.
                    next[domain].l2_miss_rate =
                        0.5 * (inputs[domain].l2_miss_rate + next[domain].l2_miss_rate);
                    next[domain].l3_miss_rate =
                        0.5 * (inputs[domain].l3_miss_rate + next[domain].l3_miss_rate);
                }
                snapshots[domain] = self.model.evaluate(next[domain], active[domain]);
            }
            inputs = next;
        }
        snapshots
    }

    /// Cycles per instruction of one scheduled context in the current
    /// congestion state, including all private-CPI inflation factors.
    fn effective_cpi(
        &self,
        slot: &Slot,
        phase: &crate::profile::ExecPhase,
        snapshot: &CongestionSnapshot,
    ) -> f64 {
        self.private_cpi(slot, phase, snapshot) + self.stall_per_instr(slot, phase, snapshot)
    }

    fn private_cpi(
        &self,
        slot: &Slot,
        phase: &crate::profile::ExecPhase,
        snapshot: &CongestionSnapshot,
    ) -> f64 {
        let switch = self.spec.switch_factor(slot.co_resident);
        let smt = if slot.smt_busy {
            self.spec.smt_private_factor
        } else {
            1.0
        };
        // Congestion leaks into private time through frequency-domain
        // effects, TLB pressure and prefetcher interference: mostly
        // tracking capacity pressure, plus the two utilisations.
        let couple_metric = (snapshot.capacity_pressure
            + snapshot.l3_port_utilization
            + snapshot.bandwidth_utilization.min(1.2))
        .min(2.0);
        let couple = 1.0 + self.spec.private_coupling * couple_metric;
        phase.cpi_private * switch * smt * couple
    }

    fn stall_per_instr(
        &self,
        slot: &Slot,
        phase: &crate::profile::ExecPhase,
        snapshot: &CongestionSnapshot,
    ) -> f64 {
        let miss = self
            .model
            .effective_miss_ratio(phase.l3_miss_ratio, snapshot.capacity_pressure);
        let post_l2 = self.model.post_l2_latency(snapshot, miss);
        let mpki = phase.l2_mpki + self.spec.switch_mpki(slot.co_resident);
        (mpki / 1000.0) * phase.blocking * post_l2
    }

    /// Advances one scheduled context through a quantum's cycles,
    /// handling phase boundaries, startup-window snapshots and
    /// completion. Returns a completion event if the profile ended.
    fn advance(
        &mut self,
        slot: &Slot,
        cycles_q: f64,
        snapshot: &CongestionSnapshot,
        machine_l3: &mut f64,
    ) -> Option<Event> {
        let mut cycles_left = cycles_q;
        let mut quantum_instr = 0.0;
        let mut quantum_cycles = 0.0;
        let mut quantum_l3 = 0.0;
        let mut completed: Option<f64> = None;

        // Context-switch accounting: scheduled now after a gap.
        {
            let ctx = &mut self.contexts[slot.ctx];
            if ctx.has_run && !ctx.ran_last_quantum {
                ctx.counters.context_switches += 1.0;
            }
            if ctx.startup_pending {
                ctx.startup_quanta += 1;
                ctx.startup_l3_rate_sum += snapshot.l3_miss_rate;
            }
        }

        while cycles_left > 1e-9 {
            let (phase, phase_idx, instr_into_phase, profile_len, startup_len) = {
                let ctx = &self.contexts[slot.ctx];
                (
                    ctx.profile.phases()[ctx.phase_idx],
                    ctx.phase_idx,
                    ctx.instr_into_phase,
                    ctx.profile.phases().len(),
                    ctx.profile.startup_len(),
                )
            };
            let private = self.private_cpi(slot, &phase, snapshot);
            let stall = self.stall_per_instr(slot, &phase, snapshot);
            let cpi = private + stall;
            let miss = self
                .model
                .effective_miss_ratio(phase.l3_miss_ratio, snapshot.capacity_pressure);

            let remaining = phase.instructions - instr_into_phase;
            let possible = cycles_left / cpi;
            let executed = possible.min(remaining);
            let used_cycles = executed * cpi;
            cycles_left -= used_cycles;

            let mpki = phase.l2_mpki + self.spec.switch_mpki(slot.co_resident);
            let l2m = executed * mpki / 1000.0;
            let l3m = l2m * miss;
            quantum_instr += executed;
            quantum_cycles += used_cycles;
            quantum_l3 += l3m;

            let ctx = &mut self.contexts[slot.ctx];
            ctx.counters.instructions += executed;
            ctx.counters.cycles += used_cycles;
            ctx.counters.stall_l2_cycles += executed * stall;
            ctx.counters.l2_misses += l2m;
            ctx.counters.l3_misses += l3m;

            if executed >= remaining - 1e-6 {
                ctx.phase_idx = phase_idx + 1;
                ctx.instr_into_phase = 0.0;
                let frac = 1.0 - cycles_left / cycles_q;
                if ctx.phase_idx == startup_len && ctx.startup_pending {
                    ctx.startup_pending = false;
                    let wall_ms = self.now_ms as f64 + frac - ctx.launched_ms as f64;
                    let rate = if ctx.startup_quanta > 0 {
                        ctx.startup_l3_rate_sum / ctx.startup_quanta as f64
                    } else {
                        0.0
                    };
                    ctx.startup_report = Some(StartupReport {
                        counters: ctx.counters,
                        wall_ms,
                        machine_l3_miss_rate: rate,
                    });
                }
                if ctx.phase_idx == profile_len {
                    let at = self.now_ms as f64 + frac;
                    ctx.completed_ms = Some(at);
                    completed = Some(at);
                    break;
                }
            } else {
                ctx.instr_into_phase = instr_into_phase + executed;
            }
        }

        *machine_l3 += quantum_l3;
        let ctx = &mut self.contexts[slot.ctx];
        if ctx.sampling {
            ctx.samples.push(PmuSample {
                time_ms: self.now_ms,
                instructions: quantum_instr,
                cycles: quantum_cycles,
                l3_misses: quantum_l3,
            });
        }
        completed.map(|at_ms| Event::Completed {
            id: InstanceId(slot.ctx),
            at_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ExecPhase, ExecutionProfile};

    fn compute_profile(name: &str, instructions: f64) -> ExecutionProfile {
        ExecutionProfile::builder(name)
            .phase(ExecPhase::new(instructions, 0.5, 1.0, 0.1, 0.7, 4.0))
            .build()
            .unwrap()
    }

    fn memory_profile(name: &str, instructions: f64) -> ExecutionProfile {
        ExecutionProfile::builder(name)
            .phase(ExecPhase::new(instructions, 0.6, 30.0, 0.7, 0.85, 24.0))
            .build()
            .unwrap()
    }

    fn sim() -> Simulator {
        Simulator::new(MachineSpec::cascade_lake())
    }

    #[test]
    fn single_workload_completes_with_exact_instructions() {
        let mut sim = sim();
        let id = sim
            .launch(compute_profile("a", 5_000_000.0), Placement::pinned(0))
            .unwrap();
        let report = sim.run_to_completion(id).unwrap();
        assert!((report.counters.instructions - 5_000_000.0).abs() < 1.0);
        assert!(report.wall_ms() > 0.0);
        assert!(report.counters.cycles > 0.0);
        assert_eq!(sim.state(id).unwrap(), InstanceState::Completed);
    }

    #[test]
    fn memory_bound_corunner_inflates_t_shared_far_more_than_t_private() {
        // Solo run.
        let mut solo = sim();
        let id = solo
            .launch(memory_profile("t", 20_000_000.0), Placement::pinned(0))
            .unwrap();
        let solo_report = solo.run_to_completion(id).unwrap();

        // Same workload with 20 memory-bound co-runners.
        let mut busy = sim();
        for core in 1..21 {
            busy.launch(memory_profile("noise", 8e9), Placement::pinned(core))
                .unwrap();
        }
        let id = busy
            .launch(memory_profile("t", 20_000_000.0), Placement::pinned(0))
            .unwrap();
        let busy_report = busy.run_to_completion(id).unwrap();

        let priv_slow = busy_report.counters.t_private_per_instruction()
            / solo_report.counters.t_private_per_instruction();
        let shared_slow = busy_report.counters.t_shared_per_instruction()
            / solo_report.counters.t_shared_per_instruction();
        assert!(
            shared_slow > 1.3,
            "shared time must inflate, got {shared_slow}"
        );
        assert!(
            priv_slow < 1.2,
            "private time must stay nearly flat, got {priv_slow}"
        );
        assert!(shared_slow > priv_slow * 1.2);
    }

    #[test]
    fn two_pinned_contexts_time_share_one_core() {
        let mut sim = sim();
        let a = sim
            .launch(compute_profile("a", 10_000_000.0), Placement::pinned(0))
            .unwrap();
        let b = sim
            .launch(compute_profile("b", 10_000_000.0), Placement::pinned(0))
            .unwrap();
        let ra = sim.run_to_completion(a).unwrap();
        let rb = sim.run_to_completion(b).unwrap();
        // Each must take roughly twice as long (wall) as it would alone.
        let mut alone = Simulator::new(MachineSpec::cascade_lake());
        let s = alone
            .launch(compute_profile("s", 10_000_000.0), Placement::pinned(0))
            .unwrap();
        let rs = alone.run_to_completion(s).unwrap();
        let wall = ra.wall_ms().max(rb.wall_ms());
        assert!(
            wall > 1.7 * rs.wall_ms(),
            "time sharing must roughly double wall time: {wall} vs {}",
            rs.wall_ms()
        );
        // Both accumulated context switches.
        assert!(ra.counters.context_switches > 0.0);
        assert!(rb.counters.context_switches > 0.0);
    }

    #[test]
    fn pool_spreads_load_across_cores() {
        let mut sim = sim();
        let ids: Vec<_> = (0..4)
            .map(|i| {
                sim.launch(
                    compute_profile(&format!("w{i}"), 10_000_000.0),
                    Placement::pool_range(0, 4),
                )
                .unwrap()
            })
            .collect();
        for id in &ids {
            sim.run_to_completion(*id).unwrap();
        }
        // 4 workloads on 4 cores: no time sharing, wall time close to solo.
        let mut alone = Simulator::new(MachineSpec::cascade_lake());
        let s = alone
            .launch(compute_profile("s", 10_000_000.0), Placement::pinned(0))
            .unwrap();
        let rs = alone.run_to_completion(s).unwrap();
        for id in ids {
            let r = sim.report(id).unwrap();
            assert!(r.wall_ms() < rs.wall_ms() * 1.5);
        }
    }

    #[test]
    fn smt_sibling_slows_private_execution() {
        let mut spec = MachineSpec::cascade_lake();
        spec.smt_ways = 2;
        let mut sim = Simulator::new(spec);
        let a = sim
            .launch(compute_profile("a", 10_000_000.0), Placement::pinned(0))
            .unwrap();
        let _b = sim
            .launch(compute_profile("b", 200_000_000.0), Placement::pinned(0))
            .unwrap();
        let ra = sim.run_to_completion(a).unwrap();

        let mut solo = Simulator::new(MachineSpec::cascade_lake());
        let s = solo
            .launch(compute_profile("s", 10_000_000.0), Placement::pinned(0))
            .unwrap();
        let rs = solo.run_to_completion(s).unwrap();
        let slow =
            ra.counters.t_private_per_instruction() / rs.counters.t_private_per_instruction();
        assert!(slow > 1.5, "SMT sibling must slow private CPI, got {slow}");
    }

    #[test]
    fn startup_report_is_captured() {
        let mut sim = sim();
        let profile = ExecutionProfile::builder("py")
            .startup_phase(ExecPhase::new(2_000_000.0, 0.6, 12.0, 0.3, 0.8, 20.0))
            .phase(ExecPhase::new(8_000_000.0, 0.5, 2.0, 0.1, 0.7, 8.0))
            .build()
            .unwrap();
        let id = sim.launch(profile, Placement::pinned(0)).unwrap();
        let report = sim.run_to_completion(id).unwrap();
        let startup = report.startup.expect("startup report present");
        assert!((startup.counters.instructions - 2_000_000.0).abs() < 1.0);
        assert!(startup.wall_ms > 0.0);
        assert!(startup.counters.cycles < report.counters.cycles);
    }

    #[test]
    fn completion_event_fires_exactly_once() {
        let mut sim = sim();
        let id = sim
            .launch(compute_profile("a", 3_000_000.0), Placement::pinned(0))
            .unwrap();
        let mut completions = 0;
        for _ in 0..100 {
            for event in sim.step() {
                let Event::Completed { id: done, .. } = event;
                assert_eq!(done, id);
                completions += 1;
            }
        }
        assert_eq!(completions, 1);
    }

    #[test]
    fn report_errors() {
        let mut sim = sim();
        let bogus = InstanceId(42);
        assert_eq!(
            sim.report(bogus).unwrap_err(),
            SimError::UnknownInstance(bogus)
        );
        let id = sim
            .launch(compute_profile("a", 1e9), Placement::pinned(0))
            .unwrap();
        assert_eq!(sim.report(id).unwrap_err(), SimError::StillRunning(id));
    }

    #[test]
    fn placement_validation() {
        let mut sim = sim();
        assert_eq!(
            sim.launch(
                compute_profile("a", 1.0),
                Placement::pool(Vec::<usize>::new())
            )
            .unwrap_err(),
            SimError::EmptyPlacement
        );
        assert!(matches!(
            sim.launch(compute_profile("a", 1.0), Placement::pinned(99)),
            Err(SimError::UnknownCore { core: 99, .. })
        ));
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let mut sim = Simulator::new(MachineSpec::cascade_lake());
            for core in 0..8 {
                sim.launch(memory_profile("m", 30_000_000.0), Placement::pinned(core))
                    .unwrap();
            }
            let id = sim
                .launch(compute_profile("t", 10_000_000.0), Placement::pinned(8))
                .unwrap();
            sim.run_to_completion(id).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.completed_ms, b.completed_ms);
    }

    #[test]
    fn sampling_records_quanta() {
        let mut sim = sim();
        let id = sim
            .launch_sampled(compute_profile("a", 10_000_000.0), Placement::pinned(0))
            .unwrap();
        let report = sim.run_to_completion(id).unwrap();
        assert!(!report.samples.is_empty());
        let total: f64 = report.samples.iter().map(|s| s.instructions).sum();
        assert!((total - report.counters.instructions).abs() < 1.0);
        for s in &report.samples {
            assert!(s.ipc() >= 0.0);
        }
    }

    #[test]
    fn run_until_idle_finishes_everything() {
        let mut sim = sim();
        for core in 0..4 {
            sim.launch(compute_profile("w", 4_000_000.0), Placement::pinned(core))
                .unwrap();
        }
        let events = sim.run_until_idle().unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(sim.active_instances(), 0);
    }

    #[test]
    fn turbo_governor_speeds_up_lone_function() {
        let spec = MachineSpec::cascade_lake();
        let mut turbo =
            Simulator::with_governor(spec.clone(), FrequencyGovernor::turbo(2.8, 3.9, 8));
        let id = turbo
            .launch(compute_profile("a", 20_000_000.0), Placement::pinned(0))
            .unwrap();
        let fast = turbo.run_to_completion(id).unwrap();

        let mut fixed = Simulator::new(spec);
        let id = fixed
            .launch(compute_profile("a", 20_000_000.0), Placement::pinned(0))
            .unwrap();
        let slow = fixed.run_to_completion(id).unwrap();
        assert!(fast.wall_ms() < slow.wall_ms());
    }
}
