use std::ops::{Add, AddAssign, Sub};

/// Performance-monitoring-unit counters for one hardware context.
///
/// Mirrors the subset of Intel PMU events the paper reads through Linux
/// perf (§5.2): total cycles, retired instructions, cycles stalled on L2
/// misses (`cycle_activity.stalls_L2_miss` — the paper's `T_shared`),
/// and L2/L3 miss counts. `T_private` is derived as
/// `cycles − stall_l2_cycles`, exactly as in the paper.
///
/// Counters are plain data and support snapshot arithmetic: subtracting
/// an earlier snapshot yields the counters for the interval between them,
/// which is how the Litmus probe window is measured.
///
/// # Examples
///
/// ```
/// use litmus_sim::PmuCounters;
///
/// let mut c = PmuCounters::default();
/// c.cycles = 100.0;
/// c.stall_l2_cycles = 30.0;
/// assert_eq!(c.t_private_cycles(), 70.0);
/// assert_eq!(c.t_shared_cycles(), 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PmuCounters {
    /// Core cycles consumed.
    pub cycles: f64,
    /// Instructions retired.
    pub instructions: f64,
    /// Cycles stalled waiting on L2 misses (the `T_shared` component).
    pub stall_l2_cycles: f64,
    /// L2 cache misses (requests sent to the shared L3).
    pub l2_misses: f64,
    /// L3 cache misses (requests sent to DRAM).
    pub l3_misses: f64,
    /// Times this context was (re)scheduled after having been preempted.
    pub context_switches: f64,
}

impl PmuCounters {
    /// Cycles attributed to private resources:
    /// `cycles − stall_l2_cycles`.
    pub fn t_private_cycles(&self) -> f64 {
        (self.cycles - self.stall_l2_cycles).max(0.0)
    }

    /// Cycles attributed to shared resources (stalls on L2 misses).
    pub fn t_shared_cycles(&self) -> f64 {
        self.stall_l2_cycles
    }

    /// Instructions per cycle; zero when no cycles have elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions / self.cycles
        } else {
            0.0
        }
    }

    /// `T_private` per instruction — the paper normalises both time
    /// slices per instruction before comparing against solo runs (Fig. 3).
    pub fn t_private_per_instruction(&self) -> f64 {
        if self.instructions > 0.0 {
            self.t_private_cycles() / self.instructions
        } else {
            0.0
        }
    }

    /// `T_shared` per instruction.
    pub fn t_shared_per_instruction(&self) -> f64 {
        if self.instructions > 0.0 {
            self.t_shared_cycles() / self.instructions
        } else {
            0.0
        }
    }
}

impl Add for PmuCounters {
    type Output = PmuCounters;

    fn add(self, rhs: PmuCounters) -> PmuCounters {
        PmuCounters {
            cycles: self.cycles + rhs.cycles,
            instructions: self.instructions + rhs.instructions,
            stall_l2_cycles: self.stall_l2_cycles + rhs.stall_l2_cycles,
            l2_misses: self.l2_misses + rhs.l2_misses,
            l3_misses: self.l3_misses + rhs.l3_misses,
            context_switches: self.context_switches + rhs.context_switches,
        }
    }
}

impl AddAssign for PmuCounters {
    fn add_assign(&mut self, rhs: PmuCounters) {
        *self = *self + rhs;
    }
}

impl Sub for PmuCounters {
    type Output = PmuCounters;

    /// Interval counters between two snapshots (`later - earlier`).
    fn sub(self, rhs: PmuCounters) -> PmuCounters {
        PmuCounters {
            cycles: self.cycles - rhs.cycles,
            instructions: self.instructions - rhs.instructions,
            stall_l2_cycles: self.stall_l2_cycles - rhs.stall_l2_cycles,
            l2_misses: self.l2_misses - rhs.l2_misses,
            l3_misses: self.l3_misses - rhs.l3_misses,
            context_switches: self.context_switches - rhs.context_switches,
        }
    }
}

/// One per-quantum observation of a context — the unit behind the paper's
/// Fig. 6 IPC-over-time startup plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmuSample {
    /// Simulation time at the *end* of the sampled quantum, in ms.
    pub time_ms: u64,
    /// Instructions retired during the quantum.
    pub instructions: f64,
    /// Cycles consumed during the quantum (0 when not scheduled).
    pub cycles: f64,
    /// L3 misses issued by this context during the quantum.
    pub l3_misses: f64,
}

impl PmuSample {
    /// Instructions per cycle within this sample; zero when descheduled.
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions / self.cycles
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters() -> PmuCounters {
        PmuCounters {
            cycles: 1000.0,
            instructions: 800.0,
            stall_l2_cycles: 250.0,
            l2_misses: 40.0,
            l3_misses: 10.0,
            context_switches: 2.0,
        }
    }

    #[test]
    fn private_plus_shared_equals_cycles() {
        let c = sample_counters();
        assert_eq!(c.t_private_cycles() + c.t_shared_cycles(), c.cycles);
    }

    #[test]
    fn ipc_computation() {
        let c = sample_counters();
        assert!((c.ipc() - 0.8).abs() < 1e-12);
        assert_eq!(PmuCounters::default().ipc(), 0.0);
    }

    #[test]
    fn per_instruction_metrics() {
        let c = sample_counters();
        assert!((c.t_private_per_instruction() - 750.0 / 800.0).abs() < 1e-12);
        assert!((c.t_shared_per_instruction() - 250.0 / 800.0).abs() < 1e-12);
        assert_eq!(PmuCounters::default().t_private_per_instruction(), 0.0);
    }

    #[test]
    fn snapshot_arithmetic_round_trips() {
        let a = sample_counters();
        let b = a + a;
        let interval = b - a;
        assert_eq!(interval, a);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut total = PmuCounters::default();
        total += sample_counters();
        total += sample_counters();
        assert_eq!(total.cycles, 2000.0);
        assert_eq!(total.context_switches, 4.0);
    }

    #[test]
    fn t_private_clamps_at_zero() {
        let c = PmuCounters {
            cycles: 10.0,
            stall_l2_cycles: 20.0,
            ..Default::default()
        };
        assert_eq!(c.t_private_cycles(), 0.0);
    }

    #[test]
    fn sample_ipc_zero_when_descheduled() {
        let s = PmuSample {
            time_ms: 5,
            instructions: 0.0,
            cycles: 0.0,
            l3_misses: 0.0,
        };
        assert_eq!(s.ipc(), 0.0);
    }
}
