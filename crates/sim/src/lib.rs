//! Analytic multicore contention simulator for the Litmus reproduction.
//!
//! The Litmus paper (Pei, Wang, Shin — ASPLOS '24) measures everything on a
//! real dual-socket Cascade Lake server through Linux perf. This crate is
//! the sandbox substitute: a deterministic, quantum-stepped simulator of a
//! multicore CPU whose *observable signals* are the ones Litmus pricing
//! consumes —
//!
//! * per-context PMU counters: cycles, instructions, **stall cycles due to
//!   L2 misses** (the paper's `cycle_activity.stalls_L2_miss`, which
//!   defines `T_shared`), L2/L3 miss counts;
//! * machine-wide L3 miss traffic (the supplementary Litmus-test metric of
//!   paper Fig. 10);
//! * per-millisecond IPC samples (paper Fig. 6 startup timelines).
//!
//! # Model
//!
//! Time advances in 1 ms quanta. Workloads are [`ExecutionProfile`]s — a
//! sequence of [`ExecPhase`]s, each describing instruction count, private
//! CPI, L2 miss rate, solo L3 miss ratio, memory-level-parallelism
//! blocking factor and cache footprint. Within each quantum the engine
//! solves a small fixed point, because every context's progress rate
//! depends on shared-resource latencies which depend on every context's
//! traffic:
//!
//! ```text
//! cpi        = cpi_private·f_switch·f_smt·f_couple + stall_per_instr
//! stall      = (l2_mpki/1000)·blocking·post_l2_latency
//! post_l2    = l3_lat·(1 + k_ring·U_l3) + miss·mem_lat·g(U_bw)
//! miss       = l3_ratio + (1 − l3_ratio)·pressure(Σ footprints / C_L3)
//! g(U)       = 1 + k_bw·U²/(1 − min(U, U_cap))
//! ```
//!
//! `T_shared` accumulates `stall·instructions`; everything else is
//! `T_private` — the same decomposition the paper obtains from the PMU.
//!
//! # Examples
//!
//! ```
//! use litmus_sim::{ExecutionProfile, ExecPhase, MachineSpec, Placement, Simulator};
//!
//! let spec = MachineSpec::cascade_lake();
//! let mut sim = Simulator::new(spec);
//! let profile = ExecutionProfile::builder("demo")
//!     .phase(ExecPhase::new(10_000_000.0, 0.5, 8.0, 0.3, 0.7, 16.0))
//!     .build()
//!     .unwrap();
//! let id = sim.launch(profile, Placement::pinned(0)).unwrap();
//! let report = sim.run_to_completion(id).unwrap();
//! assert!(report.counters.instructions >= 10_000_000.0);
//! assert!(report.counters.t_shared_cycles() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod contention;
mod engine;
mod error;
mod frequency;
mod pmu;
mod profile;
mod report;
mod spec;

pub use contention::{CongestionSnapshot, ContentionInputs, ContentionModel};
pub use engine::{Event, InstanceId, InstanceState, Placement, Simulator};
pub use error::SimError;
pub use frequency::FrequencyGovernor;
pub use pmu::{PmuCounters, PmuSample};
pub use profile::{ExecPhase, ExecutionProfile, ProfileBuilder};
pub use report::{ExecutionReport, StartupReport};
pub use spec::MachineSpec;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;

/// Length of a scheduling/accounting quantum in milliseconds.
///
/// All engine bookkeeping (PMU samples, congestion snapshots, round-robin
/// scheduling) happens at this granularity.
pub const QUANTUM_MS: f64 = 1.0;
