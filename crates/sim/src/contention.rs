use crate::spec::MachineSpec;

/// Aggregate shared-resource demand for one quantum, fed into the
/// [`ContentionModel`].
///
/// All rates are per millisecond (one quantum).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ContentionInputs {
    /// Total L2 misses per ms issued by all running contexts
    /// (traffic arriving at the shared L3).
    pub l2_miss_rate: f64,
    /// Total L3 misses per ms (traffic arriving at DRAM).
    pub l3_miss_rate: f64,
    /// Sum of the live cache footprints of all running contexts, MiB.
    pub total_footprint_mb: f64,
}

/// The machine's congestion state for one quantum: utilisations and the
/// effective shared-resource latencies derived from them.
///
/// This is what a Litmus test ultimately observes (indirectly, through
/// the probe's slowdown and the machine L3 miss rate), and what the
/// paper's Fig. 7 sketches as the evolving "congestion level".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionSnapshot {
    /// L3 service-port utilisation (demand / capacity); may exceed 1 at
    /// the demand level, the latency feedback throttles it in equilibrium.
    pub l3_port_utilization: f64,
    /// DRAM bandwidth utilisation.
    pub bandwidth_utilization: f64,
    /// Fraction of would-be L3 hits converted to misses by capacity
    /// pressure this quantum.
    pub capacity_pressure: f64,
    /// Effective L3 hit latency in cycles (inflated by port contention).
    pub l3_latency: f64,
    /// Effective DRAM latency in cycles (inflated by queueing).
    pub mem_latency: f64,
    /// Machine-wide L3 misses per ms observed this quantum.
    pub l3_miss_rate: f64,
    /// Number of contexts that executed this quantum.
    pub active_contexts: usize,
}

impl CongestionSnapshot {
    /// A quiet machine: uncontended latencies, zero utilisation.
    pub fn idle(spec: &MachineSpec) -> Self {
        CongestionSnapshot {
            l3_port_utilization: 0.0,
            bandwidth_utilization: 0.0,
            capacity_pressure: 0.0,
            l3_latency: spec.l3_hit_latency,
            mem_latency: spec.mem_latency,
            l3_miss_rate: 0.0,
            active_contexts: 0,
        }
    }

    /// A scalar "congestion level" in the spirit of paper Fig. 7 —
    /// a weighted blend of the two utilisations, scaled to roughly match
    /// the 0–10 range the figure sketches.
    pub fn level(&self) -> f64 {
        (6.0 * self.l3_port_utilization + 6.0 * self.bandwidth_utilization).min(12.0)
    }
}

/// Pure functions mapping aggregate demand to effective latencies.
///
/// Separated from the engine so the model can be unit-tested and reused
/// by analytical code (e.g. table construction sanity checks).
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionModel {
    spec: MachineSpec,
}

impl ContentionModel {
    /// Creates a model over a machine specification.
    pub fn new(spec: MachineSpec) -> Self {
        ContentionModel { spec }
    }

    /// The underlying machine specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Computes the congestion state produced by `inputs` with
    /// `active_contexts` running contexts.
    pub fn evaluate(&self, inputs: ContentionInputs, active_contexts: usize) -> CongestionSnapshot {
        let spec = &self.spec;
        let u_l3 = inputs.l2_miss_rate / spec.l3_service_lines_per_ms;
        let u_bw = inputs.l3_miss_rate / spec.mem_lines_per_ms;

        let l3_latency = spec.l3_hit_latency * (1.0 + spec.k_ring * u_l3);

        let capacity_pressure = self.capacity_pressure(inputs.total_footprint_mb);

        let u_eff = u_bw.min(spec.bw_util_cap);
        let queueing = 1.0 + spec.k_bw * u_eff * u_eff / (1.0 - u_eff);
        let thrash = 1.0 + spec.k_thrash * capacity_pressure;
        let mem_latency = spec.mem_latency * queueing * thrash;

        CongestionSnapshot {
            l3_port_utilization: u_l3,
            bandwidth_utilization: u_bw,
            capacity_pressure,
            l3_latency,
            mem_latency,
            l3_miss_rate: inputs.l3_miss_rate,
            active_contexts,
        }
    }

    /// Fraction of would-be L3 hits converted into misses when the
    /// aggregate working set overflows the cache: zero while everything
    /// fits, then approaching [`MachineSpec::pressure_max`] as the
    /// overflow grows. The square-root shape keeps heavy oversubscription
    /// levels distinguishable (4 GB of live working sets hurts more than
    /// 800 MB, but not 5× more) — matching the diminishing-returns
    /// congestion growth the paper observes between its 160- and
    /// 320-function configurations.
    pub fn capacity_pressure(&self, total_footprint_mb: f64) -> f64 {
        let cap = self.spec.l3_capacity_mb;
        if total_footprint_mb <= cap {
            return 0.0;
        }
        self.spec.pressure_max * (1.0 - (cap / total_footprint_mb).sqrt())
    }

    /// Effective L3 miss ratio for a phase with solo ratio `solo_ratio`
    /// under capacity pressure `pressure`.
    pub fn effective_miss_ratio(&self, solo_ratio: f64, pressure: f64) -> f64 {
        (solo_ratio + (1.0 - solo_ratio) * pressure).clamp(0.0, 1.0)
    }

    /// Post-L2 round-trip latency in cycles for a request stream with the
    /// given effective L3 miss ratio under `snapshot`'s congestion.
    pub fn post_l2_latency(&self, snapshot: &CongestionSnapshot, miss_ratio: f64) -> f64 {
        snapshot.l3_latency + miss_ratio * snapshot.mem_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ContentionModel {
        ContentionModel::new(MachineSpec::cascade_lake())
    }

    #[test]
    fn idle_machine_has_uncontended_latencies() {
        let m = model();
        let snap = m.evaluate(ContentionInputs::default(), 0);
        assert_eq!(snap.l3_latency, m.spec().l3_hit_latency);
        assert_eq!(snap.mem_latency, m.spec().mem_latency);
        assert_eq!(snap.capacity_pressure, 0.0);
        assert_eq!(snap.level(), 0.0);
    }

    #[test]
    fn l3_latency_grows_with_port_traffic() {
        let m = model();
        let lo = m.evaluate(
            ContentionInputs {
                l2_miss_rate: 100_000.0,
                ..Default::default()
            },
            4,
        );
        let hi = m.evaluate(
            ContentionInputs {
                l2_miss_rate: 1_500_000.0,
                ..Default::default()
            },
            31,
        );
        assert!(hi.l3_latency > lo.l3_latency);
        assert!(hi.l3_latency > m.spec().l3_hit_latency * 1.3);
        // L3-only traffic must not inflate memory latency.
        assert_eq!(lo.mem_latency, m.spec().mem_latency);
    }

    #[test]
    fn memory_latency_explodes_near_saturation() {
        let m = model();
        let half = m.evaluate(
            ContentionInputs {
                l3_miss_rate: m.spec().mem_lines_per_ms * 0.5,
                ..Default::default()
            },
            8,
        );
        let near = m.evaluate(
            ContentionInputs {
                l3_miss_rate: m.spec().mem_lines_per_ms * 0.92,
                ..Default::default()
            },
            31,
        );
        assert!(near.mem_latency > half.mem_latency * 2.0);
    }

    #[test]
    fn memory_latency_is_finite_when_oversubscribed() {
        let m = model();
        let snap = m.evaluate(
            ContentionInputs {
                l3_miss_rate: m.spec().mem_lines_per_ms * 5.0,
                ..Default::default()
            },
            31,
        );
        assert!(snap.mem_latency.is_finite());
        assert!(snap.bandwidth_utilization > 1.0);
    }

    #[test]
    fn capacity_pressure_kicks_in_past_capacity() {
        let m = model();
        assert_eq!(m.capacity_pressure(10.0), 0.0);
        assert_eq!(m.capacity_pressure(m.spec().l3_capacity_mb), 0.0);
        let p1 = m.capacity_pressure(m.spec().l3_capacity_mb * 2.0);
        let p2 = m.capacity_pressure(m.spec().l3_capacity_mb * 6.0);
        assert!(p1 > 0.0);
        assert!(p2 > p1);
        assert!(p2 <= m.spec().pressure_max);
    }

    #[test]
    fn effective_miss_ratio_interpolates_to_one() {
        let m = model();
        assert_eq!(m.effective_miss_ratio(0.2, 0.0), 0.2);
        let r = m.effective_miss_ratio(0.2, 0.5);
        assert!((r - 0.6).abs() < 1e-12);
        assert!(m.effective_miss_ratio(0.9, 1.0) <= 1.0);
    }

    #[test]
    fn post_l2_latency_combines_l3_and_memory() {
        let m = model();
        let snap = CongestionSnapshot::idle(m.spec());
        let pure_hit = m.post_l2_latency(&snap, 0.0);
        let pure_miss = m.post_l2_latency(&snap, 1.0);
        assert_eq!(pure_hit, m.spec().l3_hit_latency);
        assert_eq!(pure_miss, m.spec().l3_hit_latency + m.spec().mem_latency);
    }

    #[test]
    fn congestion_level_is_bounded() {
        let m = model();
        let snap = m.evaluate(
            ContentionInputs {
                l2_miss_rate: 1e9,
                l3_miss_rate: 1e9,
                total_footprint_mb: 1e6,
            },
            31,
        );
        assert!(snap.level() <= 12.0);
    }
}
