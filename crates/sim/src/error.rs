use std::error::Error;
use std::fmt;

use crate::engine::InstanceId;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A profile was constructed with no phases.
    EmptyProfile,
    /// A phase parameter was outside its valid range.
    InvalidPhase {
        /// Which parameter was invalid.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The startup length exceeded the number of phases.
    StartupOutOfRange {
        /// Requested startup phase count.
        startup: usize,
        /// Total phases in the profile.
        phases: usize,
    },
    /// A placement referenced a core the machine does not have.
    UnknownCore {
        /// The requested core index.
        core: usize,
        /// Number of cores in the machine.
        cores: usize,
    },
    /// A placement allowed no cores at all.
    EmptyPlacement,
    /// An instance id did not correspond to a launched workload.
    UnknownInstance(InstanceId),
    /// The queried instance has not finished executing yet.
    StillRunning(InstanceId),
    /// A machine specification parameter was invalid.
    InvalidSpec {
        /// Which parameter was invalid.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The simulation exceeded the safety horizon without completing.
    HorizonExceeded {
        /// The horizon in milliseconds.
        horizon_ms: u64,
    },
    /// `skip_idle_to` was called while instances were still active.
    SkipWhileActive {
        /// Instances active at the time of the call.
        active: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyProfile => write!(f, "execution profile has no phases"),
            SimError::InvalidPhase { field, value } => {
                write!(f, "invalid phase parameter {field} = {value}")
            }
            SimError::StartupOutOfRange { startup, phases } => {
                write!(f, "startup length {startup} exceeds phase count {phases}")
            }
            SimError::UnknownCore { core, cores } => {
                write!(f, "core {core} out of range (machine has {cores} cores)")
            }
            SimError::EmptyPlacement => write!(f, "placement allows no cores"),
            SimError::UnknownInstance(id) => {
                write!(f, "unknown instance id {}", id.as_usize())
            }
            SimError::StillRunning(id) => {
                write!(f, "instance {} is still running", id.as_usize())
            }
            SimError::InvalidSpec { field, value } => {
                write!(f, "invalid machine spec parameter {field} = {value}")
            }
            SimError::HorizonExceeded { horizon_ms } => {
                write!(f, "simulation exceeded the {horizon_ms} ms safety horizon")
            }
            SimError::SkipWhileActive { active } => {
                write!(
                    f,
                    "cannot fast-forward an idle skip with {active} active instances"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SimError::UnknownCore {
            core: 40,
            cores: 32,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("32"));
        let e = SimError::InvalidPhase {
            field: "cpi_private",
            value: -1.0,
        };
        assert!(e.to_string().contains("cpi_private"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>(_: E) {}
        assert_err(SimError::EmptyProfile);
    }
}
