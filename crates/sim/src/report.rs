use crate::pmu::{PmuCounters, PmuSample};

/// Measurements taken over a workload's startup prefix — the Litmus
/// probe window (paper §6: the probe reads the startup's own slowdown
/// *and* the machine's L3 miss traffic during the window).
#[derive(Debug, Clone, PartialEq)]
pub struct StartupReport {
    /// PMU counters accumulated over the startup prefix only.
    pub counters: PmuCounters,
    /// Wall-clock duration of the startup prefix in ms (includes time
    /// spent descheduled under temporal sharing).
    pub wall_ms: f64,
    /// Machine-wide L3 misses per ms during the startup window —
    /// the supplementary congestion metric of paper Fig. 10.
    pub machine_l3_miss_rate: f64,
}

/// Full execution record for one completed workload instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Workload name (from the profile).
    pub name: String,
    /// Simulation time when the instance was launched, ms.
    pub launched_ms: u64,
    /// Simulation time when the instance completed, ms (fractional:
    /// completion can fall inside a quantum).
    pub completed_ms: f64,
    /// PMU counters over the whole execution.
    pub counters: PmuCounters,
    /// Startup-window measurements, when the profile has a startup
    /// prefix.
    pub startup: Option<StartupReport>,
    /// Per-quantum samples (present when sampling was enabled at launch).
    pub samples: Vec<PmuSample>,
}

impl ExecutionReport {
    /// Wall-clock execution time in ms.
    pub fn wall_ms(&self) -> f64 {
        self.completed_ms - self.launched_ms as f64
    }

    /// Busy time in ms implied by consumed cycles at `ghz` — excludes
    /// time spent descheduled, which is how the paper meters billable
    /// occupancy rather than queueing delay.
    pub fn busy_ms(&self, ghz: f64) -> f64 {
        self.counters.cycles / (ghz * 1.0e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_and_busy_time() {
        let report = ExecutionReport {
            name: "w".into(),
            launched_ms: 10,
            completed_ms: 35.5,
            counters: PmuCounters {
                cycles: 2.8e6 * 20.0,
                instructions: 1.0e6,
                ..Default::default()
            },
            startup: None,
            samples: Vec::new(),
        };
        assert!((report.wall_ms() - 25.5).abs() < 1e-9);
        assert!((report.busy_ms(2.8) - 20.0).abs() < 1e-9);
    }
}
