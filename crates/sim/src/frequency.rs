/// Core-frequency policy for the simulated machine.
///
/// The paper pins the CPUs at 2.8 GHz (§3) because commercial serverless
/// vCPUs expose one fixed frequency, and separately studies what happens
/// when Intel Turbo is left on (§8 "CPU Frequency"): frequency rises when
/// few cores are active and falls back to base under load, shifting both
/// Litmus and ideal discounts only slightly.
///
/// # Examples
///
/// ```
/// use litmus_sim::FrequencyGovernor;
///
/// let fixed = FrequencyGovernor::fixed(2.8);
/// assert_eq!(fixed.frequency_ghz(30, 32), 2.8);
///
/// let turbo = FrequencyGovernor::turbo(2.8, 3.9, 8);
/// assert!(turbo.frequency_ghz(1, 32) > turbo.frequency_ghz(16, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrequencyGovernor {
    /// Software-pinned frequency (the paper's default methodology).
    Fixed {
        /// The pinned frequency in GHz.
        ghz: f64,
    },
    /// Turbo-style governor: runs at `max_ghz` while at most
    /// `boost_threshold` hardware threads are active, then decays
    /// linearly towards `base_ghz` as the machine fills up.
    Turbo {
        /// Sustained all-core frequency in GHz.
        base_ghz: f64,
        /// Peak single-core frequency in GHz.
        max_ghz: f64,
        /// Active-thread count up to which the peak is sustained.
        boost_threshold: usize,
    },
}

impl FrequencyGovernor {
    /// Creates a fixed-frequency governor.
    pub fn fixed(ghz: f64) -> Self {
        FrequencyGovernor::Fixed { ghz }
    }

    /// Creates a turbo governor with the given base/max frequencies and
    /// boost threshold.
    pub fn turbo(base_ghz: f64, max_ghz: f64, boost_threshold: usize) -> Self {
        FrequencyGovernor::Turbo {
            base_ghz,
            max_ghz,
            boost_threshold,
        }
    }

    /// Effective frequency in GHz given `active` busy hardware threads
    /// out of `total`.
    pub fn frequency_ghz(&self, active: usize, total: usize) -> f64 {
        match *self {
            FrequencyGovernor::Fixed { ghz } => ghz,
            FrequencyGovernor::Turbo {
                base_ghz,
                max_ghz,
                boost_threshold,
            } => {
                if active <= boost_threshold {
                    max_ghz
                } else {
                    let span = (total.saturating_sub(boost_threshold)) as f64;
                    if span == 0.0 {
                        return base_ghz;
                    }
                    let over = (active - boost_threshold) as f64;
                    let t = (over / span).clamp(0.0, 1.0);
                    max_ghz + (base_ghz - max_ghz) * t
                }
            }
        }
    }
}

impl Default for FrequencyGovernor {
    /// The paper's methodology default: 2.8 GHz pinned.
    fn default() -> Self {
        FrequencyGovernor::fixed(2.8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ignores_load() {
        let g = FrequencyGovernor::fixed(2.8);
        assert_eq!(g.frequency_ghz(0, 32), 2.8);
        assert_eq!(g.frequency_ghz(32, 32), 2.8);
    }

    #[test]
    fn turbo_boosts_when_lightly_loaded() {
        let g = FrequencyGovernor::turbo(2.8, 3.9, 8);
        assert_eq!(g.frequency_ghz(1, 32), 3.9);
        assert_eq!(g.frequency_ghz(8, 32), 3.9);
    }

    #[test]
    fn turbo_decays_to_base_at_full_load() {
        let g = FrequencyGovernor::turbo(2.8, 3.9, 8);
        assert!((g.frequency_ghz(32, 32) - 2.8).abs() < 1e-12);
        let mid = g.frequency_ghz(20, 32);
        assert!(mid < 3.9 && mid > 2.8);
    }

    #[test]
    fn turbo_is_monotone_non_increasing_in_load() {
        let g = FrequencyGovernor::turbo(2.8, 3.9, 8);
        let mut prev = f64::INFINITY;
        for active in 0..=32 {
            let f = g.frequency_ghz(active, 32);
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    #[test]
    fn default_is_papers_pinned_frequency() {
        assert_eq!(FrequencyGovernor::default(), FrequencyGovernor::fixed(2.8));
    }

    #[test]
    fn degenerate_total_equals_threshold() {
        let g = FrequencyGovernor::turbo(2.0, 3.0, 8);
        // total == threshold: span is zero, fall back to base when above.
        assert_eq!(g.frequency_ghz(9, 8), 2.0);
    }
}
