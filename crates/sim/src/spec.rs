use crate::error::SimError;
use crate::Result;

/// Description of the simulated machine: topology, cache/memory latencies,
/// shared-resource capacities and the contention-model constants.
///
/// Two presets mirror the paper's testbeds:
/// [`MachineSpec::cascade_lake`] (Xeon Gold 5218 class, §3) and
/// [`MachineSpec::ice_lake`] (Xeon Silver 4314 class, §8 "CPU
/// Architecture"). All fields are public on purpose — the spec is passive
/// configuration data and the sensitivity studies mutate individual knobs.
///
/// # Examples
///
/// ```
/// let mut spec = litmus_sim::MachineSpec::cascade_lake();
/// assert_eq!(spec.cores, 32);
/// spec.smt_ways = 2; // enable SMT for the §8 study
/// assert!(spec.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name of the platform.
    pub name: String,
    /// Number of physical cores on the machine.
    pub cores: usize,
    /// Number of shared-resource domains (sockets). Cores are split
    /// evenly: core `c` belongs to domain `c / (cores / sockets)`.
    /// Each domain has its own L3 (capacity, service ports) and memory
    /// channel set; contention is solved per domain. The capacity and
    /// bandwidth fields below are **per domain**.
    pub sockets: usize,
    /// Hardware threads per physical core (1 = SMT disabled, the
    /// serverless default per §8; 2 = SMT enabled).
    pub smt_ways: usize,
    /// Nominal core frequency in GHz (the paper pins 2.8 GHz).
    pub frequency_ghz: f64,
    /// Shared L3 capacity in MiB.
    pub l3_capacity_mb: f64,
    /// Uncontended L3 hit latency in cycles.
    pub l3_hit_latency: f64,
    /// Uncontended DRAM access latency in cycles (beyond the L3 hit).
    pub mem_latency: f64,
    /// L3 service capacity in cache lines per millisecond — the shared
    /// ring/port bandwidth that CT-Gen style traffic saturates.
    pub l3_service_lines_per_ms: f64,
    /// DRAM bandwidth in cache lines per millisecond — what MB-Gen
    /// saturates.
    pub mem_lines_per_ms: f64,
    /// L3 latency inflation slope per unit of L3 port utilisation.
    pub k_ring: f64,
    /// Memory latency queueing coefficient.
    pub k_bw: f64,
    /// Coupling of L3 capacity pressure into DRAM latency — cache
    /// thrashing destroys row-buffer locality, so a machine whose L3 is
    /// overcommitted pays more per DRAM access even at moderate
    /// bandwidth utilisation.
    pub k_thrash: f64,
    /// Utilisation at which the memory queueing term is clamped (keeps
    /// the fixed point finite under oversubscription).
    pub bw_util_cap: f64,
    /// Upper bound for the capacity-pressure conversion of L3 hits into
    /// L3 misses when aggregate working sets overflow the cache.
    pub pressure_max: f64,
    /// Coupling of shared congestion into private CPI — the small
    /// (≈4–5%) `T_private` inflation the paper observes in Fig. 3.
    pub private_coupling: f64,
    /// Maximum context-switch inflation of private CPI under temporal
    /// core sharing (Fig. 14 plateaus around +2.5–2.8%).
    pub switch_overhead_max: f64,
    /// Maximum extra L2 misses per kilo-instruction caused by cache
    /// refills after context switches — a displaced function finds its
    /// working set evicted by the functions that ran in between (§7.2
    /// "Method 1" motivation). Saturates with the same Fig. 14 shape as
    /// the private overhead.
    pub switch_extra_mpki: f64,
    /// Co-resident function count at which the switch overhead saturates
    /// (Fig. 14 stabilises around 20).
    pub switch_saturation: f64,
    /// Private-CPI multiplier when the SMT sibling thread is busy.
    pub smt_private_factor: f64,
}

impl MachineSpec {
    /// Preset matching the paper's primary testbed: dual-socket Intel
    /// Xeon Gold 5218 (Cascade Lake), 32 cores at a pinned 2.8 GHz,
    /// 2 × 22 MiB L3. The default preset merges both sockets into one
    /// 32-core sharing domain — the paper's experiments always co-locate
    /// interfering tasks on shared resources, and a merged domain keeps
    /// every core pair interfering. Use [`MachineSpec::cascade_lake_dual`]
    /// for the physically-split topology.
    pub fn cascade_lake() -> Self {
        MachineSpec {
            name: "cascade-lake-xeon-gold-5218".to_owned(),
            cores: 32,
            sockets: 1,
            smt_ways: 1,
            frequency_ghz: 2.8,
            l3_capacity_mb: 44.0,
            l3_hit_latency: 42.0,
            mem_latency: 210.0,
            l3_service_lines_per_ms: 1_500_000.0,
            mem_lines_per_ms: 1_600_000.0,
            k_ring: 4.5,
            k_bw: 0.9,
            k_thrash: 0.45,
            bw_util_cap: 0.93,
            pressure_max: 0.88,
            private_coupling: 0.055,
            switch_overhead_max: 0.028,
            switch_extra_mpki: 0.6,
            switch_saturation: 20.0,
            smt_private_factor: 1.85,
        }
    }

    /// The same Cascade Lake machine with its two sockets modelled as
    /// separate sharing domains: 2 × 16 cores, each with its own 22 MiB
    /// L3 and memory channels. Functions on different sockets do not
    /// contend (socket-local placement isolation).
    pub fn cascade_lake_dual() -> Self {
        let mut spec = MachineSpec::cascade_lake();
        spec.name = "cascade-lake-xeon-gold-5218-dual-socket".to_owned();
        spec.sockets = 2;
        spec.l3_capacity_mb /= 2.0;
        spec.l3_service_lines_per_ms /= 2.0;
        spec.mem_lines_per_ms /= 2.0;
        spec
    }

    /// Preset matching the §8 architecture study: Intel Xeon Silver 4314
    /// (Ice Lake), 16 cores, 24 MiB L3, slightly higher memory latency and
    /// lower aggregate bandwidth (128 GB machine).
    pub fn ice_lake() -> Self {
        MachineSpec {
            name: "ice-lake-xeon-silver-4314".to_owned(),
            cores: 16,
            sockets: 1,
            smt_ways: 1,
            frequency_ghz: 2.4,
            l3_capacity_mb: 24.0,
            l3_hit_latency: 46.0,
            mem_latency: 230.0,
            l3_service_lines_per_ms: 900_000.0,
            mem_lines_per_ms: 1_000_000.0,
            k_ring: 4.5,
            k_bw: 0.9,
            k_thrash: 0.45,
            bw_util_cap: 0.93,
            pressure_max: 0.88,
            private_coupling: 0.055,
            switch_overhead_max: 0.028,
            switch_extra_mpki: 0.6,
            switch_saturation: 20.0,
            smt_private_factor: 1.85,
        }
    }

    /// Total hardware threads (`cores × smt_ways`).
    pub fn hardware_threads(&self) -> usize {
        self.cores * self.smt_ways
    }

    /// Cores per sharing domain.
    pub fn cores_per_domain(&self) -> usize {
        self.cores / self.sockets.max(1)
    }

    /// The sharing domain core `core` belongs to.
    pub fn domain_of(&self, core: usize) -> usize {
        core / self.cores_per_domain()
    }

    /// Core cycles in one simulation quantum at frequency `ghz`.
    pub fn cycles_per_quantum(&self, ghz: f64) -> f64 {
        ghz * 1.0e6 * crate::QUANTUM_MS
    }

    /// Checks that every parameter is in its valid range.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSpec`] naming the first offending field.
    pub fn validate(&self) -> Result<()> {
        fn positive(field: &'static str, value: f64) -> Result<()> {
            if value > 0.0 && value.is_finite() {
                Ok(())
            } else {
                Err(SimError::InvalidSpec { field, value })
            }
        }
        if self.cores == 0 {
            return Err(SimError::InvalidSpec {
                field: "cores",
                value: 0.0,
            });
        }
        if self.sockets == 0 || !self.cores.is_multiple_of(self.sockets) {
            return Err(SimError::InvalidSpec {
                field: "sockets",
                value: self.sockets as f64,
            });
        }
        if self.smt_ways == 0 || self.smt_ways > 2 {
            return Err(SimError::InvalidSpec {
                field: "smt_ways",
                value: self.smt_ways as f64,
            });
        }
        positive("frequency_ghz", self.frequency_ghz)?;
        positive("l3_capacity_mb", self.l3_capacity_mb)?;
        positive("l3_hit_latency", self.l3_hit_latency)?;
        positive("mem_latency", self.mem_latency)?;
        positive("l3_service_lines_per_ms", self.l3_service_lines_per_ms)?;
        positive("mem_lines_per_ms", self.mem_lines_per_ms)?;
        if !(0.0..=10.0).contains(&self.k_ring) {
            return Err(SimError::InvalidSpec {
                field: "k_ring",
                value: self.k_ring,
            });
        }
        if !(0.0..=10.0).contains(&self.k_bw) {
            return Err(SimError::InvalidSpec {
                field: "k_bw",
                value: self.k_bw,
            });
        }
        if !(0.0..=10.0).contains(&self.k_thrash) {
            return Err(SimError::InvalidSpec {
                field: "k_thrash",
                value: self.k_thrash,
            });
        }
        if !(0.0..1.0).contains(&self.bw_util_cap) {
            return Err(SimError::InvalidSpec {
                field: "bw_util_cap",
                value: self.bw_util_cap,
            });
        }
        if !(0.0..1.0).contains(&self.pressure_max) {
            return Err(SimError::InvalidSpec {
                field: "pressure_max",
                value: self.pressure_max,
            });
        }
        if !(0.0..1.0).contains(&self.private_coupling) {
            return Err(SimError::InvalidSpec {
                field: "private_coupling",
                value: self.private_coupling,
            });
        }
        if !(0.0..1.0).contains(&self.switch_overhead_max) {
            return Err(SimError::InvalidSpec {
                field: "switch_overhead_max",
                value: self.switch_overhead_max,
            });
        }
        if !(0.0..=10.0).contains(&self.switch_extra_mpki) {
            return Err(SimError::InvalidSpec {
                field: "switch_extra_mpki",
                value: self.switch_extra_mpki,
            });
        }
        if self.switch_saturation < 2.0 {
            return Err(SimError::InvalidSpec {
                field: "switch_saturation",
                value: self.switch_saturation,
            });
        }
        if self.smt_private_factor < 1.0 {
            return Err(SimError::InvalidSpec {
                field: "smt_private_factor",
                value: self.smt_private_factor,
            });
        }
        Ok(())
    }

    /// Saturating logarithmic growth shared by both sharing-overhead
    /// models: 0 when alone, 1 at/past [`MachineSpec::switch_saturation`]
    /// co-residents (the Fig. 14 knee).
    pub fn switch_growth(&self, co_resident: f64) -> f64 {
        if co_resident <= 1.0 {
            return 0.0;
        }
        let n = co_resident.min(self.switch_saturation.max(2.0) * 4.0);
        (n.ln() / self.switch_saturation.ln()).min(1.0)
    }

    /// Private-CPI inflation factor from temporal core sharing when `n`
    /// functions co-reside on one core — the Fig. 14 curve: logarithmic
    /// growth that saturates at [`MachineSpec::switch_saturation`].
    pub fn switch_factor(&self, co_resident: f64) -> f64 {
        1.0 + self.switch_overhead_max * self.switch_growth(co_resident)
    }

    /// Extra L2 misses per kilo-instruction injected by post-switch cache
    /// refills when `n` functions co-reside on one core.
    pub fn switch_mpki(&self, co_resident: f64) -> f64 {
        self.switch_extra_mpki * self.switch_growth(co_resident)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(MachineSpec::cascade_lake().validate().is_ok());
        assert!(MachineSpec::ice_lake().validate().is_ok());
    }

    #[test]
    fn hardware_threads_counts_smt() {
        let mut spec = MachineSpec::cascade_lake();
        assert_eq!(spec.hardware_threads(), 32);
        spec.smt_ways = 2;
        assert_eq!(spec.hardware_threads(), 64);
    }

    #[test]
    fn cycles_per_quantum_scales_with_frequency() {
        let spec = MachineSpec::cascade_lake();
        let at_base = spec.cycles_per_quantum(2.8);
        let at_turbo = spec.cycles_per_quantum(3.9);
        assert!((at_base - 2.8e6).abs() < 1e-6);
        assert!(at_turbo > at_base);
    }

    #[test]
    fn invalid_fields_are_rejected() {
        let mut spec = MachineSpec::cascade_lake();
        spec.cores = 0;
        assert!(matches!(
            spec.validate(),
            Err(SimError::InvalidSpec { field: "cores", .. })
        ));

        let mut spec = MachineSpec::cascade_lake();
        spec.frequency_ghz = -1.0;
        assert!(spec.validate().is_err());

        let mut spec = MachineSpec::cascade_lake();
        spec.bw_util_cap = 1.5;
        assert!(spec.validate().is_err());

        let mut spec = MachineSpec::cascade_lake();
        spec.smt_ways = 3;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn switch_factor_matches_fig14_shape() {
        let spec = MachineSpec::cascade_lake();
        // No inflation when alone.
        assert_eq!(spec.switch_factor(1.0), 1.0);
        // Monotone growth.
        let f5 = spec.switch_factor(5.0);
        let f10 = spec.switch_factor(10.0);
        let f20 = spec.switch_factor(20.0);
        let f25 = spec.switch_factor(25.0);
        assert!(f5 > 1.0);
        assert!(f10 > f5);
        assert!(f20 >= f10);
        // Saturation past the knee: 20 → 25 changes (almost) nothing.
        assert!((f25 - f20).abs() < 1e-9);
        // The 10-co-resident value is in the paper's ~1.02–1.03 band.
        assert!(f10 > 1.015 && f10 < 1.035, "f10 = {f10}");
    }

    #[test]
    fn switch_mpki_shares_the_saturating_shape() {
        let spec = MachineSpec::cascade_lake();
        assert_eq!(spec.switch_mpki(1.0), 0.0);
        let m10 = spec.switch_mpki(10.0);
        let m20 = spec.switch_mpki(20.0);
        let m25 = spec.switch_mpki(25.0);
        assert!(m10 > 0.0 && m10 < spec.switch_extra_mpki);
        assert!((m20 - spec.switch_extra_mpki).abs() < 1e-9);
        assert!((m25 - m20).abs() < 1e-9, "saturated past the knee");
    }

    #[test]
    fn switch_factor_log_growth_decelerates() {
        let spec = MachineSpec::cascade_lake();
        let early = spec.switch_factor(5.0) - spec.switch_factor(2.0);
        let late = spec.switch_factor(18.0) - spec.switch_factor(15.0);
        assert!(early > late);
    }
}
