use std::sync::Arc;

use crate::error::SimError;
use crate::Result;

/// One homogeneous execution phase of a workload.
///
/// A phase is the unit of the simulator's performance model: while inside
/// a phase, a context retires instructions at a rate determined by the
/// phase parameters and the machine's current congestion state.
///
/// The parameters map one-to-one onto the signals the paper measures:
/// `l2_mpki` drives demand on shared resources (what CT-Gen maximises),
/// `l3_miss_ratio` decides how much of that demand reaches DRAM (what
/// MB-Gen maximises), `blocking` models memory-level parallelism (how
/// much of the post-L2 latency actually stalls retirement and therefore
/// lands in `T_shared`), and `footprint_mb` participates in L3 capacity
/// contention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecPhase {
    /// Instructions retired in this phase.
    pub instructions: f64,
    /// Cycles per instruction on private resources (core + L1/L2).
    pub cpi_private: f64,
    /// L2 misses per kilo-instruction — traffic sent past the L2.
    pub l2_mpki: f64,
    /// Fraction of L2 misses that also miss the L3 when running alone.
    pub l3_miss_ratio: f64,
    /// Fraction of the post-L2 latency that stalls retirement
    /// (1.0 = fully serialised misses, small = deep MLP overlap).
    pub blocking: f64,
    /// Live cache footprint in MiB while this phase executes.
    pub footprint_mb: f64,
}

impl ExecPhase {
    /// Creates a phase; arguments in declaration order.
    ///
    /// Prefer this over struct literals in examples; validation happens
    /// when the phase is added to a profile.
    pub fn new(
        instructions: f64,
        cpi_private: f64,
        l2_mpki: f64,
        l3_miss_ratio: f64,
        blocking: f64,
        footprint_mb: f64,
    ) -> Self {
        ExecPhase {
            instructions,
            cpi_private,
            l2_mpki,
            l3_miss_ratio,
            blocking,
            footprint_mb,
        }
    }

    fn validate(&self) -> Result<()> {
        fn check(cond: bool, field: &'static str, value: f64) -> Result<()> {
            if cond && value.is_finite() {
                Ok(())
            } else {
                Err(SimError::InvalidPhase { field, value })
            }
        }
        check(self.instructions > 0.0, "instructions", self.instructions)?;
        check(self.cpi_private > 0.0, "cpi_private", self.cpi_private)?;
        check(self.l2_mpki >= 0.0, "l2_mpki", self.l2_mpki)?;
        check(
            (0.0..=1.0).contains(&self.l3_miss_ratio),
            "l3_miss_ratio",
            self.l3_miss_ratio,
        )?;
        check(
            (0.0..=1.0).contains(&self.blocking),
            "blocking",
            self.blocking,
        )?;
        check(self.footprint_mb >= 0.0, "footprint_mb", self.footprint_mb)?;
        Ok(())
    }
}

/// A complete workload: an ordered sequence of [`ExecPhase`]s, optionally
/// with a *startup prefix* — the first `startup_len` phases model the
/// language runtime's startup routine that Litmus tests exploit as a
/// congestion probe (paper §6, step 1).
///
/// Profiles are immutable and cheaply clonable (`Arc` inside); build them
/// with [`ExecutionProfile::builder`].
///
/// # Examples
///
/// ```
/// use litmus_sim::{ExecPhase, ExecutionProfile};
///
/// let profile = ExecutionProfile::builder("fib-py")
///     .startup_phase(ExecPhase::new(45_000_000.0, 0.55, 14.0, 0.25, 0.8, 24.0))
///     .phase(ExecPhase::new(400_000_000.0, 0.42, 1.0, 0.1, 0.7, 8.0))
///     .build()
///     .unwrap();
/// assert_eq!(profile.startup_len(), 1);
/// assert_eq!(profile.total_instructions(), 445_000_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionProfile {
    inner: Arc<ProfileInner>,
}

#[derive(Debug, PartialEq)]
struct ProfileInner {
    name: String,
    phases: Vec<ExecPhase>,
    startup_len: usize,
}

impl ExecutionProfile {
    /// Starts building a profile with the given workload name.
    pub fn builder(name: impl Into<String>) -> ProfileBuilder {
        ProfileBuilder {
            name: name.into(),
            phases: Vec::new(),
            startup_len: 0,
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// All phases, startup prefix first.
    pub fn phases(&self) -> &[ExecPhase] {
        &self.inner.phases
    }

    /// Number of phases forming the startup prefix.
    pub fn startup_len(&self) -> usize {
        self.inner.startup_len
    }

    /// Whether the profile has a startup prefix usable as a Litmus probe.
    pub fn has_startup(&self) -> bool {
        self.inner.startup_len > 0
    }

    /// Total instructions over all phases.
    pub fn total_instructions(&self) -> f64 {
        self.inner.phases.iter().map(|p| p.instructions).sum()
    }

    /// Instructions in the startup prefix (the Litmus probe window; the
    /// paper uses the first 45 M instructions of the Python startup).
    pub fn startup_instructions(&self) -> f64 {
        self.inner.phases[..self.inner.startup_len]
            .iter()
            .map(|p| p.instructions)
            .sum()
    }

    /// Returns a copy of this profile containing only the startup prefix
    /// (useful for probe-only calibration runs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyProfile`] when the profile has no startup
    /// prefix.
    pub fn startup_only(&self) -> Result<ExecutionProfile> {
        if self.inner.startup_len == 0 {
            return Err(SimError::EmptyProfile);
        }
        let phases = self.inner.phases[..self.inner.startup_len].to_vec();
        Ok(ExecutionProfile {
            inner: Arc::new(ProfileInner {
                name: format!("{}::startup", self.inner.name),
                startup_len: phases.len(),
                phases,
            }),
        })
    }

    /// Returns a copy of this profile without the startup prefix — a
    /// *warm start*: the sandbox is reused, the language runtime is
    /// already initialised, and (crucially for Litmus) no probe window
    /// exists.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyProfile`] when the profile is all
    /// startup (nothing would remain).
    pub fn body_only(&self) -> Result<ExecutionProfile> {
        if self.inner.startup_len >= self.inner.phases.len() {
            return Err(SimError::EmptyProfile);
        }
        let phases = self.inner.phases[self.inner.startup_len..].to_vec();
        Ok(ExecutionProfile {
            inner: Arc::new(ProfileInner {
                name: format!("{}::warm", self.inner.name),
                startup_len: 0,
                phases,
            }),
        })
    }

    /// Returns a copy with every phase's instruction count multiplied by
    /// `factor` — used to scale workload durations in sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPhase`] if `factor` is not a positive
    /// finite number.
    pub fn scaled(&self, factor: f64) -> Result<ExecutionProfile> {
        if factor <= 0.0 || !factor.is_finite() {
            return Err(SimError::InvalidPhase {
                field: "scale factor",
                value: factor,
            });
        }
        let phases = self
            .inner
            .phases
            .iter()
            .map(|p| ExecPhase {
                instructions: p.instructions * factor,
                ..*p
            })
            .collect();
        Ok(ExecutionProfile {
            inner: Arc::new(ProfileInner {
                name: self.inner.name.clone(),
                phases,
                startup_len: self.inner.startup_len,
            }),
        })
    }
}

/// Builder for [`ExecutionProfile`]; see [`ExecutionProfile::builder`].
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    name: String,
    phases: Vec<ExecPhase>,
    startup_len: usize,
}

impl ProfileBuilder {
    /// Appends a startup-prefix phase.
    ///
    /// # Panics
    ///
    /// Panics if called after a body [`ProfileBuilder::phase`] — the
    /// startup prefix must be contiguous at the front.
    pub fn startup_phase(mut self, phase: ExecPhase) -> Self {
        assert_eq!(
            self.phases.len(),
            self.startup_len,
            "startup phases must precede body phases"
        );
        self.phases.push(phase);
        self.startup_len += 1;
        self
    }

    /// Appends a body phase.
    pub fn phase(mut self, phase: ExecPhase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Finalises the profile.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyProfile`] when no phases were added.
    /// * [`SimError::InvalidPhase`] when any phase parameter is out of
    ///   range (see [`ExecPhase`] field docs).
    pub fn build(self) -> Result<ExecutionProfile> {
        if self.phases.is_empty() {
            return Err(SimError::EmptyProfile);
        }
        for phase in &self.phases {
            phase.validate()?;
        }
        if self.startup_len > self.phases.len() {
            return Err(SimError::StartupOutOfRange {
                startup: self.startup_len,
                phases: self.phases.len(),
            });
        }
        Ok(ExecutionProfile {
            inner: Arc::new(ProfileInner {
                name: self.name,
                phases: self.phases,
                startup_len: self.startup_len,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase() -> ExecPhase {
        ExecPhase::new(1_000_000.0, 0.5, 10.0, 0.3, 0.8, 8.0)
    }

    #[test]
    fn builder_produces_profile() {
        let p = ExecutionProfile::builder("w")
            .startup_phase(phase())
            .phase(phase())
            .build()
            .unwrap();
        assert_eq!(p.name(), "w");
        assert_eq!(p.phases().len(), 2);
        assert_eq!(p.startup_len(), 1);
        assert!(p.has_startup());
        assert_eq!(p.total_instructions(), 2_000_000.0);
        assert_eq!(p.startup_instructions(), 1_000_000.0);
    }

    #[test]
    fn empty_profile_rejected() {
        assert_eq!(
            ExecutionProfile::builder("w").build().unwrap_err(),
            SimError::EmptyProfile
        );
    }

    #[test]
    fn invalid_phase_parameters_rejected() {
        let bad = ExecPhase::new(0.0, 0.5, 10.0, 0.3, 0.8, 8.0);
        assert!(matches!(
            ExecutionProfile::builder("w").phase(bad).build(),
            Err(SimError::InvalidPhase {
                field: "instructions",
                ..
            })
        ));
        let bad = ExecPhase::new(1.0, 0.5, 10.0, 1.5, 0.8, 8.0);
        assert!(matches!(
            ExecutionProfile::builder("w").phase(bad).build(),
            Err(SimError::InvalidPhase {
                field: "l3_miss_ratio",
                ..
            })
        ));
        let bad = ExecPhase::new(1.0, 0.5, -3.0, 0.5, 0.8, 8.0);
        assert!(ExecutionProfile::builder("w").phase(bad).build().is_err());
    }

    #[test]
    #[should_panic(expected = "startup phases must precede")]
    fn startup_after_body_panics() {
        let _ = ExecutionProfile::builder("w")
            .phase(phase())
            .startup_phase(phase());
    }

    #[test]
    fn startup_only_extracts_prefix() {
        let p = ExecutionProfile::builder("w")
            .startup_phase(phase())
            .startup_phase(phase())
            .phase(phase())
            .build()
            .unwrap();
        let s = p.startup_only().unwrap();
        assert_eq!(s.phases().len(), 2);
        assert_eq!(s.startup_len(), 2);
        assert!(s.name().contains("startup"));
    }

    #[test]
    fn startup_only_requires_prefix() {
        let p = ExecutionProfile::builder("w")
            .phase(phase())
            .build()
            .unwrap();
        assert_eq!(p.startup_only().unwrap_err(), SimError::EmptyProfile);
    }

    #[test]
    fn body_only_strips_the_startup() {
        let p = ExecutionProfile::builder("w")
            .startup_phase(phase())
            .phase(phase())
            .phase(phase())
            .build()
            .unwrap();
        let warm = p.body_only().unwrap();
        assert_eq!(warm.phases().len(), 2);
        assert!(!warm.has_startup());
        assert!(warm.name().contains("warm"));
        // All-startup profiles cannot be warmed.
        let all_startup = ExecutionProfile::builder("s")
            .startup_phase(phase())
            .build()
            .unwrap();
        assert_eq!(all_startup.body_only().unwrap_err(), SimError::EmptyProfile);
    }

    #[test]
    fn scaled_multiplies_instructions() {
        let p = ExecutionProfile::builder("w")
            .phase(phase())
            .build()
            .unwrap();
        let s = p.scaled(2.5).unwrap();
        assert_eq!(s.total_instructions(), 2_500_000.0);
        assert!(p.scaled(0.0).is_err());
        assert!(p.scaled(f64::NAN).is_err());
    }

    #[test]
    fn profiles_are_cheap_to_clone() {
        let p = ExecutionProfile::builder("w")
            .phase(phase())
            .build()
            .unwrap();
        let q = p.clone();
        assert_eq!(p, q);
        // Same allocation behind both.
        assert!(Arc::ptr_eq(&p.inner, &q.inner));
    }
}
