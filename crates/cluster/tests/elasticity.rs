//! Integration and property coverage for the elastic-capacity layer:
//! slice-boundary work stealing and probe-driven autoscaling on the
//! persistent worker pool.

use litmus_cluster::{
    AutoscalerConfig, Cluster, ClusterConfig, ClusterDriver, ClusterReport, LitmusAware,
    MachineConfig, PlacementPolicy, RoundRobin, ScaleKind, StealingConfig,
};
use litmus_core::{DiscountModel, PricingTables, TableBuilder};
use litmus_platform::{ArrivalPattern, InvocationTrace, TenantId, TenantTraffic};
use litmus_sim::MachineSpec;
use litmus_workloads::suite::{self, TenantClass};
use proptest::prelude::*;

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .unwrap();
    let model = DiscountModel::fit(&tables).unwrap();
    (tables, model)
}

/// A cluster skewed enough that dispatch-time placement strands work:
/// half the machines carry heavy background load, and a tight
/// concurrency cap makes backlogs queue instead of time-sharing.
fn skewed_config(machines: usize, max_inflight: usize) -> ClusterConfig {
    let configs: Vec<_> = (0..machines)
        .map(|i| {
            let background = if i < machines / 2 { 16 } else { 0 };
            MachineConfig::new(8)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(60)
                .max_inflight(max_inflight)
                .seed(0xE1A5 + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), machines, 8)
        .machines(configs)
        .serving_scale(0.04)
        .threads(4)
        .slice_ms(20)
}

fn bursty_trace(duration_ms: u64, seed: u64) -> InvocationTrace {
    InvocationTrace::multi_tenant(
        vec![
            TenantTraffic {
                tenant: TenantId(0),
                pool: suite::tenant_pool(TenantClass::Interactive),
                pattern: ArrivalPattern::Steady { rate_per_s: 30.0 },
            },
            TenantTraffic {
                tenant: TenantId(1),
                pool: suite::tenant_pool(TenantClass::Analytics),
                pattern: ArrivalPattern::Bursty {
                    base_rate_per_s: 5.0,
                    burst_rate_per_s: 220.0,
                    period_ms: 1_000,
                    burst_ms: 250,
                },
            },
        ],
        duration_ms,
        seed,
    )
    .unwrap()
}

fn replay<P: PlacementPolicy>(
    driver: ClusterDriver<P>,
    config: ClusterConfig,
    trace: &InvocationTrace,
) -> (ClusterReport, Cluster) {
    let (tables, model) = calibration();
    let mut cluster = Cluster::build(config, tables, model).unwrap();
    let mut driver = driver;
    let report = driver.replay(&mut cluster, trace).unwrap();
    (report, cluster)
}

/// Checks the no-drop/no-double-bill invariants of one replay report
/// against its trace.
fn assert_conserved(report: &ClusterReport, trace: &InvocationTrace) {
    assert_eq!(report.unfinished, 0, "drain window must suffice");
    assert_eq!(report.completed, trace.len(), "an invocation was dropped");
    assert_eq!(
        report.billing.total().len(),
        trace.len(),
        "billed invoices must match arrivals exactly (no double billing)"
    );
    assert_eq!(
        report.dispatch_counts.iter().sum::<usize>(),
        trace.len(),
        "net dispatch counts must conserve arrivals across re-dispatches"
    );
    for tenant in trace.tenants() {
        let expected = trace.events().iter().filter(|e| e.tenant == tenant).count();
        let summary = report.billing.tenant(tenant).unwrap();
        assert_eq!(summary.len(), expected, "{tenant}");
        assert!(summary.litmus_revenue() <= summary.commercial_revenue() * (1.0 + 1e-9));
    }
}

#[test]
fn stealing_reduces_queue_wait_on_a_skewed_cluster() {
    // Round-robin keeps feeding the hot half of the cluster, so the
    // tight concurrency cap strands arrivals in hot queues; stealing
    // re-dispatches them to the machines whose probes read calm.
    let trace = bursty_trace(2_500, 91);
    assert!(trace.len() > 120, "trace too small: {}", trace.len());

    let (plain, _) = replay(
        ClusterDriver::new(RoundRobin::new()),
        skewed_config(4, 3),
        &trace,
    );
    let (stolen, _) = replay(
        ClusterDriver::new(RoundRobin::new())
            .stealing(StealingConfig::default().backlog_threshold(2)),
        skewed_config(4, 3),
        &trace,
    );

    assert_conserved(&plain, &trace);
    assert_conserved(&stolen, &trace);
    assert!(stolen.redispatched > 0, "no work was ever re-dispatched");
    assert_eq!(
        stolen.redispatched,
        stolen.steal_events.iter().map(|e| e.moved).sum::<usize>()
    );
    assert!(
        stolen.mean_queue_wait_ms < plain.mean_queue_wait_ms,
        "stealing must strictly reduce mean queued latency: {} vs {}",
        stolen.mean_queue_wait_ms,
        plain.mean_queue_wait_ms
    );
    assert!(
        stolen.mean_latency_ms < plain.mean_latency_ms,
        "stealing must reduce end-to-end latency: {} vs {}",
        stolen.mean_latency_ms,
        plain.mean_latency_ms
    );
}

#[test]
fn stealing_is_deterministic_across_thread_counts_and_modes() {
    let trace = bursty_trace(1_500, 7);
    let driver = || {
        ClusterDriver::new(RoundRobin::new())
            .stealing(StealingConfig::default().backlog_threshold(2))
    };
    let (a, _) = replay(driver(), skewed_config(4, 6).threads(1), &trace);
    let (b, _) = replay(driver(), skewed_config(4, 6).threads(4), &trace);
    let (c, _) = replay(
        driver(),
        skewed_config(4, 6)
            .threads(4)
            .stepping(litmus_cluster::SteppingMode::Scoped),
        &trace,
    );
    assert_eq!(a.placements, b.placements);
    assert_eq!(a.steal_events, b.steal_events);
    assert_eq!(a.billing, b.billing);
    assert_eq!(a.mean_queue_wait_ms, b.mean_queue_wait_ms);
    assert_eq!(a.placements, c.placements);
    assert_eq!(a.steal_events, c.steal_events);
    assert_eq!(a.billing, c.billing);
}

#[test]
fn autoscaler_grows_under_load_and_retires_idle_machines() {
    // One sharp burst up front, then a trickle: the fleet must grow
    // through the burst and shrink back through the tail.
    let trace = InvocationTrace::multi_tenant(
        vec![
            TenantTraffic {
                tenant: TenantId(0),
                pool: suite::tenant_pool(TenantClass::Interactive),
                pattern: ArrivalPattern::Bursty {
                    base_rate_per_s: 3.0,
                    burst_rate_per_s: 500.0,
                    period_ms: 8_000,
                    burst_ms: 1_200,
                },
            },
            TenantTraffic {
                tenant: TenantId(1),
                pool: suite::tenant_pool(TenantClass::Batch),
                pattern: ArrivalPattern::Steady { rate_per_s: 4.0 },
            },
        ],
        8_000,
        13,
    )
    .unwrap();

    let template = MachineConfig::new(8)
        .warmup_ms(60)
        .max_inflight(12)
        .seed(0xA5CA1E);
    let machines: Vec<_> = (0..2)
        .map(|i| {
            MachineConfig::new(8)
                .warmup_ms(60)
                .max_inflight(12)
                .seed(0xBA5E + i as u64)
        })
        .collect();
    let config = ClusterConfig::homogeneous(MachineSpec::cascade_lake(), 2, 8)
        .machines(machines)
        .serving_scale(0.04)
        .threads(4)
        .slice_ms(20);
    let scaler = AutoscalerConfig::new(template)
        .high_water(2.0)
        .low_water(1.6)
        .machine_bounds(2, 12)
        .cooldown_ms(200);

    let (report, cluster) = replay(
        ClusterDriver::new(LitmusAware::new())
            .stealing(StealingConfig::default())
            .autoscale(scaler),
        config,
        &trace,
    );

    assert_conserved(&report, &trace);
    let ups = report
        .scale_events
        .iter()
        .filter(|e| e.kind == ScaleKind::Up)
        .count();
    let retires = report
        .scale_events
        .iter()
        .filter(|e| e.kind == ScaleKind::Retire)
        .count();
    assert!(ups > 0, "burst never triggered a scale-up");
    assert!(retires > 0, "tail never retired a machine");
    assert!(report.peak_machines > 2, "fleet never grew past its floor");
    assert_eq!(report.machine_lifetimes.len(), cluster.machines_ever());
    assert_eq!(report.dispatch_counts.len(), cluster.machines_ever());
    // Scaled-up machines were born mid-replay and the retired ones
    // record a coherent lifetime.
    assert!(report
        .machine_lifetimes
        .iter()
        .any(|l| l.born_ms > 0 && l.dispatched > 0));
    for lifetime in &report.machine_lifetimes {
        if let Some(retired_ms) = lifetime.retired_ms {
            assert!(retired_ms >= lifetime.born_ms);
        }
    }
    assert_eq!(cluster.retired_count(), retires);
    // Retired machines' revenue is retained: cluster-lifetime billing
    // equals the report's.
    assert_eq!(cluster.billing(), report.billing);

    // Study-metric plumbing: one predicted-slowdown sample per trace
    // event, tail quantiles ordered, and machine-time bounded by the
    // peak-fleet rectangle while covering at least the floor's.
    assert_eq!(report.predicted_slowdowns.len(), trace.len());
    assert_eq!(report.predicted_slowdowns.len(), report.placements.len());
    let p50 = report.predicted_slowdown_quantile(0.5);
    let p99 = report.predicted_slowdown_quantile(0.99);
    assert!(p50 >= 1.0, "slowdowns are ≥ 1, got p50 {p50}");
    assert!(p99 >= p50, "quantiles out of order: p50 {p50}, p99 {p99}");
    assert_eq!(
        report.predicted_slowdown_quantile(1.0),
        report
            .predicted_slowdowns
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    );
    let machine_ms = report.machine_ms();
    assert!(machine_ms >= 2 * report.sim_ms, "below the 2-machine floor");
    assert!(
        machine_ms <= report.peak_machines as u64 * report.sim_ms,
        "exceeds the peak-fleet rectangle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Re-dispatch never double-bills or drops an invocation: for any
    /// seed, backlog threshold and concurrency cap, every arrival is
    /// billed exactly once and net dispatch counts are conserved.
    #[test]
    fn redispatch_conserves_billing(
        seed in 0u64..1_000,
        threshold in 1usize..6,
        cap in 2usize..10,
    ) {
        let trace = bursty_trace(900, seed);
        let (report, _) = replay(
            ClusterDriver::new(RoundRobin::new())
                .stealing(StealingConfig::default().backlog_threshold(threshold)),
            skewed_config(3, cap),
            &trace,
        );
        prop_assert_eq!(report.unfinished, 0);
        prop_assert_eq!(report.completed, trace.len());
        prop_assert_eq!(report.billing.total().len(), trace.len());
        prop_assert_eq!(report.dispatch_counts.iter().sum::<usize>(), trace.len());
        for tenant in trace.tenants() {
            let expected = trace.events().iter().filter(|e| e.tenant == tenant).count();
            prop_assert_eq!(report.billing.tenant(tenant).unwrap().len(), expected);
        }
    }
}
