//! Integration and property coverage for the elastic-capacity layer:
//! slice-boundary work stealing and probe-driven autoscaling on the
//! persistent worker pool.

use litmus_cluster::{
    AutoscalerConfig, Cluster, ClusterConfig, ClusterDriver, ClusterReport, ForecasterSpec,
    LitmusAware, MachineConfig, PlacementPolicy, PredictiveConfig, RoundRobin, ScaleKind,
    ScaleReason, StealingConfig,
};
use litmus_core::{DiscountModel, PricingTables, TableBuilder};
use litmus_platform::{
    ArrivalPattern, InvocationTrace, TenantId, TenantTraffic, TraceEvent, TraceSource,
};
use litmus_sim::MachineSpec;
use litmus_workloads::suite::{self, TenantClass};
use proptest::prelude::*;

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .unwrap();
    let model = DiscountModel::fit(&tables).unwrap();
    (tables, model)
}

/// A cluster skewed enough that dispatch-time placement strands work:
/// half the machines carry heavy background load, and a tight
/// concurrency cap makes backlogs queue instead of time-sharing.
fn skewed_config(machines: usize, max_inflight: usize) -> ClusterConfig {
    let configs: Vec<_> = (0..machines)
        .map(|i| {
            let background = if i < machines / 2 { 16 } else { 0 };
            MachineConfig::new(8)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(60)
                .max_inflight(max_inflight)
                .seed(0xE1A5 + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), machines, 8)
        .machines(configs)
        .serving_scale(0.04)
        .threads(4)
        .slice_ms(20)
}

fn bursty_trace(duration_ms: u64, seed: u64) -> InvocationTrace {
    InvocationTrace::multi_tenant(
        vec![
            TenantTraffic {
                tenant: TenantId(0),
                pool: suite::tenant_pool(TenantClass::Interactive),
                pattern: ArrivalPattern::Steady { rate_per_s: 30.0 },
            },
            TenantTraffic {
                tenant: TenantId(1),
                pool: suite::tenant_pool(TenantClass::Analytics),
                pattern: ArrivalPattern::Bursty {
                    base_rate_per_s: 5.0,
                    burst_rate_per_s: 220.0,
                    period_ms: 1_000,
                    burst_ms: 250,
                },
            },
        ],
        duration_ms,
        seed,
    )
    .unwrap()
}

fn replay<P: PlacementPolicy>(
    driver: ClusterDriver<P>,
    config: ClusterConfig,
    trace: &InvocationTrace,
) -> (ClusterReport, Cluster) {
    let (tables, model) = calibration();
    let mut cluster = Cluster::build(config, tables, model).unwrap();
    let mut driver = driver;
    let report = driver.replay(&mut cluster, trace).unwrap();
    (report, cluster)
}

/// Checks the no-drop/no-double-bill invariants of one replay report
/// against its trace.
fn assert_conserved(report: &ClusterReport, trace: &InvocationTrace) {
    assert_eq!(report.unfinished, 0, "drain window must suffice");
    assert_eq!(report.completed, trace.len(), "an invocation was dropped");
    assert_eq!(
        report.billing.total().len(),
        trace.len(),
        "billed invoices must match arrivals exactly (no double billing)"
    );
    assert_eq!(
        report.dispatch_counts.iter().sum::<usize>(),
        trace.len(),
        "net dispatch counts must conserve arrivals across re-dispatches"
    );
    for tenant in trace.tenants() {
        let expected = trace.events().iter().filter(|e| e.tenant == tenant).count();
        let summary = report.billing.tenant(tenant).unwrap();
        assert_eq!(summary.len(), expected, "{tenant}");
        assert!(summary.litmus_revenue() <= summary.commercial_revenue() * (1.0 + 1e-9));
    }
}

#[test]
fn stealing_reduces_queue_wait_on_a_skewed_cluster() {
    // Round-robin keeps feeding the hot half of the cluster, so the
    // tight concurrency cap strands arrivals in hot queues; stealing
    // re-dispatches them to the machines whose probes read calm.
    let trace = bursty_trace(2_500, 91);
    assert!(trace.len() > 120, "trace too small: {}", trace.len());

    let (plain, _) = replay(
        ClusterDriver::new(RoundRobin::new()),
        skewed_config(4, 3),
        &trace,
    );
    let (stolen, _) = replay(
        ClusterDriver::new(RoundRobin::new())
            .stealing(StealingConfig::default().backlog_threshold(2)),
        skewed_config(4, 3),
        &trace,
    );

    assert_conserved(&plain, &trace);
    assert_conserved(&stolen, &trace);
    assert!(stolen.redispatched > 0, "no work was ever re-dispatched");
    assert_eq!(
        stolen.redispatched,
        stolen.steal_events().iter().map(|e| e.moved).sum::<usize>()
    );
    assert!(
        stolen.mean_queue_wait_ms < plain.mean_queue_wait_ms,
        "stealing must strictly reduce mean queued latency: {} vs {}",
        stolen.mean_queue_wait_ms,
        plain.mean_queue_wait_ms
    );
    assert!(
        stolen.mean_latency_ms < plain.mean_latency_ms,
        "stealing must reduce end-to-end latency: {} vs {}",
        stolen.mean_latency_ms,
        plain.mean_latency_ms
    );
}

#[test]
fn stealing_is_deterministic_across_thread_counts_and_modes() {
    let trace = bursty_trace(1_500, 7);
    let driver = || {
        ClusterDriver::new(RoundRobin::new())
            .stealing(StealingConfig::default().backlog_threshold(2))
    };
    let (a, _) = replay(driver(), skewed_config(4, 6).threads(1), &trace);
    let (b, _) = replay(driver(), skewed_config(4, 6).threads(4), &trace);
    let (c, _) = replay(
        driver(),
        skewed_config(4, 6)
            .threads(4)
            .stepping(litmus_cluster::SteppingMode::Scoped),
        &trace,
    );
    assert_eq!(a.placements, b.placements);
    assert_eq!(a.steal_events(), b.steal_events());
    assert_eq!(a.billing, b.billing);
    assert_eq!(a.mean_queue_wait_ms, b.mean_queue_wait_ms);
    assert_eq!(a.placements, c.placements);
    assert_eq!(a.steal_events(), c.steal_events());
    assert_eq!(a.billing, c.billing);
}

#[test]
fn autoscaler_grows_under_load_and_retires_idle_machines() {
    // One sharp burst up front, then a trickle: the fleet must grow
    // through the burst and shrink back through the tail.
    let trace = InvocationTrace::multi_tenant(
        vec![
            TenantTraffic {
                tenant: TenantId(0),
                pool: suite::tenant_pool(TenantClass::Interactive),
                pattern: ArrivalPattern::Bursty {
                    base_rate_per_s: 3.0,
                    burst_rate_per_s: 500.0,
                    period_ms: 8_000,
                    burst_ms: 1_200,
                },
            },
            TenantTraffic {
                tenant: TenantId(1),
                pool: suite::tenant_pool(TenantClass::Batch),
                pattern: ArrivalPattern::Steady { rate_per_s: 4.0 },
            },
        ],
        8_000,
        13,
    )
    .unwrap();

    let template = MachineConfig::new(8)
        .warmup_ms(60)
        .max_inflight(12)
        .seed(0xA5CA1E);
    let machines: Vec<_> = (0..2)
        .map(|i| {
            MachineConfig::new(8)
                .warmup_ms(60)
                .max_inflight(12)
                .seed(0xBA5E + i as u64)
        })
        .collect();
    let config = ClusterConfig::homogeneous(MachineSpec::cascade_lake(), 2, 8)
        .machines(machines)
        .serving_scale(0.04)
        .threads(4)
        .slice_ms(20);
    let scaler = AutoscalerConfig::new(template)
        .high_water(2.0)
        .low_water(1.6)
        .machine_bounds(2, 12)
        .cooldown_ms(200);

    let (report, cluster) = replay(
        ClusterDriver::new(LitmusAware::new())
            .stealing(StealingConfig::default())
            .autoscale(scaler),
        config,
        &trace,
    );

    assert_conserved(&report, &trace);
    let ups = report
        .scale_events()
        .iter()
        .filter(|e| e.kind == ScaleKind::Up)
        .count();
    let retires = report
        .scale_events()
        .iter()
        .filter(|e| e.kind == ScaleKind::Retire)
        .count();
    assert!(ups > 0, "burst never triggered a scale-up");
    assert!(retires > 0, "tail never retired a machine");
    assert!(report.peak_machines > 2, "fleet never grew past its floor");
    assert_eq!(report.machine_lifetimes().len(), cluster.machines_ever());
    assert_eq!(report.dispatch_counts.len(), cluster.machines_ever());
    // Scaled-up machines were born mid-replay and the retired ones
    // record a coherent lifetime.
    assert!(report
        .machine_lifetimes()
        .iter()
        .any(|l| l.born_ms > 0 && l.dispatched > 0));
    for lifetime in report.machine_lifetimes() {
        if let Some(retired_ms) = lifetime.retired_ms {
            assert!(retired_ms >= lifetime.born_ms);
        }
    }
    assert_eq!(cluster.retired_count(), retires);
    // Retired machines' revenue is retained: cluster-lifetime billing
    // equals the report's.
    assert_eq!(cluster.billing(), report.billing);

    // Study-metric plumbing: one predicted-slowdown sample per trace
    // event, tail quantiles ordered, and machine-time bounded by the
    // peak-fleet rectangle while covering at least the floor's.
    assert_eq!(report.predicted_slowdowns().len(), trace.len());
    assert_eq!(report.predicted_slowdowns().len(), report.placements.len());
    let p50 = report.predicted_slowdown_quantile(0.5);
    let p99 = report.predicted_slowdown_quantile(0.99);
    assert!(p50 >= 1.0, "slowdowns are ≥ 1, got p50 {p50}");
    assert!(p99 >= p50, "quantiles out of order: p50 {p50}, p99 {p99}");
    assert_eq!(
        report.predicted_slowdown_quantile(1.0),
        report
            .predicted_slowdowns()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    );
    let machine_ms = report.machine_ms();
    assert!(machine_ms >= 2 * report.sim_ms, "below the 2-machine floor");
    assert!(
        machine_ms <= report.peak_machines as u64 * report.sim_ms,
        "exceeds the peak-fleet rectangle"
    );
}

/// A predictive autoscaler sized for [`bursty_trace`]: seasonal
/// forecaster keyed to the 1 s burst period (50 slices at 20 ms), a
/// lazy reactive backstop, and a per-machine rate that makes the
/// forecast ask for real capacity during bursts.
fn predictive_scaler() -> AutoscalerConfig {
    let template = MachineConfig::new(8)
        .warmup_ms(60)
        .max_inflight(12)
        .seed(0xF0CA5);
    AutoscalerConfig::new(template)
        .high_water(4.0)
        .low_water(1.3)
        .machine_bounds(2, 10)
        .cooldown_ms(200)
        .boot_lead_ms(120)
        .predictive(
            PredictiveConfig::new(
                ForecasterSpec::SeasonalHoltWinters {
                    alpha: 0.25,
                    beta: 0.05,
                    gamma: 0.35,
                    period: 50,
                },
                60.0,
            )
            .horizon_slices(5)
            .warmup_slices(25),
        )
}

fn small_cluster(machines: usize) -> ClusterConfig {
    let configs: Vec<_> = (0..machines)
        .map(|i| {
            MachineConfig::new(8)
                .warmup_ms(60)
                .max_inflight(12)
                .seed(0xBEA7 + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), machines, 8)
        .machines(configs)
        .serving_scale(0.04)
        .threads(4)
        .slice_ms(20)
}

#[test]
fn predictive_scaler_records_forecasts_and_boots_on_them() {
    let trace = bursty_trace(4_000, 23);
    let (report, _) = replay(
        ClusterDriver::new(LitmusAware::new()).autoscale(predictive_scaler()),
        small_cluster(2),
        &trace,
    );
    assert_conserved(&report, &trace);
    // One forecast sample per slice boundary the autoscaler saw.
    assert!(
        !report.forecast_samples().is_empty(),
        "predictive replays must record forecast samples"
    );
    for pair in report.forecast_samples().windows(2) {
        assert!(pair[0].at_ms < pair[1].at_ms, "samples must be in order");
        assert_eq!(pair[0].forecast.horizon, 5);
        assert!(pair[0].forecast.lo <= pair[0].forecast.hi);
    }
    // The bursts must trigger at least one forecast-led boot, and
    // every event carries a first-class reason.
    let ups: Vec<_> = report
        .scale_events()
        .iter()
        .filter(|e| e.kind == ScaleKind::Up)
        .collect();
    assert!(!ups.is_empty(), "bursts never grew the fleet");
    assert!(
        ups.iter().any(|e| e.reason == ScaleReason::Forecast),
        "no scale-up was forecast-led: {:?}",
        ups.iter().map(|e| e.reason).collect::<Vec<_>>()
    );
    for event in report.scale_events() {
        match event.kind {
            ScaleKind::Up => assert!(matches!(
                event.reason,
                ScaleReason::Forecast | ScaleReason::HighWater
            )),
            ScaleKind::DrainStart => assert_eq!(event.reason, ScaleReason::LowWater),
            ScaleKind::Retire => assert_eq!(event.reason, ScaleReason::Drained),
        }
    }
}

#[test]
fn predictive_streaming_replay_is_bit_identical_to_materialized() {
    // A hand-rolled source with no size hint, so the streamed path is
    // genuinely different plumbing from the materialized one.
    struct OwnedSource(std::collections::VecDeque<TraceEvent>);
    impl TraceSource for OwnedSource {
        fn next_event(&mut self) -> Option<TraceEvent> {
            self.0.pop_front()
        }
    }

    let trace = bursty_trace(3_000, 77);
    let (tables, model) = calibration();
    let driver = || {
        ClusterDriver::new(LitmusAware::new())
            .stealing(StealingConfig::default().backlog_threshold(3))
            .autoscale(predictive_scaler())
    };
    let mut materialized_cluster =
        Cluster::build(small_cluster(2), tables.clone(), model.clone()).unwrap();
    let materialized = driver().replay(&mut materialized_cluster, &trace).unwrap();
    let mut streamed_cluster = Cluster::build(small_cluster(2), tables, model).unwrap();
    let streamed = driver()
        .replay_source(
            &mut streamed_cluster,
            OwnedSource(trace.events().iter().cloned().collect()),
        )
        .unwrap();
    // Full-report equality covers placements, billing, scale events,
    // forecast samples and the study metrics in one shot.
    assert_eq!(materialized, streamed);
    assert!(!materialized.forecast_samples().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Predictive-mode replays conserve billing exactly like reactive
    /// ones: whatever the forecaster does, every arrival is billed
    /// once and net dispatch counts add up.
    #[test]
    fn predictive_replays_conserve_billing(
        seed in 0u64..1_000,
        horizon in 1usize..12,
        rate in 20.0f64..200.0,
    ) {
        let trace = bursty_trace(1_200, seed);
        let scaler = {
            let mut scaler = predictive_scaler();
            let litmus_cluster::ScalingPolicy::Predictive(mut predictive) = scaler.policy
            else { unreachable!("predictive_scaler is predictive") };
            predictive.horizon_slices = horizon;
            predictive.machine_rate_per_s = rate;
            scaler.policy = litmus_cluster::ScalingPolicy::Predictive(predictive);
            scaler
        };
        let (report, _) = replay(
            ClusterDriver::new(LitmusAware::new()).autoscale(scaler),
            small_cluster(2),
            &trace,
        );
        prop_assert_eq!(report.unfinished, 0);
        prop_assert_eq!(report.completed, trace.len());
        prop_assert_eq!(report.billing.total().len(), trace.len());
        prop_assert_eq!(report.dispatch_counts.iter().sum::<usize>(), trace.len());
        for tenant in trace.tenants() {
            let expected = trace.events().iter().filter(|e| e.tenant == tenant).count();
            prop_assert_eq!(report.billing.tenant(tenant).unwrap().len(), expected);
        }
    }

    /// Re-dispatch never double-bills or drops an invocation: for any
    /// seed, backlog threshold and concurrency cap, every arrival is
    /// billed exactly once and net dispatch counts are conserved.
    #[test]
    fn redispatch_conserves_billing(
        seed in 0u64..1_000,
        threshold in 1usize..6,
        cap in 2usize..10,
    ) {
        let trace = bursty_trace(900, seed);
        let (report, _) = replay(
            ClusterDriver::new(RoundRobin::new())
                .stealing(StealingConfig::default().backlog_threshold(threshold)),
            skewed_config(3, cap),
            &trace,
        );
        prop_assert_eq!(report.unfinished, 0);
        prop_assert_eq!(report.completed, trace.len());
        prop_assert_eq!(report.billing.total().len(), trace.len());
        prop_assert_eq!(report.dispatch_counts.iter().sum::<usize>(), trace.len());
        for tenant in trace.tenants() {
            let expected = trace.events().iter().filter(|e| e.tenant == tenant).count();
            prop_assert_eq!(report.billing.tenant(tenant).unwrap().len(), expected);
        }
    }
}
