//! The online-observability contract of the replay driver:
//!
//! * with a `timeline_retention` window the telemetry streams through
//!   its sink as the replay runs, peak in-memory timeline stays
//!   O(window), and the streamed export is **byte-identical** to the
//!   materialized export — across stepping modes, thread counts, and
//!   streaming vs materialized trace sources;
//! * with SLOs declared on the driver, the online engine's alert
//!   stream (fed at every slice boundary in both engines, bulk-skip
//!   path included) equals a post-hoc evaluation of the finished
//!   timeline event-for-event, and `slo.alert.*` events land on the
//!   timeline byte-identically across engines;
//! * the flight recorder keeps the timeline's point-event tail even
//!   when retention has dropped those events from the timeline itself.

use litmus_cluster::{
    AutoscalerConfig, Cluster, ClusterConfig, ClusterDriver, ClusterReport, ForecasterSpec,
    MachineConfig, PlacementPolicy, PredictiveConfig, RoundRobin, StealingConfig, SteppingMode,
    TelemetryConfig,
};
use litmus_core::{DiscountModel, PricingTables, TableBuilder};
use litmus_observe::{BurnRateRule, SloEngine, SloSpec};
use litmus_platform::{ArrivalPattern, InvocationTrace, TenantId, TenantTraffic, TraceEvent};
use litmus_sim::MachineSpec;
use litmus_telemetry::{assert_jsonl_eq, EventKind, TimelineEvent};
use litmus_workloads::suite::{self, TenantClass};

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .unwrap();
    let model = DiscountModel::fit(&tables).unwrap();
    (tables, model)
}

fn skewed_config(machines: usize, threads: usize) -> ClusterConfig {
    let configs: Vec<_> = (0..machines)
        .map(|i| {
            let background = if i < machines / 2 { 16 } else { 0 };
            MachineConfig::new(8)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(60)
                .max_inflight(3)
                .seed(0xE1A5 + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), machines, 8)
        .machines(configs)
        .serving_scale(0.04)
        .threads(threads)
        .slice_ms(20)
}

/// Idle machines only, so quiet stretches are genuinely bulk-skippable
/// by the event engine.
fn quiet_config(machines: usize, threads: usize) -> ClusterConfig {
    let configs: Vec<_> = (0..machines)
        .map(|i| {
            MachineConfig::new(8)
                .warmup_ms(60)
                .max_inflight(3)
                .seed(0xD0E5 + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), machines, 8)
        .machines(configs)
        .serving_scale(0.04)
        .threads(threads)
        .slice_ms(20)
}

fn bursty_trace(duration_ms: u64, seed: u64) -> InvocationTrace {
    InvocationTrace::multi_tenant(
        vec![
            TenantTraffic {
                tenant: TenantId(0),
                pool: suite::tenant_pool(TenantClass::Interactive),
                pattern: ArrivalPattern::Steady { rate_per_s: 30.0 },
            },
            TenantTraffic {
                tenant: TenantId(1),
                pool: suite::tenant_pool(TenantClass::Analytics),
                pattern: ArrivalPattern::Bursty {
                    base_rate_per_s: 5.0,
                    burst_rate_per_s: 200.0,
                    period_ms: 1_000,
                    burst_ms: 250,
                },
            },
        ],
        duration_ms,
        seed,
    )
    .unwrap()
}

/// A burst, an all-idle gap of `gap_ms`, then one trailing arrival —
/// the multi-day-replay shape the event engine collapses.
fn gapped_trace(gap_ms: u64) -> InvocationTrace {
    let pool = suite::tenant_pool(TenantClass::Interactive);
    let mut events: Vec<TraceEvent> = (0..24)
        .map(|i| TraceEvent {
            at_ms: 5 + i * 7,
            function: pool[i as usize % pool.len()].clone(),
            tenant: TenantId((i % 2) as u32),
        })
        .collect();
    events.push(TraceEvent {
        at_ms: 50 + gap_ms,
        function: pool[0].clone(),
        tenant: TenantId(1),
    });
    InvocationTrace::from_events(events)
}

/// SLOs aggressive enough to fire on the bursty fixture's queue spikes.
fn slos() -> Vec<SloSpec> {
    vec![
        SloSpec::queue_wait("interactive-wait", 5)
            .objective(0.9)
            .rules(vec![
                BurnRateRule::new("page", 200, 400, 1.0),
                BurnRateRule::new("ticket", 400, 1_200, 0.5),
            ]),
        SloSpec::slowdown("t0-slowdown", 1.2)
            .tenant(0)
            .objective(0.8),
        SloSpec::billing_rate("t1-spend", 5.0)
            .tenant(1)
            .objective(0.9)
            .rules(vec![BurnRateRule::new("page", 200, 400, 0.8)]),
    ]
}

/// Every timeline producer at once — stealing, predictive autoscaling,
/// rate-1.0 tracing, SLOs, profiling — optionally retention-capped.
fn full_driver(retention: Option<usize>) -> ClusterDriver<RoundRobin> {
    let mut telemetry = TelemetryConfig::default().trace_sampling(0x5EED, 1.0);
    if let Some(keep) = retention {
        telemetry = telemetry.timeline_retention(keep);
    }
    ClusterDriver::new(RoundRobin::new())
        .telemetry(telemetry)
        .stealing(StealingConfig::default().backlog_threshold(2))
        .autoscale(
            AutoscalerConfig::new(
                MachineConfig::new(8)
                    .background_scale(0.05)
                    .warmup_ms(60)
                    .max_inflight(3)
                    .seed(0xBEEF),
            )
            .high_water(1.6)
            .low_water(1.05)
            .machine_bounds(2, 8)
            .cooldown_ms(100)
            .predictive(PredictiveConfig::new(
                ForecasterSpec::Ewma { alpha: 0.4 },
                80.0,
            )),
        )
        .profiling(true)
        .slos(slos())
}

fn replay<P: PlacementPolicy>(
    mut driver: ClusterDriver<P>,
    config: ClusterConfig,
    trace: &InvocationTrace,
) -> (ClusterReport, ClusterDriver<P>) {
    let (tables, model) = calibration();
    let mut cluster = Cluster::build(config, tables, model).unwrap();
    let report = driver.replay(&mut cluster, trace).unwrap();
    (report, driver)
}

#[test]
fn streamed_export_is_byte_identical_across_engines_threads_and_sources() {
    let trace = bursty_trace(1_600, 23);
    let (materialized, _) = replay(full_driver(None), skewed_config(4, 4), &trace);
    let oracle = materialized.timeline_jsonl();
    assert!(materialized.streamed_jsonl().is_none());
    assert!(
        oracle.contains("\"slo.spec\""),
        "SLO config on the timeline"
    );

    const KEEP: usize = 96;
    for stepping in [
        SteppingMode::Pooled,
        SteppingMode::Scoped,
        SteppingMode::EventDriven,
    ] {
        for threads in [1, 4] {
            let config = skewed_config(4, threads).stepping(stepping);
            let (streamed, _) = replay(full_driver(Some(KEEP)), config, &trace);
            let label = format!("streamed[{stepping:?}/{threads}]");
            assert_jsonl_eq(
                "materialized",
                &oracle,
                &label,
                streamed
                    .streamed_jsonl()
                    .expect("retention attaches a sink"),
            );
            assert!(
                streamed.timeline_peak_retained() <= KEEP + 1,
                "peak {} exceeds window {}",
                streamed.timeline_peak_retained(),
                KEEP
            );
            // The events now live in the streamed export, not in memory.
            assert!(streamed.timeline().events().is_empty());
            assert_eq!(streamed.slo_alerts(), materialized.slo_alerts());
        }

        // Same contract when the trace arrives as a stream rather than
        // a materialized vector.
        let (tables, model) = calibration();
        let mut cluster =
            Cluster::build(skewed_config(4, 4).stepping(stepping), tables, model).unwrap();
        let from_source = full_driver(Some(KEEP))
            .replay_source(&mut cluster, trace.source())
            .unwrap();
        assert_jsonl_eq(
            "materialized",
            &oracle,
            "streamed-source",
            from_source
                .streamed_jsonl()
                .expect("retention attaches a sink"),
        );
    }
    assert!(
        materialized.timeline().events().len() > 4 * KEEP,
        "fixture too small to prove the memory bound"
    );
}

#[test]
fn online_alerts_equal_post_hoc_report_event_for_event() {
    let trace = bursty_trace(2_000, 17);
    let mut histories = Vec::new();
    for stepping in [SteppingMode::Pooled, SteppingMode::EventDriven] {
        let (report, driver) = replay(
            full_driver(None),
            skewed_config(4, 4).stepping(stepping),
            &trace,
        );
        let post_hoc = slos()
            .into_iter()
            .fold(SloEngine::new(), |engine, spec| engine.spec(spec))
            .evaluate(report.timeline(), 20);
        assert!(
            !report.slo_alerts().is_empty(),
            "fixture must actually fire alerts"
        );
        assert_eq!(report.slo_alerts(), post_hoc.alerts.as_slice());
        let open: Vec<_> = post_hoc
            .alerts
            .iter()
            .filter(|alert| alert.cleared_ms.is_none())
            .cloned()
            .collect();
        assert_eq!(driver.active_alerts(), open.as_slice());
        // Registry counters agree with the typed history.
        let registry = report.telemetry().registry();
        assert_eq!(
            registry.counter("slo.alert.fired"),
            report.slo_alerts().len() as u64
        );
        assert_eq!(
            registry.counter("slo.alert.cleared"),
            (report.slo_alerts().len() - open.len()) as u64
        );
        // The autoscaled replay publishes each live machine's observed
        // completion rate at every probe boundary: the gauge exists,
        // was set once per (machine, horizon), and its min/max bracket
        // a sane completions-per-second range.
        let service = registry
            .gauge("machine.service_rate")
            .expect("autoscaled replays publish machine.service_rate");
        assert!(service.sets >= 2, "at least one probe horizon per machine");
        assert!(service.min >= 0.0 && service.max >= service.min);
        assert!(service.max.is_finite());
        histories.push(report.slo_alerts().to_vec());
    }
    assert_eq!(histories[0], histories[1], "alert history is engine-free");
}

#[test]
fn bulk_skipped_boundaries_finalize_the_same_alerts_and_bytes() {
    // No elastic control, so the event engine really bulk-skips the
    // gap — the online engine then finalizes ~1500 boundaries in one
    // catch-up call where the slice oracle stepped them one by one.
    let trace = gapped_trace(30_000);
    let driver = || {
        ClusterDriver::new(RoundRobin::new())
            .telemetry(TelemetryConfig::default().trace_sampling(0x5EED, 1.0))
            .slos(slos())
    };
    let (slice, _) = replay(driver(), quiet_config(3, 4), &trace);
    let (event, _) = replay(
        driver(),
        quiet_config(3, 4).stepping(SteppingMode::EventDriven),
        &trace,
    );
    assert_jsonl_eq(
        "slice",
        &slice.timeline_jsonl(),
        "event",
        &event.timeline_jsonl(),
    );
    assert_eq!(slice, event);
    assert_eq!(slice.slo_alerts(), event.slo_alerts());

    // And the bulk-skipping engine can stream while it skips.
    let (streamed, _) = replay(
        driver().telemetry(
            TelemetryConfig::default()
                .trace_sampling(0x5EED, 1.0)
                .timeline_retention(32),
        ),
        quiet_config(3, 4).stepping(SteppingMode::EventDriven),
        &trace,
    );
    assert_jsonl_eq(
        "materialized",
        &slice.timeline_jsonl(),
        "streamed",
        streamed
            .streamed_jsonl()
            .expect("retention attaches a sink"),
    );
    assert!(streamed.timeline_peak_retained() <= 33);
}

#[test]
fn two_day_gap_replay_bounds_peak_timeline_memory_to_the_window() {
    // Two days of idle between the burst and the trailing arrival: the
    // event engine collapses the gap, and with a 64-record window the
    // peak resident timeline stays O(window) no matter the horizon.
    const TWO_DAYS_MS: u64 = 2 * 24 * 3_600 * 1_000;
    const KEEP: usize = 64;
    let trace = gapped_trace(TWO_DAYS_MS);
    let telemetry = TelemetryConfig::default()
        .trace_sampling(0x5EED, 1.0)
        .flight_capacity(8);
    let driver = || ClusterDriver::new(RoundRobin::new()).telemetry(telemetry);

    let (materialized, _) = replay(
        driver(),
        quiet_config(3, 4).stepping(SteppingMode::EventDriven),
        &trace,
    );
    let (streamed, _) = replay(
        driver().telemetry(telemetry.timeline_retention(KEEP)),
        quiet_config(3, 4).stepping(SteppingMode::EventDriven),
        &trace,
    );

    assert!(materialized.sim_ms > TWO_DAYS_MS);
    assert_jsonl_eq(
        "materialized",
        &materialized.timeline_jsonl(),
        "streamed",
        streamed
            .streamed_jsonl()
            .expect("retention attaches a sink"),
    );
    assert!(
        materialized.timeline().events().len() > 2 * KEEP,
        "fixture too small: {} events",
        materialized.timeline().events().len()
    );
    assert!(
        streamed.timeline_peak_retained() <= KEEP + 1,
        "peak {} exceeds window {}",
        streamed.timeline_peak_retained(),
        KEEP
    );
    assert_eq!(
        materialized.timeline_peak_retained(),
        materialized.timeline().events().len(),
        "without retention the peak is the whole timeline"
    );

    // The flight recorder is retention-independent: both replays hold
    // the same tail, and it is exactly the materialized timeline's
    // last `flight_capacity` point events — even though the streamed
    // replay's in-memory timeline no longer holds them at all.
    let tail: Vec<TimelineEvent> = materialized
        .timeline()
        .events()
        .iter()
        .filter(|event| event.kind == EventKind::Point)
        .cloned()
        .collect();
    let tail = tail[tail.len().saturating_sub(8)..].to_vec();
    assert_eq!(tail.len(), 8);
    let streamed_tail: Vec<TimelineEvent> =
        streamed.telemetry().recorder().dump().cloned().collect();
    let materialized_tail: Vec<TimelineEvent> = materialized
        .telemetry()
        .recorder()
        .dump()
        .cloned()
        .collect();
    assert_eq!(streamed_tail, materialized_tail);
    assert_eq!(streamed_tail, tail);
}
