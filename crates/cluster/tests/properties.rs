//! Property and end-to-end tests for the cluster serving layer:
//! billing conservation across shards, price-envelope invariants and
//! replay determinism.

use litmus_cluster::{
    BillingAggregator, BillingShard, Cluster, ClusterConfig, ClusterDriver, ClusterReport,
    EventClass, EventQueue, LeastLoaded, LitmusAware, MachineConfig, PlacementPolicy, ReplayEvent,
    RoundRobin,
};
use litmus_core::{DiscountModel, Invoice, Price, PricingTables, TableBuilder};
use litmus_platform::{ArrivalPattern, InvocationTrace, TenantId, TenantTraffic};
use litmus_sim::{MachineSpec, PmuCounters};
use litmus_workloads::suite::{self, TenantClass};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Sharded-billing conservation: pure-math properties over synthetic
// invoices, exploring many partitions cheaply.
// ---------------------------------------------------------------------------

/// A synthetic invoice whose litmus price is guaranteed ≤ commercial
/// (`litmus_frac ≤ 1`), mirroring the envelope real pricing enforces.
fn invoice_from(commercial: f64, litmus_frac: f64, ideal_frac: f64) -> Invoice {
    Invoice {
        function: "synthetic".into(),
        counters: PmuCounters {
            cycles: commercial,
            instructions: commercial * 0.8,
            ..Default::default()
        },
        commercial: Price {
            private: commercial * 0.8,
            shared: commercial * 0.2,
        },
        litmus: Price {
            private: commercial * 0.8 * litmus_frac,
            shared: commercial * 0.2 * litmus_frac,
        },
        ideal: Price {
            private: commercial * 0.8 * ideal_frac,
            shared: commercial * 0.2 * ideal_frac,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Folding invoices into per-machine shards and merging the shards
    /// equals folding everything into one monolithic shard, for any
    /// partition of invoices across machines and tenants.
    #[test]
    fn sharded_billing_equals_monolithic(
        invoices in prop::collection::vec(
            (1.0e3f64..1.0e9, 0.3f64..1.0, 0.2f64..1.0, 0usize..6, 0u32..4),
            1..64,
        ),
    ) {
        let shard_count = 6;
        let mut shards = vec![BillingShard::new(); shard_count];
        let mut mono = BillingShard::new();
        for (commercial, litmus_frac, ideal_frac, shard, tenant) in &invoices {
            let invoice = invoice_from(*commercial, *litmus_frac, *ideal_frac);
            shards[*shard].fold(TenantId(*tenant), &invoice);
            mono.fold(TenantId(*tenant), &invoice);
        }
        let mut aggregator = BillingAggregator::new();
        for shard in &shards {
            aggregator.absorb(shard);
        }
        // Counts are exact; revenue matches to float-addition-order eps.
        prop_assert_eq!(aggregator.total().len(), mono.total().len());
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
        prop_assert!(close(
            aggregator.total().commercial_revenue(),
            mono.total().commercial_revenue(),
        ));
        prop_assert!(close(
            aggregator.total().litmus_revenue(),
            mono.total().litmus_revenue(),
        ));
        prop_assert!(close(
            aggregator.total().ideal_revenue(),
            mono.total().ideal_revenue(),
        ));
        for (tenant, summary) in mono.tenants() {
            let merged = aggregator.tenant(tenant).unwrap();
            prop_assert_eq!(merged.len(), summary.len());
            prop_assert!(close(
                merged.commercial_revenue(),
                summary.commercial_revenue(),
            ));
            prop_assert!(close(merged.litmus_revenue(), summary.litmus_revenue()));
        }
    }

    /// The litmus ≤ commercial envelope survives any fold/merge chain:
    /// if every folded invoice respects it, every summary does.
    #[test]
    fn price_envelope_survives_aggregation(
        invoices in prop::collection::vec(
            (1.0e3f64..1.0e9, 0.3f64..1.0, 0.2f64..1.0, 0usize..3, 0u32..3),
            1..48,
        ),
    ) {
        let mut shards = vec![BillingShard::new(); 3];
        for (commercial, litmus_frac, ideal_frac, shard, tenant) in &invoices {
            let invoice = invoice_from(*commercial, *litmus_frac, *ideal_frac);
            prop_assert!(invoice.litmus.total() <= invoice.commercial.total());
            shards[*shard].fold(TenantId(*tenant), &invoice);
        }
        let mut aggregator = BillingAggregator::new();
        for shard in &shards {
            aggregator.absorb(shard);
            prop_assert!(
                shard.total().litmus_revenue()
                    <= shard.total().commercial_revenue() * (1.0 + 1e-12)
            );
        }
        prop_assert!(aggregator.total().average_discount() >= -1e-12);
        for (_, summary) in aggregator.tenants() {
            prop_assert!(
                summary.litmus_revenue()
                    <= summary.commercial_revenue() * (1.0 + 1e-12)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end cluster replays (small scales: these run in debug CI).
// ---------------------------------------------------------------------------

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .unwrap();
    let model = DiscountModel::fit(&tables).unwrap();
    (tables, model)
}

fn tenant_mix(duration_ms: u64) -> Vec<TenantTraffic> {
    vec![
        TenantTraffic {
            tenant: TenantId(0),
            pool: suite::tenant_pool(TenantClass::Interactive),
            pattern: ArrivalPattern::Steady { rate_per_s: 25.0 },
        },
        TenantTraffic {
            tenant: TenantId(1),
            pool: suite::tenant_pool(TenantClass::Analytics),
            pattern: ArrivalPattern::Bursty {
                base_rate_per_s: 5.0,
                burst_rate_per_s: 60.0,
                period_ms: 1_000,
                burst_ms: 200,
            },
        },
        TenantTraffic {
            tenant: TenantId(2),
            pool: suite::tenant_pool(TenantClass::Batch),
            pattern: ArrivalPattern::Diurnal {
                mean_rate_per_s: 12.0,
                amplitude: 0.8,
                period_ms: duration_ms,
            },
        },
    ]
}

fn multi_tenant_trace(duration_ms: u64, seed: u64) -> InvocationTrace {
    InvocationTrace::multi_tenant(tenant_mix(duration_ms), duration_ms, seed).unwrap()
}

/// Skewed cluster: the first half of the machines carry heavy
/// background load.
fn skewed_config(machines: usize, threads: usize) -> ClusterConfig {
    let configs: Vec<_> = (0..machines)
        .map(|i| {
            let background = if i < machines / 2 { 16 } else { 0 };
            MachineConfig::new(8)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(60)
                .seed(0xBEEF + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), machines, 8)
        .machines(configs)
        .serving_scale(0.04)
        .threads(threads)
        .slice_ms(20)
}

fn replay<P: PlacementPolicy>(
    policy: P,
    config: ClusterConfig,
    trace: &InvocationTrace,
) -> ClusterReport {
    let (tables, model) = calibration();
    let mut cluster = Cluster::build(config, tables, model).unwrap();
    ClusterDriver::new(policy)
        .replay(&mut cluster, trace)
        .unwrap()
}

#[test]
fn replay_bills_every_tenant_and_conserves_revenue() {
    let trace = multi_tenant_trace(2_500, 42);
    assert!(trace.len() > 60, "trace too small: {}", trace.len());
    let (tables, model) = calibration();
    let mut cluster = Cluster::build(skewed_config(4, 4), tables, model).unwrap();
    let outcome = ClusterDriver::new(LeastLoaded::new())
        .replay(&mut cluster, &trace)
        .unwrap();

    assert_eq!(outcome.unfinished, 0, "drain window must suffice");
    assert_eq!(outcome.completed, trace.len());
    assert_eq!(outcome.placements.len(), trace.len());
    assert_eq!(outcome.dispatch_counts.iter().sum::<usize>(), trace.len());

    // Per-tenant invoice counts match the trace's tenant mix.
    for tenant in trace.tenants() {
        let expected = trace.events().iter().filter(|e| e.tenant == tenant).count();
        let summary = outcome.billing.tenant(tenant).unwrap();
        assert_eq!(summary.len(), expected, "{tenant}");
        // The pricing envelope holds tenant by tenant.
        assert!(summary.litmus_revenue() <= summary.commercial_revenue() * (1.0 + 1e-9));
        assert!(summary.average_discount() >= 0.0);
    }

    // Conservation: machine shards sum to the aggregated totals.
    let mut rebuilt = BillingAggregator::new();
    let mut shard_invoices = 0;
    for idx in 0..cluster.len() {
        let shard = cluster.machine(idx).unwrap().shard();
        shard_invoices += shard.len();
        rebuilt.absorb(shard);
    }
    assert_eq!(shard_invoices, outcome.completed);
    assert!(
        (rebuilt.total().litmus_revenue() - outcome.billing.total().litmus_revenue()).abs() < 1e-6
    );
    assert!(outcome.mean_latency_ms > 0.0);
    assert!(outcome.throughput_per_sim_s() > 0.0);
}

#[test]
fn replays_are_deterministic_per_policy_and_thread_count() {
    let trace = multi_tenant_trace(1_500, 7);
    // Same trace + config + policy ⇒ identical placements and billing,
    // across repeated runs AND across stepping thread counts.
    let a = replay(RoundRobin::new(), skewed_config(4, 1), &trace);
    let b = replay(RoundRobin::new(), skewed_config(4, 4), &trace);
    assert_eq!(a.placements, b.placements);
    assert_eq!(a.billing, b.billing);

    let a = replay(LeastLoaded::new(), skewed_config(4, 1), &trace);
    let b = replay(LeastLoaded::new(), skewed_config(4, 3), &trace);
    assert_eq!(a.placements, b.placements);
    assert_eq!(a.billing, b.billing);

    let a = replay(LitmusAware::new(), skewed_config(4, 1), &trace);
    let b = replay(LitmusAware::new(), skewed_config(4, 4), &trace);
    assert_eq!(a.placements, b.placements);
    assert_eq!(a.billing, b.billing);
    assert_eq!(a.mean_predicted_slowdown, b.mean_predicted_slowdown);

    // The persistent worker pool and the legacy scoped-thread stepping
    // are bit-identical too.
    let c = replay(
        LitmusAware::new(),
        skewed_config(4, 4).stepping(litmus_cluster::SteppingMode::Scoped),
        &trace,
    );
    assert_eq!(a.placements, c.placements);
    assert_eq!(a.billing, c.billing);
    assert_eq!(a.mean_latency_ms, c.mean_latency_ms);
}

#[test]
fn streaming_source_replay_is_bit_identical_to_materialized() {
    use litmus_platform::{SyntheticSource, TraceEvent, TraceSource};

    // A source the driver does not construct itself — replay() is
    // replay_source() on trace.source(), so that pair would be
    // vacuous. No size hint: the pre-allocation shortcut is off.
    struct OwnedSource(std::collections::VecDeque<TraceEvent>);
    impl TraceSource for OwnedSource {
        fn next_event(&mut self) -> Option<TraceEvent> {
            self.0.pop_front()
        }
    }

    let trace = multi_tenant_trace(1_500, 13);
    let (tables, model) = calibration();

    let mut cluster = Cluster::build(skewed_config(4, 2), tables.clone(), model.clone()).unwrap();
    let materialized = ClusterDriver::new(LitmusAware::new())
        .replay(&mut cluster, &trace)
        .unwrap();

    // Stream the same events through an independent source.
    let mut cluster = Cluster::build(skewed_config(4, 2), tables.clone(), model.clone()).unwrap();
    let streamed = ClusterDriver::new(LitmusAware::new())
        .replay_source(
            &mut cluster,
            OwnedSource(trace.events().iter().cloned().collect()),
        )
        .unwrap();
    assert_eq!(materialized, streamed);

    // Stream the synthetic generator directly — no trace ever exists.
    let source = SyntheticSource::new(tenant_mix(1_500), 1_500, 13).unwrap();
    let mut cluster = Cluster::build(skewed_config(4, 2), tables, model).unwrap();
    let generated = ClusterDriver::new(LitmusAware::new())
        .replay_source(&mut cluster, source)
        .unwrap();
    assert_eq!(materialized, generated);
    assert_eq!(materialized.completed, trace.len());
}

#[test]
fn litmus_aware_beats_round_robin_on_a_skewed_cluster() {
    let trace = multi_tenant_trace(2_000, 11);
    let rr = replay(RoundRobin::new(), skewed_config(4, 4), &trace);
    let la = replay(LitmusAware::new(), skewed_config(4, 4), &trace);
    assert_eq!(rr.policy, "round-robin");
    assert_eq!(la.policy, "litmus-aware");
    assert!(
        la.mean_predicted_slowdown < rr.mean_predicted_slowdown,
        "litmus-aware {} must beat round-robin {}",
        la.mean_predicted_slowdown,
        rr.mean_predicted_slowdown
    );
    // The hot half of the cluster receives less traffic than the cool
    // half under litmus-aware routing.
    let hot: usize = la.dispatch_counts[..2].iter().sum();
    let cool: usize = la.dispatch_counts[2..].iter().sum();
    assert!(hot < cool, "hot {hot} vs cool {cool}");
}

#[test]
fn empty_traces_and_empty_clusters_are_handled() {
    let (tables, model) = calibration();
    assert!(matches!(
        Cluster::build(
            skewed_config(4, 1).machines(Vec::new()),
            tables.clone(),
            model.clone()
        ),
        Err(litmus_cluster::ClusterError::NoMachines)
    ));

    let mut cluster = Cluster::build(skewed_config(2, 1), tables, model).unwrap();
    let outcome = ClusterDriver::new(RoundRobin::new())
        .replay(&mut cluster, &InvocationTrace::from_events(Vec::new()))
        .unwrap();
    assert_eq!(outcome.completed, 0);
    assert_eq!(outcome.mean_latency_ms, 0.0);
    assert!(outcome.billing.total().is_empty());
}

// ---------------------------------------------------------------------------
// Event-queue merge determinism: the replay engine's event queue must
// drain as a pure function of the inserted multiset — tied timestamps
// break by event class then stable key, never by insertion sequence.
// ---------------------------------------------------------------------------

fn replay_event(at_ms: u64, class: u32, key: u64) -> ReplayEvent {
    let class = match class % 5 {
        0 => EventClass::Arrival,
        1 => EventClass::Completion,
        2 => EventClass::ProbeTick,
        3 => EventClass::BootReady,
        _ => EventClass::ForecastSample,
    };
    ReplayEvent { at_ms, class, key }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tiny value ranges force dense timestamp/class/key collisions;
    /// any insertion order (here: every rotation, forward and
    /// reversed) must drain in exactly the total (at_ms, class, key)
    /// order.
    #[test]
    fn event_queue_drain_order_is_insertion_invariant(
        raw in prop::collection::vec((0u64..4, 0u32..5, 0u64..3), 1..32),
        rotation in 0usize..32,
    ) {
        let events: Vec<ReplayEvent> = raw
            .iter()
            .map(|&(at_ms, class, key)| replay_event(at_ms, class, key))
            .collect();
        let mut expected = events.clone();
        expected.sort();

        let mut forward = EventQueue::new();
        for &event in &events {
            forward.push(event);
        }
        let drained: Vec<ReplayEvent> = std::iter::from_fn(|| forward.pop()).collect();
        prop_assert_eq!(&drained, &expected);

        let mut rotated = EventQueue::new();
        let pivot = rotation % events.len();
        for &event in events[pivot..].iter().chain(&events[..pivot]) {
            rotated.push(event);
        }
        let drained_rotated: Vec<ReplayEvent> =
            std::iter::from_fn(|| rotated.pop()).collect();
        prop_assert_eq!(&drained_rotated, &expected);

        let mut reversed = EventQueue::new();
        for &event in events.iter().rev() {
            reversed.push(event);
        }
        let drained_reversed: Vec<ReplayEvent> =
            std::iter::from_fn(|| reversed.pop()).collect();
        prop_assert_eq!(&drained_reversed, &expected);
    }
}
