//! Determinism contract of the replay telemetry: the JSONL timeline
//! export — including the per-invocation `trace.*` span chains, which
//! every driver here samples at rate 1.0 — must be byte-identical
//! across worker-pool thread counts and stepping modes, and between
//! streaming and materialized replay — even with wall-clock profiling
//! enabled, which lives outside the deterministic surface.

use litmus_cluster::{
    AutoscalerConfig, Cluster, ClusterConfig, ClusterDriver, ClusterReport, ForecasterSpec,
    MachineConfig, PlacementPolicy, PredictiveConfig, RoundRobin, StealingConfig, SteppingMode,
    TelemetryConfig,
};
use litmus_core::{DiscountModel, PricingTables, TableBuilder};
use litmus_platform::{ArrivalPattern, InvocationTrace, TenantId, TenantTraffic};
use litmus_sim::MachineSpec;
use litmus_workloads::suite::{self, TenantClass};
use proptest::prelude::*;

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .unwrap();
    let model = DiscountModel::fit(&tables).unwrap();
    (tables, model)
}

fn skewed_config(machines: usize, threads: usize) -> ClusterConfig {
    let configs: Vec<_> = (0..machines)
        .map(|i| {
            let background = if i < machines / 2 { 16 } else { 0 };
            MachineConfig::new(8)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(60)
                .max_inflight(3)
                .seed(0xE1A5 + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), machines, 8)
        .machines(configs)
        .serving_scale(0.04)
        .threads(threads)
        .slice_ms(20)
}

fn bursty_trace(duration_ms: u64, seed: u64) -> InvocationTrace {
    InvocationTrace::multi_tenant(
        vec![
            TenantTraffic {
                tenant: TenantId(0),
                pool: suite::tenant_pool(TenantClass::Interactive),
                pattern: ArrivalPattern::Steady { rate_per_s: 30.0 },
            },
            TenantTraffic {
                tenant: TenantId(1),
                pool: suite::tenant_pool(TenantClass::Analytics),
                pattern: ArrivalPattern::Bursty {
                    base_rate_per_s: 5.0,
                    burst_rate_per_s: 200.0,
                    period_ms: 1_000,
                    burst_ms: 250,
                },
            },
        ],
        duration_ms,
        seed,
    )
    .unwrap()
}

/// A driver exercising every timeline producer at once: stealing,
/// predictive autoscaling (scale + forecast events), per-invocation
/// span-tree tracing at rate 1.0, and wall-clock profiling (which
/// must NOT perturb the export).
fn full_driver() -> ClusterDriver<RoundRobin> {
    ClusterDriver::new(RoundRobin::new())
        .telemetry(TelemetryConfig::default().trace_sampling(0x5EED, 1.0))
        .stealing(StealingConfig::default().backlog_threshold(2))
        .autoscale(
            AutoscalerConfig::new(
                MachineConfig::new(8)
                    .background_scale(0.05)
                    .warmup_ms(60)
                    .max_inflight(3)
                    .seed(0xBEEF),
            )
            .high_water(1.6)
            .low_water(1.05)
            .machine_bounds(2, 8)
            .cooldown_ms(100)
            .predictive(PredictiveConfig::new(
                ForecasterSpec::Ewma { alpha: 0.4 },
                80.0,
            )),
        )
        .profiling(true)
}

fn run<P: PlacementPolicy>(
    driver: ClusterDriver<P>,
    config: ClusterConfig,
    trace: &InvocationTrace,
) -> ClusterReport {
    let (tables, model) = calibration();
    let mut cluster = Cluster::build(config, tables, model).unwrap();
    let mut driver = driver;
    driver.replay(&mut cluster, trace).unwrap()
}

#[test]
fn timeline_jsonl_is_byte_identical_across_thread_counts_and_modes() {
    let trace = bursty_trace(2_000, 17);
    let one = run(full_driver(), skewed_config(4, 1), &trace);
    let four = run(full_driver(), skewed_config(4, 4), &trace);
    let scoped = run(
        full_driver(),
        skewed_config(4, 4).stepping(SteppingMode::Scoped),
        &trace,
    );
    let a = one.timeline_jsonl();
    assert!(!one.timeline().is_empty());
    assert_eq!(a, four.timeline_jsonl());
    assert_eq!(a, scoped.timeline_jsonl());
    // Telemetry equality (which skips the wall-clock profile) and full
    // report equality must both hold.
    assert_eq!(one.telemetry(), four.telemetry());
    assert_eq!(one, four);
    assert_eq!(one, scoped);
}

#[test]
fn streaming_and_materialized_replay_produce_equal_timelines() {
    let trace = bursty_trace(1_600, 23);
    let (tables, model) = calibration();

    let mut materialized_cluster =
        Cluster::build(skewed_config(4, 4), tables.clone(), model.clone()).unwrap();
    let materialized = full_driver()
        .replay(&mut materialized_cluster, &trace)
        .unwrap();

    let mut streamed_cluster = Cluster::build(skewed_config(4, 4), tables, model).unwrap();
    let streamed = full_driver()
        .replay_source(&mut streamed_cluster, trace.source())
        .unwrap();

    assert_eq!(materialized.timeline(), streamed.timeline());
    assert_eq!(materialized.timeline_jsonl(), streamed.timeline_jsonl());
    assert_eq!(materialized, streamed);
}

#[test]
fn timeline_mirrors_the_typed_event_vectors_exactly() {
    let trace = bursty_trace(2_000, 17);
    let report = run(full_driver(), skewed_config(4, 4), &trace);

    let events = report.timeline().events();
    let count = |name: &str| events.iter().filter(|e| e.name == name).count();
    assert_eq!(count("steal"), report.steal_events().len());
    assert_eq!(count("scale"), report.scale_events().len());
    assert_eq!(count("forecast"), report.forecast_samples().len());
    assert_eq!(count("machine"), report.machine_lifetimes().len());
    assert_eq!(count("replay"), 1);
    assert!(
        !report.forecast_samples().is_empty(),
        "predictive replay must record forecast samples"
    );

    // Span-tree tracing at rate 1.0: every admitted invocation gets an
    // admission span and a placement decision event; every completed
    // one also gets queue/exec spans and a billing attribution event.
    assert_eq!(count("trace.admission"), trace.len());
    assert_eq!(count("trace.placement"), trace.len());
    assert_eq!(count("trace.queue"), report.completed);
    assert_eq!(count("trace.exec"), report.completed);
    assert_eq!(count("trace.billed"), report.completed);

    // Registry counters agree with the typed report fields.
    let registry = report.telemetry().registry();
    assert_eq!(
        registry.counter("steal.redispatched") as usize,
        report.redispatched
    );
    assert_eq!(
        registry.counter("replay.completed") as usize,
        report.completed
    );
    assert_eq!(registry.counter("arrivals.admitted") as usize, trace.len());
    assert_eq!(registry.counter("trace.sampled") as usize, trace.len());
    assert_eq!(
        registry.counter("trace.completed") as usize,
        report.completed
    );
    assert_eq!(
        registry
            .histogram("dispatch.predicted_slowdown")
            .unwrap()
            .count() as usize,
        report.predicted_slowdowns().len()
    );

    // Profiling was on: the wall-clock stages exist but are absent
    // from the deterministic export.
    let profile = report.telemetry().profile();
    assert!(profile.is_enabled());
    assert!(profile.stage("step").is_some());
    assert!(!report.timeline_jsonl().contains("barrier"));
}

#[test]
fn flight_recorder_keeps_the_tail_of_the_timeline() {
    let trace = bursty_trace(2_000, 17);
    let driver = full_driver().telemetry(
        TelemetryConfig::default()
            .flight_capacity(8)
            .profiling(false),
    );
    let report = run(driver, skewed_config(4, 4), &trace);
    let recorder = report.telemetry().recorder();
    assert_eq!(recorder.capacity(), 8);
    assert!(recorder.seen() > 8, "the replay must overflow the ring");
    assert_eq!(recorder.len(), 8);
    // The ring holds exactly the last 8 *point* events of the timeline.
    let points: Vec<_> = report
        .timeline()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, litmus_cluster::EventKind::Point))
        .collect();
    let tail: Vec<_> = points[points.len() - 8..].to_vec();
    let held: Vec<_> = recorder.dump().collect();
    assert_eq!(held, tail);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seed, any thread count: the export is one byte stream.
    #[test]
    fn timeline_determinism_holds_for_any_seed_and_thread_count(
        seed in 1u64..500,
        threads in 2usize..5,
    ) {
        let trace = bursty_trace(900, seed);
        let base = run(full_driver(), skewed_config(4, 1), &trace);
        let parallel = run(full_driver(), skewed_config(4, threads), &trace);
        prop_assert_eq!(base.timeline_jsonl(), parallel.timeline_jsonl());
        prop_assert_eq!(base, parallel);
    }
}
