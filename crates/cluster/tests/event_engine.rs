//! Oracle contract of the discrete-event replay engine
//! ([`SteppingMode::EventDriven`]): for the same trace, cluster
//! configuration and policy it must produce a bit-identical
//! [`ClusterReport`] AND a byte-identical telemetry JSONL export
//! compared to slice stepping — across placement policies, thread
//! counts, elastic control on/off, and streaming vs materialized
//! replay. Plus the perf contract that makes the engine worth having:
//! an all-idle gap costs zero machine quanta.

use litmus_cluster::{
    AutoscalerConfig, Cluster, ClusterConfig, ClusterDriver, ClusterReport, ForecasterSpec,
    LeastLoaded, LitmusAware, MachineConfig, PlacementPolicy, PredictiveConfig, RoundRobin,
    StealingConfig, SteppingMode, TelemetryConfig,
};
use litmus_core::{DiscountModel, PricingTables, TableBuilder};
use litmus_platform::{
    ArrivalPattern, InvocationTrace, TenantId, TenantTraffic, TraceEvent, TraceSource,
};
use litmus_sim::MachineSpec;
use litmus_telemetry::assert_jsonl_eq;
use litmus_workloads::suite::{self, TenantClass};

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .unwrap();
    let model = DiscountModel::fit(&tables).unwrap();
    (tables, model)
}

fn skewed_config(machines: usize, threads: usize) -> ClusterConfig {
    let configs: Vec<_> = (0..machines)
        .map(|i| {
            let background = if i < machines / 2 { 16 } else { 0 };
            MachineConfig::new(8)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(60)
                .max_inflight(3)
                .seed(0xE1A5 + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), machines, 8)
        .machines(configs)
        .serving_scale(0.04)
        .threads(threads)
        .slice_ms(20)
}

/// Idle machines only (no background fillers), so quiet stretches are
/// genuinely skippable — the configuration the engine is built for.
fn quiet_config(machines: usize, threads: usize) -> ClusterConfig {
    let configs: Vec<_> = (0..machines)
        .map(|i| {
            MachineConfig::new(8)
                .warmup_ms(60)
                .max_inflight(3)
                .seed(0xD0E5 + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), machines, 8)
        .machines(configs)
        .serving_scale(0.04)
        .threads(threads)
        .slice_ms(20)
}

fn bursty_trace(duration_ms: u64, seed: u64) -> InvocationTrace {
    InvocationTrace::multi_tenant(
        vec![
            TenantTraffic {
                tenant: TenantId(0),
                pool: suite::tenant_pool(TenantClass::Interactive),
                pattern: ArrivalPattern::Steady { rate_per_s: 30.0 },
            },
            TenantTraffic {
                tenant: TenantId(1),
                pool: suite::tenant_pool(TenantClass::Analytics),
                pattern: ArrivalPattern::Bursty {
                    base_rate_per_s: 5.0,
                    burst_rate_per_s: 200.0,
                    period_ms: 1_000,
                    burst_ms: 250,
                },
            },
        ],
        duration_ms,
        seed,
    )
    .unwrap()
}

/// A sparse trace: one burst of arrivals at the start, then an all-idle
/// gap of `gap_ms`, then one trailing arrival — the multi-day-replay
/// shape the event engine collapses.
fn gapped_trace(gap_ms: u64) -> InvocationTrace {
    let pool = suite::tenant_pool(TenantClass::Interactive);
    let mut events: Vec<TraceEvent> = (0..6)
        .map(|i| TraceEvent {
            at_ms: 5 + i * 7,
            function: pool[i as usize % pool.len()].clone(),
            tenant: TenantId(0),
        })
        .collect();
    events.push(TraceEvent {
        at_ms: 50 + gap_ms,
        function: pool[0].clone(),
        tenant: TenantId(1),
    });
    InvocationTrace::from_events(events)
}

fn replay<P: PlacementPolicy, S: TraceSource>(
    mut driver: ClusterDriver<P>,
    config: ClusterConfig,
    source: S,
) -> (ClusterReport, Cluster) {
    let (tables, model) = calibration();
    let mut cluster = Cluster::build(config, tables, model).unwrap();
    let report = driver.replay_source(&mut cluster, source).unwrap();
    (report, cluster)
}

/// Asserts the full oracle contract: report bit-equality (placements,
/// billing, latencies, scale/steal/forecast records — everything
/// `PartialEq` covers) and telemetry JSONL byte-equality. The JSONL
/// check runs first so a divergence fails with the exact line and
/// surrounding context rather than a screenful of `Debug` output.
fn assert_oracle_equal(slice: &ClusterReport, event: &ClusterReport) {
    assert_jsonl_eq(
        "slice",
        &slice.timeline_jsonl(),
        "event",
        &event.timeline_jsonl(),
    );
    assert_eq!(slice, event);
}

#[test]
fn event_engine_matches_slice_oracle_across_policies_and_threads() {
    let trace = bursty_trace(2_000, 17);
    for threads in [1, 4] {
        let (slice_rr, _) = replay(
            ClusterDriver::new(RoundRobin::new()),
            skewed_config(4, threads),
            trace.source(),
        );
        let (event_rr, _) = replay(
            ClusterDriver::new(RoundRobin::new()),
            skewed_config(4, threads).stepping(SteppingMode::EventDriven),
            trace.source(),
        );
        assert_oracle_equal(&slice_rr, &event_rr);

        let (slice_ll, _) = replay(
            ClusterDriver::new(LeastLoaded::new()),
            skewed_config(4, threads),
            trace.source(),
        );
        let (event_ll, _) = replay(
            ClusterDriver::new(LeastLoaded::new()),
            skewed_config(4, threads).stepping(SteppingMode::EventDriven),
            trace.source(),
        );
        assert_oracle_equal(&slice_ll, &event_ll);

        let (slice_la, _) = replay(
            ClusterDriver::new(LitmusAware::new()),
            skewed_config(4, threads),
            trace.source(),
        );
        let (event_la, _) = replay(
            ClusterDriver::new(LitmusAware::new()),
            skewed_config(4, threads).stepping(SteppingMode::EventDriven),
            trace.source(),
        );
        assert_oracle_equal(&slice_la, &event_la);
    }
}

#[test]
fn event_engine_matches_slice_oracle_with_elastic_control() {
    // Stealing + predictive autoscaling: every boundary is a decision
    // round, so this exercises the engine's degenerate per-boundary
    // path (probe ticks on every slice) plus boot-ready events. Span
    // tracing at rate 1.0 puts the per-invocation chains into the
    // compared byte stream too.
    let driver = || {
        ClusterDriver::new(LitmusAware::new())
            .telemetry(TelemetryConfig::default().trace_sampling(0x0B5E, 1.0))
            .stealing(StealingConfig::default().backlog_threshold(2))
            .autoscale(
                AutoscalerConfig::new(
                    MachineConfig::new(8)
                        .background_scale(0.05)
                        .warmup_ms(60)
                        .max_inflight(3)
                        .seed(0xBEEF),
                )
                .high_water(1.6)
                .low_water(1.05)
                .machine_bounds(2, 8)
                .cooldown_ms(100)
                .boot_lead_ms(120)
                .predictive(PredictiveConfig::new(
                    ForecasterSpec::Ewma { alpha: 0.4 },
                    80.0,
                )),
            )
            .profiling(true)
    };
    let trace = bursty_trace(2_500, 23);
    let (slice, _) = replay(driver(), skewed_config(4, 4), trace.source());
    let (event, _) = replay(
        driver(),
        skewed_config(4, 4).stepping(SteppingMode::EventDriven),
        trace.source(),
    );
    assert!(!slice.scale_events().is_empty());
    assert_oracle_equal(&slice, &event);
}

#[test]
fn event_engine_matches_slice_oracle_on_gapped_traces() {
    // The engine's home turf: a sparse trace where almost every slice
    // is empty. Materialized and streaming replay must agree too. Span
    // tracing is on: completion spans settled before a bulk-skipped
    // gap must serialize identically whether the driver drained them
    // slice-by-slice or in one bulk batch.
    let traced = || {
        ClusterDriver::new(LitmusAware::new())
            .telemetry(TelemetryConfig::default().trace_sampling(0x0B5E, 1.0))
    };
    let trace = gapped_trace(10 * 60_000);
    let (slice, _) = replay(traced(), quiet_config(3, 2), trace.source());
    let (event, _) = replay(
        traced(),
        quiet_config(3, 2).stepping(SteppingMode::EventDriven),
        trace.source(),
    );
    assert_oracle_equal(&slice, &event);
    // The gap really was replayed, not truncated.
    assert!(slice.sim_ms > 10 * 60_000);
    assert_eq!(slice.completed, 7);
}

#[test]
fn all_idle_gap_costs_zero_machine_quanta() {
    // Doubling an all-idle gap must not add a single simulator
    // quantum: the serving work around the gap is identical, so the
    // stepped-quanta count must be too — in BOTH engines (machines
    // fast-forward idle stretches regardless of the driver loop).
    // Only the simulated clock may differ.
    let short = gapped_trace(5 * 60_000);
    let long = gapped_trace(10 * 60_000);
    for stepping in [SteppingMode::Pooled, SteppingMode::EventDriven] {
        let (report_short, cluster_short) = replay(
            ClusterDriver::new(RoundRobin::new()),
            quiet_config(2, 1).stepping(stepping),
            short.source(),
        );
        let (report_long, cluster_long) = replay(
            ClusterDriver::new(RoundRobin::new()),
            quiet_config(2, 1).stepping(stepping),
            long.source(),
        );
        assert_eq!(
            cluster_short.quanta_stepped(),
            cluster_long.quanta_stepped(),
            "{stepping:?}: idle gap performed machine steps"
        );
        assert_eq!(
            report_long.sim_ms - report_short.sim_ms,
            5 * 60_000,
            "{stepping:?}: gap not replayed in full"
        );
        assert_eq!(report_short.completed, report_long.completed);
    }
}
