//! The discrete-event queue behind [`crate::SteppingMode::EventDriven`].
//!
//! Slice-mode replay pays for every boundary whether or not anything
//! happens there. The event-driven engine instead k-way-merges the
//! streams that can actually *change* cluster state — trace arrivals,
//! in-flight completions, autoscaler probe ticks, pending machine
//! boots, forecast sampling points — into one time-ordered queue and
//! jumps from event to event. The queue is a plain binary heap of
//! [`ReplayEvent`]s with a total order, so the pop sequence is a pure
//! function of the inserted multiset: shuffling insertion order (or
//! racing producers) cannot change replay results. Ties on the
//! timestamp break by [`EventClass`] first and then by a stable `key`
//! (machine or tenant id), which is what keeps event-driven replays
//! bit-identical to the slice oracle.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What kind of boundary an event marks. The declaration order is the
/// tiebreak order for events sharing a timestamp: work enters
/// (arrivals) before work leaves (completions), control decisions
/// (probe ticks, boots) observe both, and forecast samples read the
/// settled state last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventClass {
    /// A trace arrival is admitted at this boundary.
    Arrival,
    /// An in-flight invocation on some machine may complete by here.
    Completion,
    /// The autoscaler / steal pass wants to observe the fleet.
    ProbeTick,
    /// A pending machine boot commissions at this boundary.
    BootReady,
    /// The predictive forecaster samples its signal here.
    ForecastSample,
}

/// One entry in the replay's merged event queue.
///
/// Ordering is `(at_ms, class, key)` ascending — a total order with no
/// insertion-sequence component, so two queues holding the same events
/// always drain identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplayEvent {
    /// Cluster time of the boundary, in milliseconds.
    pub at_ms: u64,
    /// Stream the event came from; first tiebreak for shared stamps.
    pub class: EventClass,
    /// Stable source id (machine or tenant); final tiebreak.
    pub key: u64,
}

impl ReplayEvent {
    /// An admitted-arrival boundary.
    pub fn arrival(at_ms: u64, key: u64) -> Self {
        ReplayEvent {
            at_ms,
            class: EventClass::Arrival,
            key,
        }
    }

    /// A possible-completion boundary for machine `key`.
    pub fn completion(at_ms: u64, key: u64) -> Self {
        ReplayEvent {
            at_ms,
            class: EventClass::Completion,
            key,
        }
    }

    /// An autoscale/steal observation boundary.
    pub fn probe_tick(at_ms: u64) -> Self {
        ReplayEvent {
            at_ms,
            class: EventClass::ProbeTick,
            key: 0,
        }
    }

    /// A pending-boot commissioning boundary for boot slot `key`.
    pub fn boot_ready(at_ms: u64, key: u64) -> Self {
        ReplayEvent {
            at_ms,
            class: EventClass::BootReady,
            key,
        }
    }

    /// A forecast sampling boundary.
    pub fn forecast(at_ms: u64) -> Self {
        ReplayEvent {
            at_ms,
            class: EventClass::ForecastSample,
            key: 0,
        }
    }
}

/// A min-queue of [`ReplayEvent`]s — the merged timeline the
/// event-driven engine walks.
///
/// # Examples
///
/// ```
/// use litmus_cluster::{EventQueue, ReplayEvent};
///
/// let mut queue = EventQueue::new();
/// queue.push(ReplayEvent::probe_tick(200));
/// queue.push(ReplayEvent::arrival(200, 7));
/// queue.push(ReplayEvent::completion(100, 3));
/// assert_eq!(queue.pop(), Some(ReplayEvent::completion(100, 3)));
/// // Same stamp: arrivals order before probe ticks.
/// assert_eq!(queue.pop(), Some(ReplayEvent::arrival(200, 7)));
/// assert_eq!(queue.pop(), Some(ReplayEvent::probe_tick(200)));
/// assert_eq!(queue.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<ReplayEvent>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Inserts an event. Duplicates are allowed and harmless — the
    /// engine advances `now` past every popped stamp, so a repeated
    /// boundary is a no-op on the second pop.
    pub fn push(&mut self, event: ReplayEvent) {
        self.heap.push(Reverse(event));
    }

    /// Removes and returns the earliest event (ties broken by class
    /// then key), or `None` when empty.
    pub fn pop(&mut self) -> Option<ReplayEvent> {
        self.heap.pop().map(|Reverse(event)| event)
    }

    /// The earliest event without removing it.
    pub fn peek(&self) -> Option<ReplayEvent> {
        self.heap.peek().map(|&Reverse(event)| event)
    }

    /// Drops all pending events (capacity is kept for reuse).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut queue = EventQueue::new();
        for at in [500, 100, 300, 200, 400] {
            queue.push(ReplayEvent::arrival(at, 0));
        }
        let mut stamps = Vec::new();
        while let Some(event) = queue.pop() {
            stamps.push(event.at_ms);
        }
        assert_eq!(stamps, vec![100, 200, 300, 400, 500]);
    }

    #[test]
    fn tied_stamps_break_by_class_then_key() {
        let mut queue = EventQueue::new();
        queue.push(ReplayEvent::forecast(100));
        queue.push(ReplayEvent::boot_ready(100, 2));
        queue.push(ReplayEvent::boot_ready(100, 1));
        queue.push(ReplayEvent::probe_tick(100));
        queue.push(ReplayEvent::completion(100, 9));
        queue.push(ReplayEvent::arrival(100, 4));
        let drained: Vec<ReplayEvent> = std::iter::from_fn(|| queue.pop()).collect();
        assert_eq!(
            drained,
            vec![
                ReplayEvent::arrival(100, 4),
                ReplayEvent::completion(100, 9),
                ReplayEvent::probe_tick(100),
                ReplayEvent::boot_ready(100, 1),
                ReplayEvent::boot_ready(100, 2),
                ReplayEvent::forecast(100),
            ]
        );
    }

    #[test]
    fn insertion_order_cannot_change_pop_order() {
        let events = [
            ReplayEvent::arrival(300, 1),
            ReplayEvent::completion(100, 5),
            ReplayEvent::probe_tick(300),
            ReplayEvent::completion(100, 2),
            ReplayEvent::arrival(100, 0),
        ];
        let mut forward = EventQueue::new();
        let mut backward = EventQueue::new();
        for event in events {
            forward.push(event);
        }
        for event in events.iter().rev() {
            backward.push(*event);
        }
        let f: Vec<ReplayEvent> = std::iter::from_fn(|| forward.pop()).collect();
        let b: Vec<ReplayEvent> = std::iter::from_fn(|| backward.pop()).collect();
        assert_eq!(f, b);
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut queue = EventQueue::new();
        queue.push(ReplayEvent::probe_tick(10));
        assert_eq!(queue.len(), 1);
        queue.clear();
        assert!(queue.is_empty());
        assert_eq!(queue.pop(), None);
    }
}
