//! Persistent stepping workers for a [`crate::Cluster`].
//!
//! The original driver spawned scoped threads for every time-slice —
//! thousands of spawn/join cycles per replay. The [`WorkerPool`] keeps
//! the threads alive for the lifetime of the cluster instead: each
//! slice, machine shards are handed to the same workers over channels,
//! stepped in parallel, and handed back at the slice barrier (the main
//! thread blocks until every shard returns, so a slice never overlaps
//! the next dispatch round). Machines are fully independent state
//! machines, so the sharding — and therefore the thread count — cannot
//! change results: replays stay bit-identical from 1 thread to N.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use litmus_telemetry::StageProfile;

use crate::context::ServingContext;
use crate::error::ClusterError;
use crate::machine::Machine;
use crate::Result;

/// How the driver steps machines through each time-slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SteppingMode {
    /// Long-lived worker pool: threads are spawned once per cluster
    /// and fed machine shards per slice — the default.
    #[default]
    Pooled,
    /// Scoped threads spawned and joined every slice — the original
    /// design, kept for benchmarking the pool against.
    Scoped,
    /// Discrete-event replay: the driver merges arrivals, completions,
    /// probe ticks, scale/boot events and forecast sampling points
    /// into one time-ordered queue and advances boundary-to-boundary.
    /// Quiet stretches are bulk-skipped in O(1) per machine; dense
    /// stretches still fan out across the same worker pool as
    /// [`SteppingMode::Pooled`]. Slice stepping remains the oracle:
    /// event-driven replays are bit-identical to it (full
    /// [`crate::ClusterReport`] and telemetry JSONL) at the same seed.
    EventDriven,
}

/// One shard of machines travelling to a worker and back. The `usize`
/// is each machine's position in the cluster's machine vector, so the
/// barrier can reassemble the vector in its original order.
struct Job {
    shard: Vec<(usize, Machine)>,
    target_ms: u64,
    ctx: Arc<ServingContext>,
}

struct Done {
    shard: Vec<(usize, Machine)>,
    outcome: Result<()>,
}

/// A pool of long-lived stepping threads, created once per cluster and
/// reused by every slice of every replay.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    jobs: Vec<Sender<Job>>,
    done_rx: Receiver<Done>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` stepping threads (at least one).
    pub(crate) fn spawn(workers: usize) -> Self {
        let workers = workers.max(1);
        let (done_tx, done_rx) = channel::<Done>();
        let mut jobs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = channel::<Job>();
            let done_tx = done_tx.clone();
            handles.push(std::thread::spawn(move || worker_loop(job_rx, done_tx)));
            jobs.push(job_tx);
        }
        WorkerPool {
            jobs,
            done_rx,
            handles,
        }
    }

    /// Number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.jobs.len()
    }

    /// Steps every machine to cluster time `target_ms`: shards the
    /// machine vector across the workers, waits for every shard at the
    /// slice barrier, and reassembles the vector in order. When
    /// `profile` is enabled, the wall-clock time the main thread spends
    /// blocked on returning shards is charged to the `"barrier"` stage
    /// (the convoy cost the ROADMAP's slice-free engine would remove).
    ///
    /// # Errors
    ///
    /// * [`ClusterError::WorkerPanic`] if a worker panicked (the panic
    ///   is caught, so the machines — and the pool — survive);
    /// * the first stepping error any worker hit.
    pub(crate) fn step_all(
        &self,
        machines: &mut Vec<Machine>,
        target_ms: u64,
        ctx: &Arc<ServingContext>,
        profile: &mut StageProfile,
    ) -> Result<()> {
        let count = machines.len();
        if count == 0 {
            return Ok(());
        }
        let workers = self.workers().min(count);
        let chunk_len = count.div_ceil(workers);
        let mut drained = std::mem::take(machines).into_iter().enumerate();
        let mut sent = 0;
        for job_tx in &self.jobs[..workers] {
            let shard: Vec<(usize, Machine)> = drained.by_ref().take(chunk_len).collect();
            if shard.is_empty() {
                break;
            }
            job_tx
                .send(Job {
                    shard,
                    target_ms,
                    ctx: Arc::clone(ctx),
                })
                .map_err(|_| ClusterError::WorkerPanic("worker channel closed".into()))?;
            sent += 1;
        }

        let mut slots: Vec<Option<Machine>> = (0..count).map(|_| None).collect();
        let mut first_error = None;
        let barrier_started = profile.start();
        for _ in 0..sent {
            let done = self
                .done_rx
                .recv()
                .map_err(|_| ClusterError::WorkerPanic("worker pool disconnected".into()))?;
            for (idx, machine) in done.shard {
                slots[idx] = Some(machine);
            }
            if let Err(e) = done.outcome {
                first_error.get_or_insert(e);
            }
        }
        profile.stop("barrier", barrier_started);
        for slot in slots {
            machines.push(
                slot.ok_or_else(|| ClusterError::WorkerPanic("worker lost a machine".into()))?,
            );
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends every worker loop; joining
        // bounds the threads' lifetime to the cluster's.
        self.jobs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(jobs: Receiver<Job>, done: Sender<Done>) {
    while let Ok(job) = jobs.recv() {
        let Job {
            mut shard,
            target_ms,
            ctx,
        } = job;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for (_, machine) in shard.iter_mut() {
                machine.step_to(target_ms, &ctx)?;
            }
            Ok(())
        }))
        .unwrap_or_else(|panic| Err(ClusterError::WorkerPanic(panic_message(&panic))));
        // Release the context clone before signalling the barrier:
        // the main thread resumes the moment Done lands, and a lagging
        // Arc here would force Arc::make_mut in the next replay's
        // warm-up into a deep clone of the whole serving context.
        drop(ctx);
        // The shard travels back even after a panic: a poisoned replay
        // errors out, but the cluster keeps all its machines.
        if done.send(Done { shard, outcome }).is_err() {
            return;
        }
    }
}

pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stepping_mode_defaults_to_pooled() {
        assert_eq!(SteppingMode::default(), SteppingMode::Pooled);
    }

    #[test]
    fn empty_pool_step_is_a_no_op() {
        let pool = WorkerPool::spawn(2);
        assert_eq!(pool.workers(), 2);
        // No ServingContext is needed when there are no machines, but
        // step_all still wants one; exercised end-to-end in the
        // integration tests instead. Here: dropping joins cleanly.
        drop(pool);
    }
}
