//! Probe-driven autoscaling.
//!
//! Paper §5.1's observation — Litmus congestion probes give the
//! provider a free scheduling signal — also prices *capacity*: when the
//! fleetwide forward-adjusted slowdown prediction crosses a high-water
//! mark the fleet is too hot and a machine is booted; when it falls
//! under a low-water mark an idle machine is drained (its background
//! fillers stop being backfilled, the scheduler stops routing to it)
//! and retired once empty. Retired machines' billing shards are folded
//! into the cluster's retained aggregator first, so
//! [`crate::BillingAggregator`] totals are conserved across any scaling
//! history.

use crate::error::ClusterError;
use crate::machine::{MachineConfig, MachineId};
use crate::{Cluster, Result};

/// Configuration of the probe-driven autoscaler, enabled per replay
/// via [`crate::ClusterDriver::autoscale`].
///
/// # Examples
///
/// ```
/// use litmus_cluster::{AutoscalerConfig, MachineConfig};
///
/// let config = AutoscalerConfig::new(MachineConfig::new(8))
///     .high_water(2.5)
///     .low_water(1.2)
///     .machine_bounds(2, 16)
///     .cooldown_ms(400);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct AutoscalerConfig {
    /// Fleetwide mean forward-adjusted slowdown prediction above which
    /// a machine is added.
    pub high_water: f64,
    /// Fleetwide mean forward-adjusted slowdown prediction below which
    /// an idle machine starts draining.
    pub low_water: f64,
    /// Fewest serving (non-draining) machines the fleet may shrink to.
    pub min_machines: usize,
    /// Most serving (non-draining) machines the fleet may grow to.
    pub max_machines: usize,
    /// Quiet period between scale decisions, ms — scale-ups need the
    /// new machine's probes to land before the signal is trusted again.
    pub cooldown_ms: u64,
    /// Template for scaled-up machines; each new machine gets a
    /// distinct deterministic seed derived from the template's.
    pub template: MachineConfig,
}

impl AutoscalerConfig {
    /// A conservative default around `template`: grow above a mean
    /// predicted slowdown of 2.5×, drain below 1.15×, 1–64 machines,
    /// 500 ms between decisions.
    pub fn new(template: MachineConfig) -> Self {
        AutoscalerConfig {
            high_water: 2.5,
            low_water: 1.15,
            min_machines: 1,
            max_machines: 64,
            cooldown_ms: 500,
            template,
        }
    }

    /// Sets the scale-up mark.
    pub fn high_water(mut self, mark: f64) -> Self {
        self.high_water = mark;
        self
    }

    /// Sets the scale-down mark.
    pub fn low_water(mut self, mark: f64) -> Self {
        self.low_water = mark;
        self
    }

    /// Sets the fleet-size bounds.
    pub fn machine_bounds(mut self, min: usize, max: usize) -> Self {
        self.min_machines = min;
        self.max_machines = max;
        self
    }

    /// Sets the decision cooldown, ms.
    pub fn cooldown_ms(mut self, ms: u64) -> Self {
        self.cooldown_ms = ms;
        self
    }

    /// Checks the marks and bounds are coherent.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidAutoscale`] when the low-water mark is
    /// not below the high-water mark, a mark is not finite and ≥ 1, or
    /// the machine bounds are empty/inverted.
    pub fn validate(&self) -> Result<()> {
        if !(self.high_water.is_finite() && self.low_water.is_finite()) {
            return Err(ClusterError::InvalidAutoscale("water marks must be finite"));
        }
        if self.low_water < 1.0 || self.high_water <= self.low_water {
            return Err(ClusterError::InvalidAutoscale(
                "marks must satisfy 1 <= low_water < high_water",
            ));
        }
        if self.min_machines == 0 || self.max_machines < self.min_machines {
            return Err(ClusterError::InvalidAutoscale(
                "machine bounds must satisfy 1 <= min <= max",
            ));
        }
        Ok(())
    }
}

/// What a [`ScaleEvent`] recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleKind {
    /// A machine was booted into the fleet.
    Up,
    /// An idle machine began draining (no new work, fillers wind down).
    DrainStart,
    /// A drained machine left the fleet; its billing shard was folded
    /// into the cluster's retained aggregator.
    Retire,
}

/// One autoscaling decision, as surfaced in
/// [`crate::ClusterReport::scale_events`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEvent {
    /// Cluster time of the slice boundary the decision was taken at.
    pub at_ms: u64,
    /// The machine added, drained or retired.
    pub machine: MachineId,
    /// What happened.
    pub kind: ScaleKind,
    /// The fleetwide mean forward-adjusted slowdown prediction that
    /// triggered the decision (0 for retirements, which trigger on
    /// emptiness, not congestion).
    pub signal: f64,
}

/// Birth-to-retirement record of one machine, as surfaced in
/// [`crate::ClusterReport::machine_lifetimes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineLifetime {
    /// The machine.
    pub machine: MachineId,
    /// Cluster time the machine joined the fleet, ms.
    pub born_ms: u64,
    /// Cluster time the machine was retired, ms (`None` while alive).
    pub retired_ms: Option<u64>,
    /// Invocations completed and billed on the machine over its life.
    pub completed: usize,
    /// Invocations dispatched to the machine (net of re-dispatches
    /// away) over its life.
    pub dispatched: usize,
}

impl MachineLifetime {
    /// How long the machine served, ms (up to `now_ms` while alive).
    pub fn lifetime_ms(&self, now_ms: u64) -> u64 {
        self.retired_ms
            .unwrap_or(now_ms)
            .saturating_sub(self.born_ms)
    }
}

/// Retires every drained machine in `cluster` and records one
/// [`ScaleKind::Retire`] event per machine. Retirements trigger on
/// emptiness, not congestion, so the event signal is 0.
pub(crate) fn push_retirements(cluster: &mut Cluster, now_ms: u64, events: &mut Vec<ScaleEvent>) {
    for id in cluster.retire_drained(now_ms) {
        events.push(ScaleEvent {
            at_ms: now_ms,
            machine: id,
            kind: ScaleKind::Retire,
            signal: 0.0,
        });
    }
}

/// Probe-driven elastic capacity: grows the machine set when the
/// fleetwide predicted slowdown crosses [`AutoscalerConfig::high_water`]
/// and drains/retires idle machines under
/// [`AutoscalerConfig::low_water`]. One instance lives per replay; all
/// state (cooldown clock, seed counter) is deterministic.
#[derive(Debug)]
pub(crate) struct Autoscaler {
    config: AutoscalerConfig,
    last_decision_ms: Option<u64>,
    spawned: u64,
}

impl Autoscaler {
    pub(crate) fn new(config: AutoscalerConfig) -> Self {
        Autoscaler {
            config,
            last_decision_ms: None,
            spawned: 0,
        }
    }

    fn cooled_down(&self, now_ms: u64) -> bool {
        self.last_decision_ms
            .map(|last| now_ms.saturating_sub(last) >= self.config.cooldown_ms)
            .unwrap_or(true)
    }

    /// Runs one decision round at slice boundary `now_ms`: retires any
    /// machine that finished draining, then — when cooled down —
    /// compares the fleetwide signal against the water marks and boots
    /// or drains at most one machine.
    ///
    /// # Errors
    ///
    /// Propagates machine boot failures on scale-up.
    pub(crate) fn evaluate(
        &mut self,
        cluster: &mut Cluster,
        now_ms: u64,
        events: &mut Vec<ScaleEvent>,
    ) -> Result<()> {
        // Retirements are free (the machine is already empty): no
        // cooldown gating.
        push_retirements(cluster, now_ms, events);

        let snaps = cluster.snapshots();
        let serving: Vec<_> = snaps.iter().filter(|s| !s.draining).collect();
        if serving.is_empty() || !self.cooled_down(now_ms) {
            return Ok(());
        }
        let signal =
            serving.iter().map(|s| s.congestion_score()).sum::<f64>() / serving.len() as f64;

        // Both bounds count *serving* machines: a retiree mid-drain is
        // winding down and must neither block a scale-up at the cap
        // (capacity is needed exactly then) nor pad the scale-down
        // floor.
        if signal > self.config.high_water && serving.len() < self.config.max_machines {
            let mut template = self.config.template.clone();
            template.seed = template
                .seed
                .wrapping_add(0x5CA1E)
                .wrapping_add(self.spawned);
            self.spawned += 1;
            let id = cluster.spawn_machine(&template, now_ms)?;
            self.last_decision_ms = Some(now_ms);
            events.push(ScaleEvent {
                at_ms: now_ms,
                machine: id,
                kind: ScaleKind::Up,
                signal,
            });
        } else if signal < self.config.low_water && serving.len() > self.config.min_machines {
            // Only an *idle* machine may leave; prefer the youngest
            // (highest id) so the stable core of the fleet persists.
            let candidate = serving
                .iter()
                .filter(|s| s.inflight == 0 && s.queued == 0)
                .max_by_key(|s| s.id)
                .map(|s| s.id);
            if let Some(id) = candidate {
                cluster.begin_drain(id);
                self.last_decision_ms = Some(now_ms);
                events.push(ScaleEvent {
                    at_ms: now_ms,
                    machine: id,
                    kind: ScaleKind::DrainStart,
                    signal,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_catches_bad_marks_and_bounds() {
        let template = MachineConfig::new(4);
        assert!(AutoscalerConfig::new(template.clone()).validate().is_ok());
        assert!(AutoscalerConfig::new(template.clone())
            .high_water(1.0)
            .low_water(2.0)
            .validate()
            .is_err());
        assert!(AutoscalerConfig::new(template.clone())
            .low_water(0.5)
            .validate()
            .is_err());
        assert!(AutoscalerConfig::new(template.clone())
            .machine_bounds(0, 4)
            .validate()
            .is_err());
        assert!(AutoscalerConfig::new(template)
            .machine_bounds(8, 2)
            .validate()
            .is_err());
    }

    #[test]
    fn lifetimes_measure_to_now_or_retirement() {
        let alive = MachineLifetime {
            machine: MachineId(0),
            born_ms: 100,
            retired_ms: None,
            completed: 0,
            dispatched: 0,
        };
        assert_eq!(alive.lifetime_ms(600), 500);
        let retired = MachineLifetime {
            retired_ms: Some(400),
            ..alive
        };
        assert_eq!(retired.lifetime_ms(600), 300);
    }
}
