//! Probe-driven and forecast-driven autoscaling.
//!
//! Paper §5.1's observation — Litmus congestion probes give the
//! provider a free scheduling signal — also prices *capacity*. The
//! **reactive** policy acts on that signal directly: when the
//! fleetwide forward-adjusted slowdown prediction crosses a high-water
//! mark the fleet is too hot and a machine is booted; when it falls
//! under a low-water mark an idle machine is drained (its background
//! fillers stop being backfilled, the scheduler stops routing to it)
//! and retired once empty. The **predictive** policy
//! ([`ScalingPolicy::Predictive`]) additionally feeds each slice's
//! admitted-arrival count into an online forecaster
//! (`litmus-forecast`) and boots machines when the upper band of the
//! horizon forecast exceeds what the serving fleet can absorb —
//! *before* the burst lands, with the reactive high-water mark kept as
//! a backstop for forecast misses and scale-downs still probe-gated so
//! a bad forecast can only over-provision, never worsen the SLO tail.
//! Retired machines' billing shards are folded into the cluster's
//! retained aggregator first, so [`crate::BillingAggregator`] totals
//! are conserved across any scaling history.

use litmus_forecast::{BandedForecaster, Forecaster, ForecasterSpec, HorizonForecast};

use crate::error::ClusterError;
use crate::machine::{MachineConfig, MachineId};
use crate::policy::MachineSnapshot;
use crate::{Cluster, Result};

/// Forecast-driven capacity planning knobs for
/// [`ScalingPolicy::Predictive`].
///
/// The forecaster observes one value per scheduling slice — the
/// arrivals admitted in that slice — and the scaler provisions against
/// the *upper band* of the forecast [`PredictiveConfig::horizon_slices`]
/// ahead (the boot lead time), converting rate to machines through
/// [`PredictiveConfig::machine_rate_per_s`].
///
/// # Examples
///
/// ```
/// use litmus_cluster::{ForecasterSpec, PredictiveConfig};
///
/// let config = PredictiveConfig::new(
///     ForecasterSpec::SeasonalHoltWinters {
///         alpha: 0.3,
///         beta: 0.05,
///         gamma: 0.3,
///         period: 30,
///     },
///     120.0,
/// )
/// .horizon_slices(8)
/// .headroom(1.2)
/// .band_quantile(0.9);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictiveConfig {
    /// Which forecasting model tracks the admitted-arrival series; a
    /// fresh zero-state instance is built per replay.
    pub spec: ForecasterSpec,
    /// Forecast lead in scheduling slices (≥ 1) — set it to cover the
    /// machine boot + warm-up time so capacity is serving when the
    /// forecast burst lands.
    pub horizon_slices: usize,
    /// Arrivals per second one machine absorbs at its target
    /// utilization — the per-machine service-rate estimate that turns
    /// a rate forecast into a machine count (> 0).
    pub machine_rate_per_s: f64,
    /// Safety multiplier on the forecast band before conversion
    /// (≥ 1).
    pub headroom: f64,
    /// Quantile of the upper forecast band capacity is provisioned
    /// against, in `(0.5, 1)`.
    pub band_quantile: f64,
    /// Residuals retained for the online band quantiles (≥ 2).
    pub residual_window: usize,
    /// Slices observed before forecasts are allowed to drive scaling
    /// (the reactive backstop covers the warm-up).
    pub warmup_slices: usize,
}

impl PredictiveConfig {
    /// Forecast-driven scaling with `spec` over a machine absorbing
    /// `machine_rate_per_s` arrivals per second: 8-slice lead, 15%
    /// headroom, 90% band over the last 128 residuals, 16 warm-up
    /// slices.
    pub fn new(spec: ForecasterSpec, machine_rate_per_s: f64) -> Self {
        PredictiveConfig {
            spec,
            horizon_slices: 8,
            machine_rate_per_s,
            headroom: 1.15,
            band_quantile: 0.9,
            residual_window: 128,
            warmup_slices: 16,
        }
    }

    /// Sets the forecast lead, in slices (minimum 1).
    pub fn horizon_slices(mut self, slices: usize) -> Self {
        self.horizon_slices = slices.max(1);
        self
    }

    /// Sets the capacity headroom multiplier.
    pub fn headroom(mut self, headroom: f64) -> Self {
        self.headroom = headroom;
        self
    }

    /// Sets the band quantile capacity is provisioned against.
    pub fn band_quantile(mut self, quantile: f64) -> Self {
        self.band_quantile = quantile;
        self
    }

    /// Sets the residual-window size.
    pub fn residual_window(mut self, window: usize) -> Self {
        self.residual_window = window;
        self
    }

    /// Sets the forecast warm-up, in slices.
    pub fn warmup_slices(mut self, slices: usize) -> Self {
        self.warmup_slices = slices;
        self
    }

    /// Checks the knobs are coherent (the forecaster spec itself is
    /// checked when built, with its own messages).
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidAutoscale`] for a non-positive service
    /// rate, a headroom below 1, or band parameters the forecast layer
    /// rejects.
    pub fn validate(&self) -> Result<()> {
        if !(self.machine_rate_per_s.is_finite() && self.machine_rate_per_s > 0.0) {
            return Err(ClusterError::InvalidAutoscale(
                "predictive machine_rate_per_s must be positive and finite",
            ));
        }
        if !(self.headroom.is_finite() && self.headroom >= 1.0) {
            return Err(ClusterError::InvalidAutoscale(
                "predictive headroom must be at least 1",
            ));
        }
        // Build (and drop) a forecaster + band once to surface spec
        // and band-parameter errors at config time.
        let forecaster = self.spec.build()?;
        BandedForecaster::new(
            forecaster,
            self.horizon_slices,
            self.band_quantile,
            self.residual_window,
        )?;
        Ok(())
    }
}

/// How the autoscaler decides to grow the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ScalingPolicy {
    /// Water marks on the fleetwide probe signal only — capacity is
    /// bought after congestion is measured.
    #[default]
    Reactive,
    /// Forecast-driven scale-ups (reactive high-water kept as a
    /// backstop), probe-gated scale-downs.
    Predictive(PredictiveConfig),
}

/// Configuration of the autoscaler, enabled per replay via
/// [`crate::ClusterDriver::autoscale`].
///
/// # Examples
///
/// ```
/// use litmus_cluster::{AutoscalerConfig, MachineConfig};
///
/// let config = AutoscalerConfig::new(MachineConfig::new(8))
///     .high_water(2.5)
///     .low_water(1.2)
///     .machine_bounds(2, 16)
///     .cooldown_ms(400);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct AutoscalerConfig {
    /// Fleetwide mean forward-adjusted slowdown prediction above which
    /// a machine is added.
    pub high_water: f64,
    /// Fleetwide mean forward-adjusted slowdown prediction below which
    /// an idle machine starts draining.
    pub low_water: f64,
    /// Fewest serving (non-draining) machines the fleet may shrink to.
    pub min_machines: usize,
    /// Most serving (non-draining) machines the fleet may grow to.
    pub max_machines: usize,
    /// Quiet period between scale decisions, ms — scale-ups need the
    /// new machine's probes to land before the signal is trusted again.
    pub cooldown_ms: u64,
    /// How long an ordered machine takes to come into service, ms
    /// (0 = instant, the historical behavior). With a non-zero lead a
    /// scale-up decision *orders* capacity that joins the fleet only
    /// `boot_lead_ms` later — the physical delay that makes reacting
    /// to congestion late and forecasting ahead valuable: a reactive
    /// scaler eats the lead *after* the burst lands, a predictive one
    /// orders ahead so capacity arrives with the burst.
    pub boot_lead_ms: u64,
    /// How scale-ups are decided ([`ScalingPolicy::Reactive`] by
    /// default).
    pub policy: ScalingPolicy,
    /// Template for scaled-up machines; each new machine gets a
    /// distinct deterministic seed derived from the template's.
    pub template: MachineConfig,
}

impl AutoscalerConfig {
    /// A conservative reactive default around `template`: grow above a
    /// mean predicted slowdown of 2.5×, drain below 1.15×, 1–64
    /// machines, 500 ms between decisions.
    pub fn new(template: MachineConfig) -> Self {
        AutoscalerConfig {
            high_water: 2.5,
            low_water: 1.15,
            min_machines: 1,
            max_machines: 64,
            cooldown_ms: 500,
            boot_lead_ms: 0,
            policy: ScalingPolicy::Reactive,
            template,
        }
    }

    /// Sets the scale-up mark.
    pub fn high_water(mut self, mark: f64) -> Self {
        self.high_water = mark;
        self
    }

    /// Sets the scale-down mark.
    pub fn low_water(mut self, mark: f64) -> Self {
        self.low_water = mark;
        self
    }

    /// Sets the fleet-size bounds.
    pub fn machine_bounds(mut self, min: usize, max: usize) -> Self {
        self.min_machines = min;
        self.max_machines = max;
        self
    }

    /// Sets the decision cooldown, ms.
    pub fn cooldown_ms(mut self, ms: u64) -> Self {
        self.cooldown_ms = ms;
        self
    }

    /// Sets the boot lead — the delay between ordering a machine and
    /// it entering service, ms.
    pub fn boot_lead_ms(mut self, ms: u64) -> Self {
        self.boot_lead_ms = ms;
        self
    }

    /// Switches scale-ups to forecast-driven planning.
    pub fn predictive(mut self, config: PredictiveConfig) -> Self {
        self.policy = ScalingPolicy::Predictive(config);
        self
    }

    /// Checks the marks, bounds and (if predictive) forecast knobs are
    /// coherent.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidAutoscale`] when the low-water mark is
    /// not below the high-water mark, a mark is not finite and ≥ 1,
    /// the machine bounds are empty/inverted, or the predictive knobs
    /// are out of range.
    pub fn validate(&self) -> Result<()> {
        if !(self.high_water.is_finite() && self.low_water.is_finite()) {
            return Err(ClusterError::InvalidAutoscale("water marks must be finite"));
        }
        if self.low_water < 1.0 || self.high_water <= self.low_water {
            return Err(ClusterError::InvalidAutoscale(
                "marks must satisfy 1 <= low_water < high_water",
            ));
        }
        if self.min_machines == 0 || self.max_machines < self.min_machines {
            return Err(ClusterError::InvalidAutoscale(
                "machine bounds must satisfy 1 <= min <= max",
            ));
        }
        if let ScalingPolicy::Predictive(predictive) = &self.policy {
            predictive.validate()?;
        }
        Ok(())
    }
}

/// What a [`ScaleEvent`] recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleKind {
    /// A machine was booted into the fleet.
    Up,
    /// An idle machine began draining (no new work, fillers wind down).
    DrainStart,
    /// A drained machine left the fleet; its billing shard was folded
    /// into the cluster's retained aggregator.
    Retire,
}

/// Why a scale decision fired — so studies can attribute each boot to
/// the water mark or to the forecast without decoding the signal
/// field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleReason {
    /// The fleetwide probe signal crossed the high-water mark.
    HighWater,
    /// The fleetwide probe signal fell under the low-water mark.
    LowWater,
    /// The forecast's upper band exceeded the serving fleet's
    /// capacity.
    Forecast,
    /// A draining machine emptied and retired (no threshold involved).
    Drained,
}

impl std::fmt::Display for ScaleReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScaleReason::HighWater => "high-water",
            ScaleReason::LowWater => "low-water",
            ScaleReason::Forecast => "forecast",
            ScaleReason::Drained => "drained",
        })
    }
}

/// One autoscaling decision, as surfaced in
/// [`crate::ClusterReport::scale_events`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEvent {
    /// Cluster time of the slice boundary the decision was taken at.
    pub at_ms: u64,
    /// The machine added, drained or retired.
    pub machine: MachineId,
    /// What happened.
    pub kind: ScaleKind,
    /// Why the decision fired.
    pub reason: ScaleReason,
    /// The fleetwide mean forward-adjusted slowdown prediction at the
    /// decision (for every reason, retirements included — the *why*
    /// lives in [`ScaleEvent::reason`], not in a sentinel value here).
    pub signal: f64,
}

/// One slice's forecast record, as surfaced in
/// [`crate::ClusterReport::forecast_samples`] — what the predictive
/// scaler saw, predicted and asked for, so studies can attribute
/// wins and losses to the forecast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastSample {
    /// The slice boundary the observation closed at.
    pub at_ms: u64,
    /// Arrivals admitted during the slice that just ended.
    pub observed: f64,
    /// The banded forecast for
    /// [`PredictiveConfig::horizon_slices`] ahead, frozen now.
    pub forecast: HorizonForecast,
    /// Serving machines the forecast asks for (0 while the forecaster
    /// is still warming up).
    pub required: usize,
    /// Serving (non-draining) machines at the decision.
    pub serving: usize,
}

/// Birth-to-retirement record of one machine, as surfaced in
/// [`crate::ClusterReport::machine_lifetimes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineLifetime {
    /// The machine.
    pub machine: MachineId,
    /// Cluster time the machine joined the fleet, ms.
    pub born_ms: u64,
    /// Cluster time the machine was retired, ms (`None` while alive).
    pub retired_ms: Option<u64>,
    /// Invocations completed and billed on the machine over its life.
    pub completed: usize,
    /// Invocations dispatched to the machine (net of re-dispatches
    /// away) over its life.
    pub dispatched: usize,
}

impl MachineLifetime {
    /// How long the machine served, ms (up to `now_ms` while alive).
    pub fn lifetime_ms(&self, now_ms: u64) -> u64 {
        self.retired_ms
            .unwrap_or(now_ms)
            .saturating_sub(self.born_ms)
    }
}

/// Fleetwide mean forward-adjusted slowdown over the serving
/// machines (0 when nothing serves).
fn fleet_signal(snaps: &[MachineSnapshot]) -> f64 {
    let serving: Vec<f64> = snaps
        .iter()
        .filter(|s| !s.draining)
        .map(MachineSnapshot::congestion_score)
        .collect();
    if serving.is_empty() {
        return 0.0;
    }
    serving.iter().sum::<f64>() / serving.len() as f64
}

/// Retires every drained machine in `cluster` and records one
/// [`ScaleKind::Retire`] event per machine. Retirements trigger on
/// emptiness ([`ScaleReason::Drained`]); the recorded signal is the
/// fleet signal at the boundary, like every other event. The signal
/// is only computed when something actually retired (the common slice
/// retires nothing, and retiring only removes *draining* machines, so
/// the serving set the signal averages is identical before and
/// after).
pub(crate) fn push_retirements(cluster: &mut Cluster, now_ms: u64, events: &mut Vec<ScaleEvent>) {
    let ids = cluster.retire_drained(now_ms);
    if ids.is_empty() {
        return;
    }
    let signal = fleet_signal(&cluster.snapshots());
    for id in ids {
        events.push(ScaleEvent {
            at_ms: now_ms,
            machine: id,
            kind: ScaleKind::Retire,
            reason: ScaleReason::Drained,
            signal,
        });
    }
}

/// The live forecasting state of a predictive replay: the banded
/// forecaster plus the knobs to turn its output into machines.
struct Predictor {
    banded: BandedForecaster<Box<dyn Forecaster + Send>>,
    config: PredictiveConfig,
    slice_ms: u64,
}

impl std::fmt::Debug for Predictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Predictor")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Predictor {
    fn new(config: PredictiveConfig, slice_ms: u64) -> Result<Self> {
        let banded = BandedForecaster::new(
            config.spec.build()?,
            config.horizon_slices,
            config.band_quantile,
            config.residual_window,
        )?;
        Ok(Predictor {
            banded,
            config,
            slice_ms,
        })
    }

    /// Machines needed to absorb the forecast's upper band with
    /// headroom; 0 while warming up, so the reactive backstop governs.
    fn required_machines(&self, forecast: &HorizonForecast) -> usize {
        if self.banded.inner().len() < self.config.warmup_slices as u64 {
            return 0;
        }
        let per_slice = forecast.hi.max(0.0) * self.config.headroom;
        let per_s = per_slice * 1000.0 / self.slice_ms.max(1) as f64;
        (per_s / self.config.machine_rate_per_s).ceil() as usize
    }
}

/// Elastic capacity: grows the machine set on the probe signal
/// ([`ScalingPolicy::Reactive`]) or on the arrival-rate forecast with
/// the probe marks as backstop ([`ScalingPolicy::Predictive`]), and
/// drains/retires idle machines under the low-water mark. One instance
/// lives per replay; all state (cooldown clock, seed counter,
/// forecaster) is deterministic.
/// A machine ordered but still booting: it joins the fleet once the
/// configured lead has elapsed, carrying the reason and signal of the
/// decision that ordered it.
#[derive(Debug, Clone, Copy)]
struct PendingBoot {
    ready_at_ms: u64,
    reason: ScaleReason,
    signal: f64,
}

#[derive(Debug)]
pub(crate) struct Autoscaler {
    config: AutoscalerConfig,
    last_decision_ms: Option<u64>,
    spawned: u64,
    predictor: Option<Predictor>,
    /// Machines ordered and not yet in service, in order time.
    pending: Vec<PendingBoot>,
}

impl Autoscaler {
    pub(crate) fn new(config: AutoscalerConfig, slice_ms: u64) -> Result<Self> {
        let predictor = match &config.policy {
            ScalingPolicy::Reactive => None,
            ScalingPolicy::Predictive(predictive) => Some(Predictor::new(*predictive, slice_ms)?),
        };
        Ok(Autoscaler {
            config,
            last_decision_ms: None,
            spawned: 0,
            predictor,
            pending: Vec::new(),
        })
    }

    fn cooled_down(&self, now_ms: u64) -> bool {
        self.last_decision_ms
            .map(|last| now_ms.saturating_sub(last) >= self.config.cooldown_ms)
            .unwrap_or(true)
    }

    /// Boots a machine into service right now.
    fn spawn(
        &mut self,
        cluster: &mut Cluster,
        now_ms: u64,
        reason: ScaleReason,
        signal: f64,
        events: &mut Vec<ScaleEvent>,
    ) -> Result<()> {
        let mut template = self.config.template.clone();
        template.seed = template
            .seed
            .wrapping_add(0x5CA1E)
            .wrapping_add(self.spawned);
        self.spawned += 1;
        let id = cluster.spawn_machine(&template, now_ms)?;
        events.push(ScaleEvent {
            at_ms: now_ms,
            machine: id,
            kind: ScaleKind::Up,
            reason,
            signal,
        });
        Ok(())
    }

    /// Orders a machine: in service immediately with no boot lead, or
    /// queued to join once the lead elapses.
    fn order(
        &mut self,
        cluster: &mut Cluster,
        now_ms: u64,
        reason: ScaleReason,
        signal: f64,
        events: &mut Vec<ScaleEvent>,
    ) -> Result<()> {
        self.last_decision_ms = Some(now_ms);
        if self.config.boot_lead_ms == 0 {
            return self.spawn(cluster, now_ms, reason, signal, events);
        }
        self.pending.push(PendingBoot {
            ready_at_ms: now_ms + self.config.boot_lead_ms,
            reason,
            signal,
        });
        Ok(())
    }

    /// Brings ordered machines whose lead has elapsed into service.
    fn commission_due(
        &mut self,
        cluster: &mut Cluster,
        now_ms: u64,
        events: &mut Vec<ScaleEvent>,
    ) -> Result<()> {
        while let Some(boot) = self.pending.first().copied() {
            if boot.ready_at_ms > now_ms {
                break;
            }
            self.pending.remove(0);
            self.spawn(cluster, now_ms, boot.reason, boot.signal, events)?;
        }
        Ok(())
    }

    /// Ready times of machines ordered but still booting, in order
    /// time. The event-driven engine turns these into `BootReady`
    /// events so a commissioning boundary inside an otherwise-quiet
    /// stretch is never skipped past.
    pub(crate) fn pending_ready(&self) -> impl Iterator<Item = u64> + '_ {
        self.pending.iter().map(|boot| boot.ready_at_ms)
    }

    /// Whether this autoscaler runs the predictive policy (and thus
    /// samples a forecast at every decision round).
    pub(crate) fn is_predictive(&self) -> bool {
        self.predictor.is_some()
    }

    /// Runs one decision round at slice boundary `now_ms`: retires any
    /// machine that finished draining, feeds the forecaster the
    /// `admitted` arrival count of the slice that just ended
    /// (predictive policy only, recording a [`ForecastSample`]), then
    /// — when cooled down — boots or drains at most one machine.
    ///
    /// # Errors
    ///
    /// Propagates machine boot failures on scale-up.
    pub(crate) fn evaluate(
        &mut self,
        cluster: &mut Cluster,
        now_ms: u64,
        admitted: usize,
        events: &mut Vec<ScaleEvent>,
        samples: &mut Vec<ForecastSample>,
    ) -> Result<()> {
        // Retirements are free (the machine is already empty): no
        // cooldown gating. Ordered machines whose boot lead elapsed
        // enter service before this round's signal is read.
        push_retirements(cluster, now_ms, events);
        self.commission_due(cluster, now_ms, events)?;

        let snaps = cluster.snapshots();
        let serving: Vec<_> = snaps.iter().filter(|s| !s.draining).collect();
        if serving.is_empty() {
            return Ok(());
        }
        let signal = fleet_signal(&snaps);

        // The forecaster observes every slice, cooled down or not —
        // the series must not have decision-rate gaps.
        let required = match &mut self.predictor {
            Some(predictor) => {
                predictor.banded.observe(admitted as f64);
                let forecast = predictor.banded.forecast();
                let required = predictor.required_machines(&forecast);
                samples.push(ForecastSample {
                    at_ms: now_ms,
                    observed: admitted as f64,
                    forecast,
                    required,
                    serving: serving.len(),
                });
                Some(required)
            }
            None => None,
        };

        if !self.cooled_down(now_ms) {
            return Ok(());
        }

        // Both bounds count *committed* capacity — serving machines
        // plus ordered ones still booting (or the scaler re-orders
        // every round of the lead). A retiree mid-drain is winding
        // down and must neither block a scale-up at the cap (capacity
        // is needed exactly then) nor pad the scale-down floor.
        let committed = serving.len() + self.pending.len();
        let may_grow = committed < self.config.max_machines;
        if let Some(required) = required {
            // Forecast-led scale-up, ordered before congestion shows.
            // Unlike the water-mark path (one boot per cooldown, since
            // the signal must re-settle), the forecast states *how
            // many* machines the horizon needs — order the whole
            // deficit in one round.
            if required > committed && may_grow {
                let target = required.min(self.config.max_machines);
                for _ in committed..target {
                    self.order(cluster, now_ms, ScaleReason::Forecast, signal, events)?;
                }
                return Ok(());
            }
        }
        if signal > self.config.high_water && may_grow {
            // Reactive path — and the predictive policy's backstop for
            // forecast misses.
            self.order(cluster, now_ms, ScaleReason::HighWater, signal, events)?;
        } else if signal < self.config.low_water
            && serving.len() > self.config.min_machines
            && self.pending.is_empty()
        {
            // Scale-downs are probe-gated in every policy; the
            // predictive policy additionally refuses to drain capacity
            // its forecast still wants — and nothing drains while
            // ordered machines are still booting.
            if required.is_some_and(|required| required >= serving.len()) {
                return Ok(());
            }
            // Only an *idle* machine may leave; prefer the youngest
            // (highest id) so the stable core of the fleet persists.
            let candidate = serving
                .iter()
                .filter(|s| s.inflight == 0 && s.queued == 0)
                .max_by_key(|s| s.id)
                .map(|s| s.id);
            if let Some(id) = candidate {
                cluster.begin_drain(id);
                self.last_decision_ms = Some(now_ms);
                events.push(ScaleEvent {
                    at_ms: now_ms,
                    machine: id,
                    kind: ScaleKind::DrainStart,
                    reason: ScaleReason::LowWater,
                    signal,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_catches_bad_marks_and_bounds() {
        let template = MachineConfig::new(4);
        assert!(AutoscalerConfig::new(template.clone()).validate().is_ok());
        assert!(AutoscalerConfig::new(template.clone())
            .high_water(1.0)
            .low_water(2.0)
            .validate()
            .is_err());
        assert!(AutoscalerConfig::new(template.clone())
            .low_water(0.5)
            .validate()
            .is_err());
        assert!(AutoscalerConfig::new(template.clone())
            .machine_bounds(0, 4)
            .validate()
            .is_err());
        assert!(AutoscalerConfig::new(template)
            .machine_bounds(8, 2)
            .validate()
            .is_err());
    }

    #[test]
    fn predictive_validation_checks_rate_headroom_and_spec() {
        let spec = ForecasterSpec::Ewma { alpha: 0.4 };
        let template = MachineConfig::new(4);
        let with = |predictive: PredictiveConfig| {
            AutoscalerConfig::new(template.clone())
                .predictive(predictive)
                .validate()
        };
        assert!(with(PredictiveConfig::new(spec, 100.0)).is_ok());
        assert!(with(PredictiveConfig::new(spec, 0.0)).is_err());
        assert!(with(PredictiveConfig::new(spec, f64::NAN)).is_err());
        assert!(with(PredictiveConfig::new(spec, 100.0).headroom(0.5)).is_err());
        assert!(with(PredictiveConfig::new(spec, 100.0).band_quantile(0.2)).is_err());
        assert!(with(PredictiveConfig::new(spec, 100.0).residual_window(1)).is_err());
        // A broken forecaster spec surfaces at validation time too.
        assert!(with(PredictiveConfig::new(
            ForecasterSpec::Ewma { alpha: 7.0 },
            100.0
        ))
        .is_err());
    }

    #[test]
    fn required_machines_scales_with_the_band_and_respects_warmup() {
        let config = PredictiveConfig::new(ForecasterSpec::Ewma { alpha: 0.5 }, 50.0)
            .horizon_slices(2)
            .headroom(1.0)
            .warmup_slices(4);
        let mut predictor = Predictor::new(config, 100).unwrap();
        let forecast = |hi: f64| HorizonForecast {
            horizon: 2,
            point: hi,
            lo: hi,
            hi,
        };
        // Warming: nothing observed yet, the forecast may not act.
        assert_eq!(predictor.required_machines(&forecast(100.0)), 0);
        for _ in 0..4 {
            predictor.banded.observe(10.0);
        }
        // 10 arrivals / 100 ms slice = 100/s → 2 machines at 50/s.
        assert_eq!(predictor.required_machines(&forecast(10.0)), 2);
        assert_eq!(predictor.required_machines(&forecast(2.5)), 1);
        // Negative band edges clamp to zero demand.
        assert_eq!(predictor.required_machines(&forecast(-3.0)), 0);
    }

    #[test]
    fn scale_reasons_render_for_reports() {
        assert_eq!(ScaleReason::HighWater.to_string(), "high-water");
        assert_eq!(ScaleReason::Forecast.to_string(), "forecast");
        assert_eq!(ScaleReason::LowWater.to_string(), "low-water");
        assert_eq!(ScaleReason::Drained.to_string(), "drained");
    }

    #[test]
    fn lifetimes_measure_to_now_or_retirement() {
        let alive = MachineLifetime {
            machine: MachineId(0),
            born_ms: 100,
            retired_ms: None,
            completed: 0,
            dispatched: 0,
        };
        assert_eq!(alive.lifetime_ms(600), 500);
        let retired = MachineLifetime {
            retired_ms: Some(400),
            ..alive
        };
        assert_eq!(retired.lifetime_ms(600), 300);
    }
}
