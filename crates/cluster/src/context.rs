use std::collections::BTreeMap;

use litmus_core::{
    CommercialPricing, DiscountModel, IdealPricing, Invoice, LitmusPricing, LitmusReading,
    PricingTables,
};
use litmus_platform::InvocationTrace;
use litmus_sim::{ExecutionReport, MachineSpec, Placement, PmuCounters, Simulator};
use litmus_workloads::Benchmark;

use crate::error::ClusterError;
use crate::Result;

/// Everything a machine needs to turn a completed invocation into an
/// [`Invoice`], shared read-only across all machines while they step in
/// parallel: the fitted discount model, the calibration tables (probe
/// baselines) and a solo-oracle cache for the ideal-price comparison.
#[derive(Debug, Clone)]
pub struct ServingContext {
    pricing: LitmusPricing,
    model: DiscountModel,
    tables: PricingTables,
    scale: f64,
    solo: BTreeMap<&'static str, PmuCounters>,
}

impl ServingContext {
    /// Builds a context pricing with `model` against `tables`, scaling
    /// every served function's instruction counts by `scale`
    /// (experiments shrink bodies for speed; per-instruction behaviour
    /// is unchanged).
    pub fn new(tables: PricingTables, model: DiscountModel, scale: f64) -> Self {
        ServingContext {
            pricing: LitmusPricing::new(model.clone()),
            model,
            tables,
            scale,
            solo: BTreeMap::new(),
        }
    }

    /// The configured profile scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The calibration tables (probe baselines, congestion index).
    pub fn tables(&self) -> &PricingTables {
        &self.tables
    }

    /// The fitted discount model.
    pub fn model(&self) -> &DiscountModel {
        &self.model
    }

    /// Populates the solo-oracle cache for every distinct function in
    /// `trace` by running each alone on an idle `spec` machine — the
    /// offline profiling pass a provider would do once per deployment.
    ///
    /// Streaming replays don't pre-scan a materialized trace; they call
    /// [`ServingContext::warm_function`] lazily instead. Both paths
    /// produce identical oracles: each solo run happens on its own
    /// fresh simulator, so warming order cannot matter.
    ///
    /// # Errors
    ///
    /// Propagates solo-run failures.
    pub fn warm(&mut self, spec: &MachineSpec, trace: &InvocationTrace) -> Result<()> {
        for event in trace.events() {
            self.warm_function(spec, &event.function)?;
        }
        Ok(())
    }

    /// Whether `function`'s solo oracle is already cached.
    pub fn is_warmed(&self, function: &Benchmark) -> bool {
        self.solo.contains_key(function.name())
    }

    /// Runs `function` alone on an idle `spec` machine and caches its
    /// solo counters (no-op when already cached).
    ///
    /// # Errors
    ///
    /// Propagates solo-run failures.
    pub fn warm_function(&mut self, spec: &MachineSpec, function: &Benchmark) -> Result<()> {
        let name = function.name();
        if self.solo.contains_key(name) {
            return Ok(());
        }
        let mut sim = Simulator::new(spec.clone());
        let profile = function
            .profile()
            .scaled(self.scale)
            .map_err(litmus_core::CoreError::from)?;
        let id = sim
            .launch(profile, Placement::pinned(0))
            .map_err(litmus_core::CoreError::from)?;
        let counters = sim
            .run_to_completion(id)
            .map_err(litmus_core::CoreError::from)?
            .counters;
        self.solo.insert(name, counters);
        Ok(())
    }

    /// Number of functions with a warmed solo oracle.
    pub fn warmed_functions(&self) -> usize {
        self.solo.len()
    }

    /// Prices one completed invocation and returns the invoice plus the
    /// machine-congestion signal its startup probe produced (the
    /// presumed slowdown of a typical function, ≥ 1 — what
    /// [`crate::LitmusAware`] placement minimises).
    ///
    /// # Errors
    ///
    /// * [`ClusterError::UnknownFunction`] when the cache was not
    ///   warmed with this function;
    /// * propagated probe/pricing failures.
    pub fn price(&self, function: &Benchmark, report: &ExecutionReport) -> Result<(Invoice, f64)> {
        let solo = self
            .solo
            .get(function.name())
            .ok_or(ClusterError::UnknownFunction(function.name()))?;
        let baseline = self.tables.baseline(function.language())?;
        let startup = report
            .startup
            .as_ref()
            .ok_or(litmus_core::CoreError::NoStartup)?;
        let reading = LitmusReading::from_startup(baseline, startup)?;
        let estimate = self.model.estimate(&reading)?;
        let counters = report.counters;
        let invoice = Invoice {
            function: function.name().to_owned(),
            counters,
            commercial: CommercialPricing::new().price(&counters),
            litmus: self.pricing.price(&reading, &counters)?,
            ideal: IdealPricing::new().price(&counters, solo),
        };
        Ok((invoice, estimate.total_slowdown))
    }
}
