use std::collections::BTreeMap;
use std::sync::Arc;

use litmus_core::{DiscountModel, PricingTables};
use litmus_observe::{
    Alert, CompletionSample, OnlineSloEngine, SloAlert, SloKind, SloSpec, SloTransition,
};
use litmus_platform::{ChunkedSource, InvocationTrace, TraceEvent, TraceSource};
use litmus_sim::MachineSpec;
use litmus_telemetry::{StageProfile, Telemetry, TelemetryConfig, Timeline, TraceId, TraceSampler};
use litmus_workloads::Language;

use crate::billing::BillingAggregator;
use crate::context::ServingContext;
use crate::error::ClusterError;
use crate::events::{EventQueue, ReplayEvent};
use crate::machine::{CompletionRecord, Machine, MachineConfig, MachineId};
use crate::policy::{MachineSnapshot, PlacementPolicy};
use crate::pool::{panic_message, SteppingMode, WorkerPool};
use crate::scale::{
    Autoscaler, AutoscalerConfig, ForecastSample, MachineLifetime, ScaleEvent, ScaleKind,
    ScalingPolicy,
};
use crate::steal::{steal_pass, StealEvent, StealingConfig};
use crate::Result;

/// Configuration of a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Hardware model shared by every machine.
    pub spec: MachineSpec,
    /// Per-machine serving configuration (pool size, background load).
    pub machines: Vec<MachineConfig>,
    /// Scheduling time-slice: arrivals are dispatched and machines
    /// stepped in windows of this many ms.
    pub slice_ms: u64,
    /// Worker threads stepping machines in parallel (1 = sequential).
    pub threads: usize,
    /// How the stepping threads are managed (persistent pool vs
    /// per-slice scoped threads).
    pub stepping: SteppingMode,
    /// Instruction-count scale applied to served functions.
    pub serving_scale: f64,
    /// Extra time after the last arrival to let stragglers finish, ms.
    pub drain_ms: u64,
}

impl ClusterConfig {
    /// A homogeneous cluster: `count` machines, each serving on
    /// `cores` cores of `spec`, no background load, threads matching
    /// the host's parallelism.
    ///
    /// Two environment variables override the defaults so CI can run
    /// the same suite under different execution shapes without code
    /// changes (replays are bit-identical across both, so this is a
    /// determinism check, not a behaviour switch):
    ///
    /// * `LITMUS_POOL_THREADS` — stepping thread count (a positive
    ///   integer; anything else falls back to host parallelism);
    /// * `LITMUS_STEPPING` — `pooled`, `scoped`, or
    ///   `event`/`event-driven` (anything else falls back to the
    ///   default mode).
    ///
    /// Explicit [`ClusterConfig::threads`] / [`ClusterConfig::stepping`]
    /// builder calls still win — the variables only seed the defaults.
    pub fn homogeneous(spec: MachineSpec, count: usize, cores: usize) -> Self {
        let threads = std::env::var("LITMUS_POOL_THREADS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let stepping = std::env::var("LITMUS_STEPPING")
            .ok()
            .and_then(|raw| match raw.trim() {
                "pooled" => Some(SteppingMode::Pooled),
                "scoped" => Some(SteppingMode::Scoped),
                "event" | "event-driven" => Some(SteppingMode::EventDriven),
                _ => None,
            })
            .unwrap_or_default();
        ClusterConfig {
            spec,
            machines: (0..count)
                .map(|i| MachineConfig::new(cores).seed(0xC1A0 + i as u64))
                .collect(),
            slice_ms: 20,
            threads,
            stepping,
            serving_scale: 1.0,
            drain_ms: 60_000,
        }
    }

    /// Replaces the machine list (heterogeneous background loads).
    pub fn machines(mut self, machines: Vec<MachineConfig>) -> Self {
        self.machines = machines;
        self
    }

    /// Sets the scheduling slice, ms (minimum 1).
    pub fn slice_ms(mut self, ms: u64) -> Self {
        self.slice_ms = ms.max(1);
        self
    }

    /// Sets the stepping thread count (minimum 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the stepping mode ([`SteppingMode::Pooled`] by default).
    pub fn stepping(mut self, mode: SteppingMode) -> Self {
        self.stepping = mode;
        self
    }

    /// Sets the served-function profile scale.
    pub fn serving_scale(mut self, scale: f64) -> Self {
        self.serving_scale = scale;
        self
    }

    /// Sets the drain window, ms.
    pub fn drain_ms(mut self, ms: u64) -> Self {
        self.drain_ms = ms;
        self
    }
}

/// Per-machine serving counters, snapshotted at replay start so a
/// report covers one replay even on a reused cluster.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    completed: usize,
    dispatched: usize,
    launched: usize,
    latency_sum_ms: f64,
    queue_wait_sum_ms: f64,
}

impl Counters {
    fn of(machine: &Machine) -> Self {
        Counters {
            completed: machine.completed(),
            dispatched: machine.dispatched(),
            launched: machine.launched(),
            latency_sum_ms: machine.latency_sum_ms(),
            queue_wait_sum_ms: machine.queue_wait_sum_ms(),
        }
    }
}

/// A machine that left the fleet: its lifetime record plus the final
/// counters the replay report needs.
#[derive(Debug, Clone)]
pub(crate) struct Retired {
    machine: MachineId,
    born_ms: u64,
    retired_ms: u64,
    counters: Counters,
}

impl Retired {
    /// The machine's lifetime record, derived from the single source
    /// of truth (the final counters).
    fn lifetime(&self) -> MachineLifetime {
        MachineLifetime {
            machine: self.machine,
            born_ms: self.born_ms,
            retired_ms: Some(self.retired_ms),
            completed: self.counters.completed,
            dispatched: self.counters.dispatched,
        }
    }
}

/// A cluster of independently-simulated serving machines sharing one
/// calibration (tables + discount model) — the provider-side fleet the
/// paper's §5.1 scheduling observation applies to. The machine set is
/// elastic: an [`crate::AutoscalerConfig`] on the driver grows it under
/// load and drains/retires idle machines, with retired machines'
/// billing retained so the accounting period stays conserved.
#[derive(Debug)]
pub struct Cluster {
    machines: Vec<Machine>,
    ctx: Arc<ServingContext>,
    spec: MachineSpec,
    slice_ms: u64,
    threads: usize,
    stepping: SteppingMode,
    drain_ms: u64,
    pool: Option<WorkerPool>,
    probe_language: Language,
    next_id: u32,
    retired: Vec<Retired>,
    retired_billing: BillingAggregator,
}

impl Cluster {
    /// Boots every machine (background fillers, warm-up, one initial
    /// Litmus probe each) and prepares the shared serving context.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::NoMachines`] for an empty machine list;
    /// * propagated boot failures.
    pub fn build(
        config: ClusterConfig,
        tables: PricingTables,
        model: DiscountModel,
    ) -> Result<Self> {
        if config.machines.is_empty() {
            return Err(ClusterError::NoMachines);
        }
        let probe_language = tables
            .baselines()
            .first()
            .ok_or(litmus_core::CoreError::DegenerateMeasurement(
                "tables contain no startup baselines",
            ))?
            .language;
        let ctx = ServingContext::new(tables, model, config.serving_scale);
        let machines = config
            .machines
            .iter()
            .enumerate()
            .map(|(i, machine_config)| {
                Machine::boot(
                    MachineId(i as u32),
                    0,
                    config.spec.clone(),
                    machine_config,
                    probe_language,
                    &ctx,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Cluster {
            next_id: machines.len() as u32,
            machines,
            ctx: Arc::new(ctx),
            spec: config.spec,
            slice_ms: config.slice_ms,
            threads: config.threads,
            stepping: config.stepping,
            drain_ms: config.drain_ms,
            pool: None,
            probe_language,
            retired: Vec::new(),
            retired_billing: BillingAggregator::new(),
        })
    }

    /// Number of live machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the cluster has no live machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Total machines ever booted (live + retired); also the exclusive
    /// upper bound of [`MachineId`] values.
    pub fn machines_ever(&self) -> usize {
        self.next_id as usize
    }

    /// Machines retired so far over the cluster's lifetime.
    pub fn retired_count(&self) -> usize {
        self.retired.len()
    }

    /// Scheduler-visible state of every live machine.
    pub fn snapshots(&self) -> Vec<MachineSnapshot> {
        self.machines.iter().map(Machine::snapshot).collect()
    }

    /// One live machine by position, for inspection.
    pub fn machine(&self, idx: usize) -> Option<&Machine> {
        self.machines.get(idx)
    }

    /// Invocations executing or queued across the cluster.
    pub fn outstanding(&self) -> usize {
        self.machines.iter().map(Machine::outstanding).sum()
    }

    /// Cluster-lifetime billing: every live machine's shard folded on
    /// top of the shards retained from retired machines.
    pub fn billing(&self) -> BillingAggregator {
        let mut billing = self.retired_billing.clone();
        for machine in &self.machines {
            billing.absorb(machine.shard());
        }
        billing
    }

    /// Boots one more machine into the fleet at cluster time `born_ms`.
    pub(crate) fn spawn_machine(
        &mut self,
        config: &MachineConfig,
        born_ms: u64,
    ) -> Result<MachineId> {
        let id = MachineId(self.next_id);
        let machine = Machine::boot(
            id,
            born_ms,
            self.spec.clone(),
            config,
            self.probe_language,
            &self.ctx,
        )?;
        self.next_id += 1;
        self.machines.push(machine);
        Ok(id)
    }

    /// Starts draining the machine with `id` (no-op for unknown ids).
    pub(crate) fn begin_drain(&mut self, id: MachineId) {
        if let Some(machine) = self.machines.iter_mut().find(|m| m.id() == id) {
            machine.begin_drain();
        }
    }

    /// Retires every draining machine whose serving work has hit zero,
    /// folding each shard into the retained billing, and returns the
    /// retired ids in machine order.
    pub(crate) fn retire_drained(&mut self, now_ms: u64) -> Vec<MachineId> {
        let mut ids = Vec::new();
        let mut idx = 0;
        while idx < self.machines.len() {
            if self.machines[idx].is_draining() && self.machines[idx].outstanding() == 0 {
                let machine = self.machines.remove(idx);
                self.retired_billing.absorb(machine.shard());
                ids.push(machine.id());
                self.retired.push(Retired {
                    machine: machine.id(),
                    born_ms: machine.born_ms(),
                    retired_ms: now_ms,
                    counters: Counters::of(&machine),
                });
            } else {
                idx += 1;
            }
        }
        ids
    }

    /// Moves up to `count` queued invocations from machine position
    /// `from` to position `to`, returning how many moved.
    pub(crate) fn transfer_queued(&mut self, from: usize, to: usize, count: usize) -> usize {
        if from == to || count == 0 {
            return 0;
        }
        let shed = self.machines[from].shed_queued(count);
        let moved = shed.len();
        self.machines[to].accept_stolen(shed);
        moved
    }

    /// Steps every live machine to cluster time `target_ms`, in
    /// parallel when the cluster was configured with more than one
    /// thread. Machines are fully independent state machines, so
    /// pooled, scoped and sequential stepping produce bit-identical
    /// results.
    fn step_all(&mut self, target_ms: u64, profile: &mut StageProfile) -> Result<()> {
        let threads = self.threads.min(self.machines.len()).max(1);
        if threads == 1 {
            let ctx = Arc::clone(&self.ctx);
            for machine in &mut self.machines {
                machine.step_to(target_ms, &ctx)?;
            }
            return Ok(());
        }
        match self.stepping {
            SteppingMode::Scoped => self.step_all_scoped(target_ms, threads),
            SteppingMode::Pooled | SteppingMode::EventDriven => {
                // Size the pool by the configured thread count, not the
                // current machine count: an autoscaled fleet may grow
                // past its initial size, and step_all already caps the
                // shards it hands out by the live machine count.
                let workers = self.threads;
                let pool = self.pool.get_or_insert_with(|| WorkerPool::spawn(workers));
                pool.step_all(&mut self.machines, target_ms, &self.ctx, profile)
            }
        }
    }

    /// The event-driven engine's stepping entry point: when no live
    /// machine has real quantum work before `target_ms` (no active
    /// instances, no launch due), every machine fast-forwards in O(1)
    /// sequentially — no shard trip to the worker pool, no barrier.
    /// Otherwise this is exactly [`Cluster::step_all`], so results are
    /// bit-identical either way.
    fn step_all_event(&mut self, target_ms: u64, profile: &mut StageProfile) -> Result<()> {
        if self
            .machines
            .iter()
            .any(|machine| machine.needs_quanta_before(target_ms))
        {
            // Real quantum work somewhere: fan the machines out across
            // the worker pool (profiled as its own event-engine stage).
            let started = profile.start();
            let result = self.step_all(target_ms, profile);
            profile.stop("fan-out", started);
            return result;
        }
        let ctx = Arc::clone(&self.ctx);
        for machine in &mut self.machines {
            machine.step_to(target_ms, &ctx)?;
        }
        Ok(())
    }

    /// Full simulator quanta actually stepped across the *live* fleet
    /// (retired machines take their counts with them) — the real
    /// serving work performed, with idle fast-forwards excluded. Two
    /// replay engines that agree here did the same co-run evaluations
    /// no matter how they sliced time.
    pub fn quanta_stepped(&self) -> u64 {
        self.machines.iter().map(Machine::quanta_stepped).sum()
    }

    /// The original per-slice scoped-thread stepping, kept so the
    /// `cluster_throughput` bench can measure the pool against it.
    fn step_all_scoped(&mut self, target_ms: u64, threads: usize) -> Result<()> {
        let ctx = &self.ctx;
        let chunk_len = self.machines.len().div_ceil(threads);
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .machines
                .chunks_mut(chunk_len)
                .map(|chunk| {
                    scope.spawn(move || {
                        for machine in chunk {
                            machine.step_to(target_ms, ctx)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|panic| {
                        Err(ClusterError::WorkerPanic(panic_message(&panic)))
                    })
                })
                .collect()
        });
        results.into_iter().collect()
    }
}

/// Result of replaying a trace through a [`Cluster`]: serving metrics,
/// per-tenant billing, and the elastic-capacity record (re-dispatches,
/// scale events, machine lifetimes).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Name of the placement policy that produced this report.
    pub policy: &'static str,
    /// Per-tenant billing, folded from every machine's shard (live and
    /// retired) — the cluster's whole accounting period.
    pub billing: BillingAggregator,
    /// Machine chosen for each trace event, in trace order —
    /// deterministic for a given trace, cluster config and policy.
    pub placements: Vec<MachineId>,
    /// Invocations dispatched to each machine this replay (net of
    /// re-dispatches away), indexed by [`MachineId`].
    pub dispatch_counts: Vec<usize>,
    /// Invocations completed and billed.
    pub completed: usize,
    /// Invocations still executing or queued when the drain window
    /// closed.
    pub unfinished: usize,
    /// Invocations the stealing pass re-dispatched (each counted once
    /// per move).
    pub redispatched: usize,
    /// Backing store of [`ClusterReport::steal_events`].
    steal_events: Vec<StealEvent>,
    /// Backing store of [`ClusterReport::scale_events`].
    scale_events: Vec<ScaleEvent>,
    /// Backing store of [`ClusterReport::forecast_samples`].
    forecast_samples: Vec<ForecastSample>,
    /// Backing store of [`ClusterReport::machine_lifetimes`].
    machine_lifetimes: Vec<MachineLifetime>,
    /// Backing store of [`ClusterReport::slo_alerts`].
    slo_alerts: Vec<Alert>,
    /// The replay's telemetry (registry + timeline + flight recorder);
    /// the typed vectors above are also mirrored onto its timeline.
    telemetry: Telemetry,
    /// Backing store of [`ClusterReport::streamed_jsonl`].
    streamed_jsonl: Option<String>,
    /// Most machines simultaneously alive during the replay.
    pub peak_machines: usize,
    /// Mean arrival→completion latency of completed invocations, ms.
    pub mean_latency_ms: f64,
    /// Mean arrival→launch wait of launched invocations, ms — the
    /// queueing delay stealing shrinks.
    pub mean_queue_wait_ms: f64,
    /// Mean (over dispatches) of the chosen machine's predicted
    /// slowdown at dispatch time — the placement-quality signal
    /// Litmus-aware routing minimises.
    pub mean_predicted_slowdown: f64,
    /// Backing store of [`ClusterReport::predicted_slowdowns`].
    predicted_slowdowns: Vec<f64>,
    /// Simulated time the replay covered, ms.
    pub sim_ms: u64,
}

impl ClusterReport {
    /// Every re-dispatch decision taken by the stealing pass, in
    /// occurrence order. All `at_ms` timestamps in the report are
    /// sim-time milliseconds on the cluster clock, whose epoch (0) is
    /// cluster boot — which coincides with replay start on a freshly
    /// built cluster. Wall-clock time never appears.
    pub fn steal_events(&self) -> &[StealEvent] {
        &self.steal_events
    }

    /// Every autoscaling decision, in occurrence order. Timestamps are
    /// sim-time ms (see [`ClusterReport::steal_events`] for the epoch).
    pub fn scale_events(&self) -> &[ScaleEvent] {
        &self.scale_events
    }

    /// One record per scheduling slice when the autoscaler ran with
    /// [`crate::ScalingPolicy::Predictive`]: what the forecaster
    /// observed, predicted and asked for — empty for reactive or
    /// non-autoscaled replays. Studies attribute scaling wins and
    /// losses to the forecast through these. Timestamps are sim-time
    /// ms (see [`ClusterReport::steal_events`] for the epoch).
    pub fn forecast_samples(&self) -> &[ForecastSample] {
        &self.forecast_samples
    }

    /// Birth/retirement record of every machine that served during the
    /// replay. `born_ms`/`retired_ms` are sim-time ms (see
    /// [`ClusterReport::steal_events`] for the epoch).
    pub fn machine_lifetimes(&self) -> &[MachineLifetime] {
        &self.machine_lifetimes
    }

    /// The chosen machine's predicted slowdown at dispatch time, one
    /// entry per trace event in trace order (parallel to
    /// [`ClusterReport::placements`]) — the per-invocation SLO signal
    /// autoscale studies cut tail quantiles from.
    pub fn predicted_slowdowns(&self) -> &[f64] {
        &self.predicted_slowdowns
    }

    /// The replay's full telemetry: metric registry, event timeline and
    /// flight recorder (plus the wall-clock stage profile when
    /// profiling was enabled on the driver).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The replay's event timeline: every scale/steal/forecast decision
    /// and machine lifetime as sim-time-keyed structured events, in the
    /// deterministic order the driver observed them.
    pub fn timeline(&self) -> &Timeline {
        self.telemetry.timeline()
    }

    /// Every SLO alert the replay's online engine fired, in
    /// `(fired_ms, spec, rule)` order — event-for-event equal to what a
    /// post-hoc `SloEngine::evaluate` of [`ClusterReport::timeline`]
    /// reports (empty unless the driver declared SLOs with
    /// [`ClusterDriver::slos`]). Timestamps are sim-time ms (see
    /// [`ClusterReport::steal_events`] for the epoch).
    pub fn slo_alerts(&self) -> &[Alert] {
        &self.slo_alerts
    }

    /// The deterministic JSONL export of the replay's telemetry —
    /// byte-identical across worker-pool thread counts, stepping modes,
    /// hosts, and streaming vs materialized replay.
    pub fn timeline_jsonl(&self) -> String {
        self.telemetry.to_jsonl()
    }

    /// The streamed JSONL export: `Some` only when the driver's
    /// telemetry config set a `timeline_retention` window, in which
    /// case timeline events were flushed through the sink as the replay
    /// ran (peak in-memory timeline stayed O(window), see
    /// [`ClusterReport::timeline_peak_retained`]) and this holds the
    /// finished export — byte-identical to the
    /// [`ClusterReport::timeline_jsonl`] a retention-free replay of the
    /// same trace produces. Note the in-memory [`ClusterReport::timeline`]
    /// is empty in that case: its events live here instead.
    pub fn streamed_jsonl(&self) -> Option<&str> {
        self.streamed_jsonl.as_deref()
    }

    /// High-water mark of timeline events simultaneously retained in
    /// memory during the replay — bounded by the configured retention
    /// window (+1 transiently) when streaming, the full event count
    /// otherwise.
    pub fn timeline_peak_retained(&self) -> usize {
        self.telemetry.timeline().peak_retained()
    }
    /// Completed invocations per simulated second.
    pub fn throughput_per_sim_s(&self) -> f64 {
        if self.sim_ms == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.sim_ms as f64 / 1000.0)
    }

    /// Total machine-on time across the replay, ms: every machine's
    /// lifetime clipped to the replay window — the capacity cost an
    /// autoscale study trades against the SLO tail. Divide by
    /// 3 600 000 for machine-hours.
    pub fn machine_ms(&self) -> u64 {
        self.machine_lifetimes
            .iter()
            .map(|lifetime| lifetime.lifetime_ms(self.sim_ms))
            .sum()
    }

    /// Quantile `q` in `[0, 1]` of the per-dispatch predicted
    /// slowdowns (nearest-rank on a sorted copy); 0 when nothing was
    /// dispatched. `predicted_slowdown_quantile(0.99)` is the p99
    /// slowdown the autoscale-study frontier plots. Each call sorts a
    /// copy — reading several quantiles of a large replay is cheaper
    /// through [`ClusterReport::predicted_slowdown_quantiles`].
    pub fn predicted_slowdown_quantile(&self, q: f64) -> f64 {
        self.predicted_slowdown_quantiles(&[q])[0]
    }

    /// Several slowdown quantiles from one sort of the per-dispatch
    /// samples (a real trace day is one sample per invocation, so the
    /// sort dominates): `qs` values clamped to `[0, 1]`, answers in
    /// `qs` order, all 0 when nothing was dispatched.
    pub fn predicted_slowdown_quantiles(&self, qs: &[f64]) -> Vec<f64> {
        if self.predicted_slowdowns.is_empty() {
            return vec![0.0; qs.len()];
        }
        let mut sorted = self.predicted_slowdowns.clone();
        sorted.sort_by(f64::total_cmp);
        qs.iter()
            .map(|q| {
                let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
                sorted[rank]
            })
            .collect()
    }
}

/// Replays an [`InvocationTrace`] against a [`Cluster`] under a
/// [`PlacementPolicy`]: per time-slice, route every arrival in the
/// slice (policy sees live snapshots, including the Litmus congestion
/// estimates), then let the optional autoscaler and stealing pass
/// rebalance capacity at the slice boundary, then step all machines
/// through the slice on the persistent worker pool while their shards
/// absorb the resulting invoices.
///
/// # Examples
///
/// ```no_run
/// use litmus_cluster::{
///     AutoscalerConfig, Cluster, ClusterConfig, ClusterDriver, LitmusAware,
///     MachineConfig, StealingConfig,
/// };
/// use litmus_core::{DiscountModel, TableBuilder};
/// use litmus_platform::InvocationTrace;
/// use litmus_sim::MachineSpec;
/// use litmus_workloads::suite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = MachineSpec::cascade_lake();
/// let tables = TableBuilder::new(spec.clone()).build()?;
/// let model = DiscountModel::fit(&tables)?;
/// let trace = InvocationTrace::poisson(suite::benchmarks(), 200.0, 10_000, 7)
///     .expect("non-empty pool");
/// let config = ClusterConfig::homogeneous(spec, 8, 8);
/// let mut cluster = Cluster::build(config, tables, model)?;
/// let report = ClusterDriver::new(LitmusAware::new())
///     .stealing(StealingConfig::default())
///     .autoscale(AutoscalerConfig::new(MachineConfig::new(8)))
///     .replay(&mut cluster, &trace)?;
/// println!(
///     "{} billed, {} re-dispatched, {} scale events",
///     report.completed,
///     report.redispatched,
///     report.scale_events().len()
/// );
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct ClusterDriver<P> {
    policy: P,
    stealing: Option<StealingConfig>,
    autoscale: Option<AutoscalerConfig>,
    telemetry: TelemetryConfig,
    slos: Vec<SloSpec>,
    active_alerts: Vec<Alert>,
}

impl<P: PlacementPolicy> ClusterDriver<P> {
    /// Creates a driver routing with `policy`, with stealing and
    /// autoscaling off and default telemetry (1024-event flight
    /// recorder, no wall-clock profiling).
    pub fn new(policy: P) -> Self {
        ClusterDriver {
            policy,
            stealing: None,
            autoscale: None,
            telemetry: TelemetryConfig::default(),
            slos: Vec::new(),
            active_alerts: Vec::new(),
        }
    }

    /// Enables the slice-boundary stealing pass.
    pub fn stealing(mut self, config: StealingConfig) -> Self {
        self.stealing = Some(config);
        self
    }

    /// Enables probe-driven autoscaling.
    pub fn autoscale(mut self, config: AutoscalerConfig) -> Self {
        self.autoscale = Some(config);
        self
    }

    /// Declares SLOs the replay evaluates *online*: an incremental
    /// [`OnlineSloEngine`] is fed every sampled completion as it drains
    /// and advanced at every slice boundary in both stepping modes, so
    /// fired/cleared transitions land on the timeline (as
    /// `slo.alert.fired` / `slo.alert.cleared` events stamped with the
    /// boundary they became decidable at) while the replay is still
    /// running — and, being sim-time facts, land byte-identically
    /// across engines and thread counts. The full alert history is on
    /// [`ClusterReport::slo_alerts`]; alerts still open when the replay
    /// ended stay readable on [`ClusterDriver::active_alerts`].
    ///
    /// Online evaluation sees exactly the completions a post-hoc
    /// [`litmus_observe::SloEngine::evaluate`] of the finished timeline
    /// sees (the sampled `trace.*` chains), so the two agree
    /// event-for-event.
    pub fn slos(mut self, specs: Vec<SloSpec>) -> Self {
        self.slos = specs;
        self
    }

    /// SLO alerts still firing when the last replay finished (empty
    /// before any replay, or when every alert cleared).
    pub fn active_alerts(&self) -> &[Alert] {
        &self.active_alerts
    }

    /// Replaces the telemetry configuration (flight-recorder depth,
    /// histogram resolution, profiling) used by subsequent replays.
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = config;
        self
    }

    /// Enables wall-clock profiling of the replay-loop stages
    /// (dispatch, scale, steal, step, and barrier under slice
    /// stepping; queue, bulk-account and fan-out under the event
    /// engine). Profiling is excluded from the deterministic telemetry
    /// export and from report equality, so it can stay on during
    /// determinism checks.
    pub fn profiling(mut self, enabled: bool) -> Self {
        self.telemetry.profiling = enabled;
        self
    }

    /// The policy's report name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Routes one arrival among the non-draining machines and returns
    /// `(machine position, predicted slowdown at dispatch)`.
    fn route(&mut self, cluster: &Cluster) -> (usize, MachineId, f64) {
        let snapshots = cluster.snapshots();
        // When machines are draining, offer the policy only the serving
        // ones, remembering each one's position. The common case (no
        // autoscaler, nothing draining) allocates nothing extra.
        let mut positions = Vec::new();
        let mut eligible = Vec::new();
        if snapshots.iter().any(|snap| snap.draining) {
            for (position, snap) in snapshots.iter().enumerate() {
                if !snap.draining {
                    positions.push(position);
                    eligible.push(*snap);
                }
            }
        }
        // `eligible` is empty when nothing is draining — and also in
        // the cannot-happen case of everything draining (the autoscaler
        // keeps at least min_machines serving); either way the policy
        // sees the full set rather than an empty slice.
        let pool: &[MachineSnapshot] = if eligible.is_empty() {
            &snapshots
        } else {
            &eligible
        };
        let chosen = self.policy.choose(pool);
        let snap = pool[chosen];
        let position = if eligible.is_empty() {
            chosen
        } else {
            positions[chosen]
        };
        (position, snap.id, snap.predicted_slowdown)
    }

    /// Replays a materialized `trace`; equivalent to
    /// [`ClusterDriver::replay_source`] on [`InvocationTrace::source`]
    /// (and bit-identical to it — same placements, billing and latency
    /// stats for the same trace, cluster config and policy).
    ///
    /// Billing shards live on the machines and accumulate for the
    /// lifetime of the cluster (an accounting period), so
    /// [`ClusterReport::billing`] of a second replay on the same
    /// cluster covers both replays — build a fresh [`Cluster`] per
    /// experiment when billing must be isolated. Every *serving*
    /// metric (`completed`, `dispatch_counts`, latency, placements,
    /// `sim_ms`) covers only the replay that returned it. One caveat
    /// on reuse: if a previous replay's drain window expired with work
    /// still queued, a stealing pass in this replay may re-dispatch
    /// those leftovers, skewing this replay's per-machine
    /// `dispatch_counts` (donors clamp at zero) — reuse a cluster that
    /// finished clean, or build a fresh one.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InvalidAutoscale`] for incoherent autoscaler
    ///   water marks or machine bounds;
    /// * propagated warm-up, boot, stepping and pricing failures.
    pub fn replay(
        &mut self,
        cluster: &mut Cluster,
        trace: &InvocationTrace,
    ) -> Result<ClusterReport> {
        self.replay_source(cluster, trace.source())
    }

    /// Replays a streaming [`TraceSource`]: per time-slice, the driver
    /// pulls the slice's chunk of events from the source, routes each
    /// one, then lets the autoscaler/stealing pass rebalance and steps
    /// the machines — the trace itself is never materialized; event
    /// buffering stays proportional to one slice's arrivals plus the
    /// work in flight. (The returned [`ClusterReport`] still carries
    /// one [`MachineId`] per event in
    /// [`ClusterReport::placements`], so the *report* grows with the
    /// trace; billing does not — shards aggregate in constant space.)
    /// Solo oracles are warmed lazily as functions first appear in the
    /// stream (warming order cannot affect results: each oracle runs
    /// on its own idle simulator).
    ///
    /// # Errors
    ///
    /// * [`ClusterError::InvalidAutoscale`] for incoherent autoscaler
    ///   water marks or machine bounds;
    /// * propagated warm-up, boot, stepping and pricing failures.
    pub fn replay_source<S: TraceSource>(
        &mut self,
        cluster: &mut Cluster,
        source: S,
    ) -> Result<ClusterReport> {
        if let Some(config) = &self.autoscale {
            config.validate()?;
        }
        let mut source = ChunkedSource::new(source);

        // Machines carry lifetime counters (they also back the billing
        // shards); snapshot them so this report's serving metrics
        // cover this replay only, even on a reused cluster.
        let base: BTreeMap<MachineId, Counters> = cluster
            .machines
            .iter()
            .map(|m| (m.id(), Counters::of(m)))
            .collect();
        let retired_base = cluster.retired.len();

        let slice_ms = cluster.slice_ms;
        let autoscaler = self
            .autoscale
            .clone()
            .map(|config| Autoscaler::new(config, slice_ms))
            .transpose()?;

        // Everything telemetry records is keyed to the sim clock and
        // recorded on this thread at slice boundaries, so the timeline
        // (and its JSONL export) is byte-identical across thread
        // counts, stepping modes (the event-driven engine included:
        // its bulk-skipped boundaries are accounted with the exact
        // bulk registry forms) and streaming vs materialized replay.
        // The meta line must therefore never mention threads, hosts or
        // the engine.
        let mut telemetry = Telemetry::new(self.telemetry);
        telemetry.set_meta("policy", self.policy.name());
        telemetry.set_meta("slice_ms", slice_ms.to_string());
        telemetry.set_meta(
            "stealing",
            if self.stealing.is_some() { "on" } else { "off" },
        );
        telemetry.set_meta(
            "autoscale",
            match &self.autoscale {
                None => "off",
                Some(config) => match config.policy {
                    ScalingPolicy::Reactive => "reactive",
                    ScalingPolicy::Predictive(_) => "predictive",
                },
            },
        );
        if !self.slos.is_empty() {
            telemetry.set_meta("slos", self.slos.len().to_string());
        }
        let replay_span = telemetry.open_span(0, "replay", vec![]);

        // Mirror the SLO configuration onto the timeline head so a
        // stream consumer (`litmus-obs tail`) can reconstruct the specs
        // and re-derive every alert without the driver's config.
        for (spec_idx, spec) in self.slos.iter().enumerate() {
            let (kind, threshold) = match spec.kind {
                SloKind::Slowdown { max } => ("slowdown", max),
                SloKind::QueueWait { max_ms } => ("queue-wait", max_ms as f64),
                SloKind::BillingRate { max_per_s } => ("billing-rate", max_per_s),
            };
            let mut fields = vec![
                ("spec", spec_idx.into()),
                ("slo", spec.name.clone().into()),
                ("kind", kind.into()),
                ("threshold", threshold.into()),
                ("objective", spec.objective.into()),
            ];
            if let Some(tenant) = spec.tenant {
                fields.push(("tenant", tenant.into()));
            }
            telemetry.event(0, "slo.spec", fields);
            for (rule_idx, rule) in spec.rules.iter().enumerate() {
                telemetry.event(
                    0,
                    "slo.rule",
                    vec![
                        ("spec", spec_idx.into()),
                        ("rule", rule_idx.into()),
                        ("severity", rule.severity.into()),
                        ("fast_ms", rule.fast_ms.into()),
                        ("slow_ms", rule.slow_ms.into()),
                        ("factor", rule.factor.into()),
                    ],
                );
            }
        }

        let sampler = self.telemetry.trace_sampler();
        if sampler.is_active() {
            // The sampler is a pure function of (seed, rate, trace id),
            // so this meta key — like everything else on the line — is
            // engine- and thread-count-independent.
            telemetry.set_meta("trace_sampling", format!("{}", sampler.rate()));
        }

        let mut state = ReplayState {
            spec: cluster.spec.clone(),
            slice_ms,
            autoscaler,
            placements: Vec::with_capacity(source.size_hint().0),
            predicted_slowdowns: Vec::with_capacity(source.size_hint().0),
            steal_events: Vec::new(),
            scale_events: Vec::new(),
            forecast_samples: Vec::new(),
            redispatched: 0,
            peak_machines: cluster.machines.len(),
            now_ms: 0,
            chunk: Vec::new(),
            telemetry,
            mirrored: (0, 0, 0),
            sampler,
            trace_records: Vec::new(),
            slo: (!self.slos.is_empty()).then(|| OnlineSloEngine::new(self.slos.clone(), slice_ms)),
            slo_fed: 0,
            service_prev: BTreeMap::new(),
            service_prev_ms: 0,
        };
        self.active_alerts.clear();

        match cluster.stepping {
            SteppingMode::EventDriven => self.run_event_driven(cluster, &mut source, &mut state)?,
            SteppingMode::Pooled | SteppingMode::Scoped => {
                self.run_slices(cluster, &mut source, &mut state)?
            }
        }
        self.drain(cluster, &mut state)?;

        // The replay horizon is now known: fold the at-horizon tail
        // into the final slice and close the alert history — exactly
        // the clamp a post-hoc evaluation of the finished timeline
        // applies, so the two alert lists agree event-for-event.
        let mut slo_alerts = Vec::new();
        if let Some(mut engine) = state.slo.take() {
            for record in &state.trace_records[state.slo_fed..] {
                engine.record(&completion_sample(record));
            }
            state.slo_fed = state.trace_records.len();
            let transitions = engine.finish(state.now_ms);
            apply_slo_transitions(&mut state.telemetry, transitions);
            slo_alerts = engine.alerts();
            self.active_alerts = engine.active_alerts();
        }

        // Machines that emptied on the last slice still retire before
        // the report is cut.
        if state.autoscaler.is_some() {
            crate::scale::push_retirements(cluster, state.now_ms, &mut state.scale_events);
        }
        mirror_into_timeline(
            &mut state.telemetry,
            &mut state.mirrored,
            &state.scale_events,
            &state.forecast_samples,
            &state.steal_events,
        );
        emit_trace_spans(&mut state);
        if cluster.stepping == SteppingMode::EventDriven {
            // The slice barrier is not part of the event engine's
            // execution model; keep its wall-clock summary to stages
            // the engine actually has (queue, bulk-account, fan-out,
            // step, dispatch, scale, steal).
            state.telemetry.profile_mut().drop_stage("barrier");
        }
        state.telemetry.close_span(replay_span, state.now_ms);

        let ReplayState {
            placements,
            predicted_slowdowns,
            steal_events,
            scale_events,
            forecast_samples,
            redispatched,
            peak_machines,
            now_ms,
            mut telemetry,
            ..
        } = state;

        let replay_base = |id: MachineId| base.get(&id).copied().unwrap_or_default();
        let mut completed = 0;
        let mut launched = 0;
        let mut latency_sum = 0.0;
        let mut queue_wait_sum = 0.0;
        let mut dispatch_counts = vec![0usize; cluster.machines_ever()];
        let mut machine_lifetimes = Vec::new();

        let newly_retired = &cluster.retired[retired_base..];
        let live = cluster.machines.iter().map(|machine| {
            let counters = Counters::of(machine);
            (
                MachineLifetime {
                    machine: machine.id(),
                    born_ms: machine.born_ms(),
                    retired_ms: None,
                    completed: counters.completed,
                    dispatched: counters.dispatched,
                },
                counters,
            )
        });
        for (lifetime, counters) in newly_retired
            .iter()
            .map(|r| (r.lifetime(), r.counters))
            .chain(live)
        {
            let base = replay_base(lifetime.machine);
            completed += counters.completed - base.completed;
            launched += counters.launched - base.launched;
            latency_sum += counters.latency_sum_ms - base.latency_sum_ms;
            queue_wait_sum += counters.queue_wait_sum_ms - base.queue_wait_sum_ms;
            dispatch_counts[lifetime.machine.index()] =
                counters.dispatched.saturating_sub(base.dispatched);
            machine_lifetimes.push(lifetime);
        }
        machine_lifetimes.sort_by_key(|l| l.machine);

        // Machine lifetimes as timeline spans: retired machines close,
        // machines alive at replay end stay open (`end_ms: null`).
        for lifetime in &machine_lifetimes {
            let fields = vec![
                ("machine", lifetime.machine.index().into()),
                ("completed", lifetime.completed.into()),
                ("dispatched", lifetime.dispatched.into()),
            ];
            match lifetime.retired_ms {
                Some(end_ms) => telemetry.span("machine", lifetime.born_ms, end_ms, fields),
                None => {
                    telemetry.open_span(lifetime.born_ms, "machine", fields);
                }
            }
        }
        telemetry.inc("replay.completed", completed as u64);
        telemetry.inc("replay.unfinished", cluster.outstanding() as u64);

        // With a retention window configured the telemetry has been
        // streaming through its sink all along; this drains the final
        // window (registry snapshot included) into the finished export.
        let streamed_jsonl = telemetry.take_streamed();

        Ok(ClusterReport {
            policy: self.policy.name(),
            billing: cluster.billing(),
            dispatch_counts,
            completed,
            unfinished: cluster.outstanding(),
            redispatched,
            steal_events,
            scale_events,
            forecast_samples,
            machine_lifetimes,
            slo_alerts,
            telemetry,
            streamed_jsonl,
            peak_machines,
            mean_latency_ms: if completed == 0 {
                0.0
            } else {
                latency_sum / completed as f64
            },
            mean_queue_wait_ms: if launched == 0 {
                0.0
            } else {
                queue_wait_sum / launched as f64
            },
            mean_predicted_slowdown: if predicted_slowdowns.is_empty() {
                0.0
            } else {
                predicted_slowdowns.iter().sum::<f64>() / predicted_slowdowns.len() as f64
            },
            predicted_slowdowns,
            placements,
            sim_ms: now_ms,
        })
    }

    /// The slice-stepping replay loop — the oracle engine: every
    /// boundary is processed whether or not anything happens there.
    fn run_slices<S: TraceSource>(
        &mut self,
        cluster: &mut Cluster,
        source: &mut ChunkedSource<S>,
        state: &mut ReplayState,
    ) -> Result<()> {
        while !source.is_exhausted() {
            let slice_end = state.now_ms + state.slice_ms;
            self.process_slice(cluster, source, state, slice_end)?;
        }
        Ok(())
    }

    /// The discrete-event replay loop ([`SteppingMode::EventDriven`]):
    /// per round, k-way-merge the boundary-generating streams — the
    /// next trace arrival's admitting boundary, the autoscaler's probe
    /// tick, pending boot commissions, the forecast sampling point —
    /// into the [`EventQueue`], pop the earliest, bulk-skip the quiet
    /// slices before it in O(1) bookkeeping, then process the slice
    /// that ends at it exactly as the oracle would.
    ///
    /// With elastic control on (autoscaler or stealing), a probe tick
    /// lands on every boundary — the forecaster must observe every
    /// slice's admitted count and cooldown clocks advance per decision
    /// round — so the engine degrades to boundary-by-boundary stepping
    /// and the win comes from machine-level idle fast-forwarding
    /// instead.
    fn run_event_driven<S: TraceSource>(
        &mut self,
        cluster: &mut Cluster,
        source: &mut ChunkedSource<S>,
        state: &mut ReplayState,
    ) -> Result<()> {
        let mut queue = EventQueue::new();
        while let Some(at_ms) = source.peek_at_ms() {
            let queue_started = state.telemetry.profile().start();
            queue.clear();
            let horizon = state.now_ms + state.slice_ms;
            // fill_before admits strictly-before, so an arrival at
            // `at_ms` is admitted by the first boundary after it; a
            // late (out-of-order) stamp clamps to the next boundary —
            // exactly where slice stepping would admit it.
            let admit = ((at_ms / state.slice_ms) + 1) * state.slice_ms;
            queue.push(ReplayEvent::arrival(admit.max(horizon), 0));
            if let Some(scaler) = &state.autoscaler {
                queue.push(ReplayEvent::probe_tick(horizon));
                for (slot, ready_ms) in scaler.pending_ready().enumerate() {
                    let commission = ready_ms.div_ceil(state.slice_ms) * state.slice_ms;
                    queue.push(ReplayEvent::boot_ready(
                        commission.max(horizon),
                        slot as u64,
                    ));
                }
                if scaler.is_predictive() {
                    queue.push(ReplayEvent::forecast(horizon));
                }
            }
            if self.stealing.is_some() {
                queue.push(ReplayEvent::probe_tick(horizon));
            }
            let next = queue.pop().expect("an arrival event was just pushed"); // lint:allow(panic-in-lib): an arrival was pushed onto the queue in the preceding statement
            state.telemetry.profile_mut().stop("queue", queue_started);
            let process_start = next.at_ms - state.slice_ms;
            if process_start > state.now_ms {
                bulk_skip(cluster, state, process_start)?;
            }
            self.process_slice(cluster, source, state, next.at_ms)?;
        }
        Ok(())
    }

    /// Processes one slice ending at `slice_end`, in the oracle's
    /// exact order: admit the slice's chunk of arrivals, route and
    /// dispatch each against live snapshots, run the boundary
    /// (autoscale → steal → timeline mirror → fleet gauge), then step
    /// every machine to the boundary.
    fn process_slice<S: TraceSource>(
        &mut self,
        cluster: &mut Cluster,
        source: &mut ChunkedSource<S>,
        state: &mut ReplayState,
        slice_end: u64,
    ) -> Result<()> {
        let mut chunk = std::mem::take(&mut state.chunk);
        chunk.clear();
        source.fill_before(slice_end, &mut chunk);
        let admitted = chunk.len();
        state.telemetry.inc("slices", 1);
        state.telemetry.inc("arrivals.admitted", admitted as u64);
        state.telemetry.observe("slice.admitted", admitted as f64);
        let dispatch_started = state.telemetry.profile().start();
        for event in chunk.drain(..) {
            if !cluster.ctx.is_warmed(&event.function) {
                // In-place: workers release their context clones at
                // the slice barrier, so the Arc is unique here.
                Arc::make_mut(&mut cluster.ctx).warm_function(&state.spec, &event.function)?;
                state.telemetry.inc("oracle.warmed", 1);
            }
            let (position, id, predicted) = self.route(cluster);
            state
                .telemetry
                .observe("dispatch.predicted_slowdown", predicted);
            // The trace id is the invocation's admission index in trace
            // order — a pure function of the trace, so the sampled set
            // (and every span) is identical across engines and threads.
            let trace_id = TraceId(state.placements.len() as u64);
            let trace = if state.sampler.sample(trace_id) {
                state.telemetry.inc("trace.sampled", 1);
                // A late out-of-order stamp can postdate its admitting
                // boundary; clamp so the admission span stays well-formed.
                let arrived = event.at_ms.min(slice_end);
                state.telemetry.span(
                    "trace.admission",
                    arrived,
                    slice_end,
                    vec![
                        ("trace", trace_id.0.into()),
                        ("tenant", event.tenant.0.into()),
                        ("function", event.function.name().into()),
                    ],
                );
                state.telemetry.event(
                    slice_end,
                    "trace.placement",
                    vec![
                        ("trace", trace_id.0.into()),
                        ("tenant", event.tenant.0.into()),
                        ("machine", id.index().into()),
                        ("probe_slowdown", predicted.into()),
                        ("fleet", cluster.machines.len().into()),
                    ],
                );
                Some(trace_id)
            } else {
                None
            };
            state.predicted_slowdowns.push(predicted);
            state.placements.push(id);
            cluster.machines[position].dispatch(event.at_ms, event.function, event.tenant, trace);
        }
        state.chunk = chunk;
        state
            .telemetry
            .profile_mut()
            .stop("dispatch", dispatch_started);
        self.boundary(cluster, state, slice_end, admitted)?;
        step_cluster(cluster, state, slice_end)?;
        state.now_ms = slice_end;
        Ok(())
    }

    /// One slice-boundary control round at `at_ms`: autoscale
    /// decision, stealing pass, timeline mirroring, fleet gauge — the
    /// order both engines share.
    fn boundary(
        &mut self,
        cluster: &mut Cluster,
        state: &mut ReplayState,
        at_ms: u64,
        admitted: usize,
    ) -> Result<()> {
        if let Some(scaler) = &mut state.autoscaler {
            // Observed per-machine completion rate over the probe
            // interval, gauged before the scaler mutates the fleet.
            // One set per live machine in fleet order folds the whole
            // fleet's range into the `machine.service_rate` gauge
            // (min = slowest machine-interval, max = fastest). Gated on
            // the autoscaler because only then is every boundary dense
            // (the event engine never bulk-skips), keeping the gauge —
            // and the export — identical across engines.
            let elapsed_ms = at_ms.saturating_sub(state.service_prev_ms);
            if elapsed_ms > 0 {
                for machine in &cluster.machines {
                    let completed = machine.completed();
                    let prev = state
                        .service_prev
                        .insert(machine.id(), completed)
                        .unwrap_or(completed);
                    let rate = completed.saturating_sub(prev) as f64 * 1000.0 / elapsed_ms as f64;
                    state.telemetry.gauge_set("machine.service_rate", rate);
                }
                state.service_prev_ms = at_ms;
            }
            let started = state.telemetry.profile().start();
            scaler.evaluate(
                cluster,
                at_ms,
                admitted,
                &mut state.scale_events,
                &mut state.forecast_samples,
            )?;
            state.telemetry.profile_mut().stop("scale", started);
            state.peak_machines = state.peak_machines.max(cluster.machines.len());
        }
        if let Some(config) = &self.stealing {
            let started = state.telemetry.profile().start();
            state.redispatched += steal_pass(cluster, config, at_ms, &mut state.steal_events);
            state.telemetry.profile_mut().stop("steal", started);
        }
        mirror_into_timeline(
            &mut state.telemetry,
            &mut state.mirrored,
            &state.scale_events,
            &state.forecast_samples,
            &state.steal_events,
        );
        state
            .telemetry
            .gauge_set("fleet.machines", cluster.machines.len() as f64);
        Ok(())
    }

    /// Lets in-flight work finish after the last arrival: slice-sized
    /// boundary rounds until the cluster empties or the drain window
    /// closes. Both engines drain boundary-by-boundary — the replay's
    /// `sim_ms` must end at the *first* boundary where nothing is
    /// outstanding, which only stepping each boundary can observe —
    /// but the event engine discovers each round through
    /// completion-watch and probe-tick events on its queue, so the two
    /// code paths stay one.
    fn drain(&mut self, cluster: &mut Cluster, state: &mut ReplayState) -> Result<()> {
        let drain_start_ms = state.now_ms;
        let drain_pending = cluster.outstanding();
        let deadline = drain_start_ms + cluster.drain_ms;
        let event_mode = cluster.stepping == SteppingMode::EventDriven;
        let mut queue = EventQueue::new();
        while cluster.outstanding() > 0 && state.now_ms < deadline {
            let horizon = state.now_ms + state.slice_ms;
            let next_ms = if event_mode {
                queue.clear();
                for machine in &cluster.machines {
                    if machine.outstanding() > 0 {
                        queue.push(ReplayEvent::completion(
                            horizon,
                            machine.id().index() as u64,
                        ));
                    }
                }
                if state.autoscaler.is_some() || self.stealing.is_some() {
                    queue.push(ReplayEvent::probe_tick(horizon));
                }
                queue
                    .pop()
                    .map_or(horizon, |event| event.at_ms)
                    .min(deadline)
            } else {
                horizon.min(deadline)
            };
            state.telemetry.inc("slices", 1);
            self.boundary(cluster, state, next_ms, 0)?;
            step_cluster(cluster, state, next_ms)?;
            state.now_ms = next_ms;
        }
        if state.now_ms > drain_start_ms {
            state.telemetry.span(
                "drain",
                drain_start_ms,
                state.now_ms,
                vec![
                    ("pending", drain_pending.into()),
                    ("unfinished", cluster.outstanding().into()),
                ],
            );
        }
        Ok(())
    }
}

/// Mutable state of one replay, threaded through the engine stages so
/// the slice and event-driven loops share the exact same slice
/// processing, boundary and drain code.
struct ReplayState {
    spec: MachineSpec,
    slice_ms: u64,
    autoscaler: Option<Autoscaler>,
    placements: Vec<MachineId>,
    predicted_slowdowns: Vec<f64>,
    steal_events: Vec<StealEvent>,
    scale_events: Vec<ScaleEvent>,
    forecast_samples: Vec<ForecastSample>,
    redispatched: usize,
    peak_machines: usize,
    now_ms: u64,
    /// Reusable per-slice arrival buffer.
    chunk: Vec<TraceEvent>,
    telemetry: Telemetry,
    /// (scale, forecast, steal) entries already mirrored onto the
    /// timeline — the typed vectors stay the storage of record.
    mirrored: (usize, usize, usize),
    /// Deterministic per-invocation trace sampler.
    sampler: TraceSampler,
    /// Completion records drained from the machines after every step,
    /// merged and emitted as `trace.*` spans once the replay ends.
    trace_records: Vec<CompletionRecord>,
    /// Incremental SLO evaluator, fed at every boundary (None when the
    /// driver declared no SLOs).
    slo: Option<OnlineSloEngine>,
    /// `trace_records` entries already fed to the online engine.
    slo_fed: usize,
    /// Per-machine completed counts at the last probe boundary, for the
    /// `machine.service_rate` gauge.
    service_prev: BTreeMap<MachineId, usize>,
    /// Sim time of the last service-rate probe.
    service_prev_ms: u64,
}

/// The online engine's view of one drained completion record — field
/// for field the same values `emit_trace_spans` later writes to the
/// timeline, so the online input equals the post-hoc
/// `completions(timeline)` join.
fn completion_sample(record: &CompletionRecord) -> CompletionSample {
    CompletionSample {
        trace: record.trace.0,
        tenant: record.tenant.0,
        machine: record.machine.index() as u64,
        arrived_ms: record.arrived_ms,
        launched_ms: record.launched_ms,
        completed_ms: record.completed_ms as u64,
        wait_ms: record.launched_ms.saturating_sub(record.arrived_ms),
        moves: record.moves as u64,
        cost: record.cost,
        predicted: record.predicted,
    }
}

/// Feeds completion records drained since the last boundary to the
/// online SLO engine, advances it to `at_ms`, and lands the resulting
/// fired/cleared transitions on the timeline. Quiet slices append
/// nothing else to the timeline, so these events occupy identical
/// positions whether boundaries were stepped one by one (slice engine)
/// or finalized in one catch-up call after a bulk skip (event engine) —
/// the export stays byte-identical either way.
fn feed_slo_boundary(state: &mut ReplayState, at_ms: u64) {
    let Some(engine) = state.slo.as_mut() else {
        return;
    };
    for record in &state.trace_records[state.slo_fed..] {
        engine.record(&completion_sample(record));
    }
    state.slo_fed = state.trace_records.len();
    let transitions = engine.observe_boundary(at_ms);
    apply_slo_transitions(&mut state.telemetry, transitions);
}

/// Writes SLO fired/cleared transitions as timeline events (stamped
/// with the boundary they became decidable at) and registry counters.
fn apply_slo_transitions(telemetry: &mut Telemetry, transitions: Vec<SloAlert>) {
    for alert in transitions {
        let name = match alert.transition {
            SloTransition::Fired => "slo.alert.fired",
            SloTransition::Cleared => "slo.alert.cleared",
        };
        telemetry.inc(name, 1);
        let mut fields = vec![
            ("slo", alert.slo.into()),
            ("severity", alert.severity.into()),
            ("spec", alert.spec_idx.into()),
            ("rule", alert.rule_idx.into()),
            ("burn_fast", alert.burn_fast.into()),
            ("burn_slow", alert.burn_slow.into()),
        ];
        if let Some(tenant) = alert.tenant {
            fields.push(("tenant", tenant.into()));
        }
        if alert.transition == SloTransition::Cleared {
            fields.push(("peak_burn", alert.peak_burn.into()));
        }
        telemetry.event(alert.at_ms, name, fields);
    }
}

/// Steps every live machine to `target_ms` under the cluster's
/// stepping mode, wall-clock-profiled as the "step" stage.
fn step_cluster(cluster: &mut Cluster, state: &mut ReplayState, target_ms: u64) -> Result<()> {
    let started = state.telemetry.profile().start();
    match cluster.stepping {
        SteppingMode::EventDriven => {
            cluster.step_all_event(target_ms, state.telemetry.profile_mut())?
        }
        SteppingMode::Pooled | SteppingMode::Scoped => {
            cluster.step_all(target_ms, state.telemetry.profile_mut())?
        }
    }
    state.telemetry.profile_mut().stop("step", started);
    // Drain sampled completion records on the driver thread before the
    // next boundary can retire an emptied machine (records drop with
    // it). Each machine's record stream is step-granularity-invariant,
    // so the merged multiset is identical across engines.
    for machine in &mut cluster.machines {
        let records = machine.take_trace_records();
        if !records.is_empty() {
            state.trace_records.extend(records);
        }
    }
    // Every record completing before `target_ms` is now drained, which
    // is exactly what finalizing the boundaries strictly before it
    // needs — so the online SLO engine advances here, on the shared
    // path all three stepping entry points (slice, event, bulk skip)
    // funnel through.
    feed_slo_boundary(state, target_ms);
    Ok(())
}

/// Emits every sampled invocation's completion-side chain — the
/// `trace.queue` span (arrival → launch), the `trace.exec` span
/// (launch → completion) and the `trace.billed` attribution event — in
/// one deterministic merge at replay end. Records are sorted by
/// (completion time, trace id): per-machine streams are identical
/// across stepping modes, and the sort key is unique per record, so
/// the emitted order never depends on how the driver batched the
/// drains (slice-by-slice vs one bulk skip).
fn emit_trace_spans(state: &mut ReplayState) {
    if state.trace_records.is_empty() {
        return;
    }
    let mut records = std::mem::take(&mut state.trace_records);
    records.sort_by(|a, b| {
        a.completed_ms
            .total_cmp(&b.completed_ms)
            .then_with(|| a.trace.cmp(&b.trace))
    });
    for record in &records {
        let completed = record.completed_ms as u64;
        let wait_ms = record.launched_ms.saturating_sub(record.arrived_ms);
        state.telemetry.span(
            "trace.queue",
            record.arrived_ms,
            record.launched_ms,
            vec![
                ("trace", record.trace.0.into()),
                ("tenant", record.tenant.0.into()),
                ("machine", record.machine.index().into()),
                ("moves", record.moves.into()),
            ],
        );
        state.telemetry.span(
            "trace.exec",
            record.launched_ms,
            completed,
            vec![
                ("trace", record.trace.0.into()),
                ("tenant", record.tenant.0.into()),
                ("machine", record.machine.index().into()),
            ],
        );
        state.telemetry.event(
            completed,
            "trace.billed",
            vec![
                ("trace", record.trace.0.into()),
                ("tenant", record.tenant.0.into()),
                ("machine", record.machine.index().into()),
                ("cost", record.cost.into()),
                ("predicted", record.predicted.into()),
            ],
        );
        state.telemetry.inc("trace.completed", 1);
        state
            .telemetry
            .observe("trace.queue_wait_ms", wait_ms as f64);
        if record.moves > 0 {
            state.telemetry.inc("trace.stolen", 1);
        }
    }
}

/// Accounts `(to_ms − now) / slice_ms` skipped quiet slices in O(1)
/// and advances the cluster to `to_ms`. Only reachable with elastic
/// control off, so the only per-slice effects to replicate are the
/// registry updates — applied with their exact bulk forms, keeping the
/// registry (and its JSONL export) bit-identical to stepping the
/// slices one by one.
fn bulk_skip(cluster: &mut Cluster, state: &mut ReplayState, to_ms: u64) -> Result<()> {
    let slices = (to_ms - state.now_ms) / state.slice_ms;
    let skip_started = state.telemetry.profile().start();
    state.telemetry.inc("slices", slices);
    state.telemetry.inc("arrivals.admitted", 0);
    state.telemetry.observe_n("slice.admitted", 0.0, slices);
    state
        .telemetry
        .gauge_set_n("fleet.machines", cluster.machines.len() as f64, slices);
    state
        .telemetry
        .profile_mut()
        .stop("bulk-account", skip_started);
    step_cluster(cluster, state, to_ms)?;
    state.now_ms = to_ms;
    Ok(())
}

/// Mirrors typed elasticity records appended since the last call onto
/// the telemetry timeline (as structured events) and registry (as
/// counters/histograms). `mirrored` tracks how many (scale, forecast,
/// steal) entries are already on the timeline, so the typed vectors
/// remain the storage of record and every entry lands exactly once.
fn mirror_into_timeline(
    telemetry: &mut Telemetry,
    mirrored: &mut (usize, usize, usize),
    scale_events: &[ScaleEvent],
    forecast_samples: &[ForecastSample],
    steal_events: &[StealEvent],
) {
    for event in &scale_events[mirrored.0..] {
        let (kind, counter) = match event.kind {
            ScaleKind::Up => ("up", "scale.up"),
            ScaleKind::DrainStart => ("drain-start", "scale.drain_start"),
            ScaleKind::Retire => ("retire", "scale.retire"),
        };
        telemetry.inc(counter, 1);
        telemetry.event(
            event.at_ms,
            "scale",
            vec![
                ("kind", kind.into()),
                ("machine", event.machine.index().into()),
                ("reason", event.reason.to_string().into()),
                ("signal", event.signal.into()),
            ],
        );
    }
    mirrored.0 = scale_events.len();
    for sample in &forecast_samples[mirrored.1..] {
        telemetry.event(
            sample.at_ms,
            "forecast",
            vec![
                ("observed", sample.observed.into()),
                ("point", sample.forecast.point.into()),
                ("lo", sample.forecast.lo.into()),
                ("hi", sample.forecast.hi.into()),
                ("horizon", sample.forecast.horizon.into()),
                ("required", sample.required.into()),
                ("serving", sample.serving.into()),
            ],
        );
    }
    mirrored.1 = forecast_samples.len();
    for event in &steal_events[mirrored.2..] {
        telemetry.inc("steal.redispatched", event.moved as u64);
        telemetry.observe("steal.moved", event.moved as f64);
        telemetry.event(
            event.at_ms,
            "steal",
            vec![
                ("from", event.from.index().into()),
                ("to", event.to.index().into()),
                ("moved", event.moved.into()),
            ],
        );
    }
    mirrored.2 = steal_events.len();
}
