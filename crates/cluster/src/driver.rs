use litmus_core::{DiscountModel, PricingTables};
use litmus_platform::InvocationTrace;
use litmus_sim::MachineSpec;

use crate::billing::BillingAggregator;
use crate::context::ServingContext;
use crate::error::ClusterError;
use crate::machine::{Machine, MachineConfig};
use crate::policy::{MachineSnapshot, PlacementPolicy};
use crate::Result;

/// Configuration of a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Hardware model shared by every machine.
    pub spec: MachineSpec,
    /// Per-machine serving configuration (pool size, background load).
    pub machines: Vec<MachineConfig>,
    /// Scheduling time-slice: arrivals are dispatched and machines
    /// stepped in windows of this many ms.
    pub slice_ms: u64,
    /// Worker threads stepping machines in parallel (1 = sequential).
    pub threads: usize,
    /// Instruction-count scale applied to served functions.
    pub serving_scale: f64,
    /// Extra time after the last arrival to let stragglers finish, ms.
    pub drain_ms: u64,
}

impl ClusterConfig {
    /// A homogeneous cluster: `count` machines, each serving on
    /// `cores` cores of `spec`, no background load, threads matching
    /// the host's parallelism.
    pub fn homogeneous(spec: MachineSpec, count: usize, cores: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ClusterConfig {
            spec,
            machines: (0..count)
                .map(|i| MachineConfig::new(cores).seed(0xC1A0 + i as u64))
                .collect(),
            slice_ms: 20,
            threads,
            serving_scale: 1.0,
            drain_ms: 60_000,
        }
    }

    /// Replaces the machine list (heterogeneous background loads).
    pub fn machines(mut self, machines: Vec<MachineConfig>) -> Self {
        self.machines = machines;
        self
    }

    /// Sets the scheduling slice, ms (minimum 1).
    pub fn slice_ms(mut self, ms: u64) -> Self {
        self.slice_ms = ms.max(1);
        self
    }

    /// Sets the stepping thread count (minimum 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the served-function profile scale.
    pub fn serving_scale(mut self, scale: f64) -> Self {
        self.serving_scale = scale;
        self
    }

    /// Sets the drain window, ms.
    pub fn drain_ms(mut self, ms: u64) -> Self {
        self.drain_ms = ms;
        self
    }
}

/// A cluster of independently-simulated serving machines sharing one
/// calibration (tables + discount model) — the provider-side fleet the
/// paper's §5.1 scheduling observation applies to.
#[derive(Debug)]
pub struct Cluster {
    machines: Vec<Machine>,
    ctx: ServingContext,
    spec: MachineSpec,
    slice_ms: u64,
    threads: usize,
    drain_ms: u64,
}

impl Cluster {
    /// Boots every machine (background fillers, warm-up, one initial
    /// Litmus probe each) and prepares the shared serving context.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::NoMachines`] for an empty machine list;
    /// * propagated boot failures.
    pub fn build(
        config: ClusterConfig,
        tables: PricingTables,
        model: DiscountModel,
    ) -> Result<Self> {
        if config.machines.is_empty() {
            return Err(ClusterError::NoMachines);
        }
        let probe_language = tables
            .baselines()
            .first()
            .ok_or(litmus_core::CoreError::DegenerateMeasurement(
                "tables contain no startup baselines",
            ))?
            .language;
        let ctx = ServingContext::new(tables, model, config.serving_scale);
        let machines = config
            .machines
            .iter()
            .map(|machine_config| {
                Machine::boot(config.spec.clone(), machine_config, probe_language, &ctx)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Cluster {
            machines,
            ctx,
            spec: config.spec,
            slice_ms: config.slice_ms,
            threads: config.threads,
            drain_ms: config.drain_ms,
        })
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the cluster has no machines (never true after build).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Scheduler-visible state of every machine.
    pub fn snapshots(&self) -> Vec<MachineSnapshot> {
        self.machines.iter().map(Machine::snapshot).collect()
    }

    /// One machine, for inspection.
    pub fn machine(&self, idx: usize) -> Option<&Machine> {
        self.machines.get(idx)
    }

    /// Invocations executing or queued across the cluster.
    pub fn outstanding(&self) -> usize {
        self.machines.iter().map(Machine::outstanding).sum()
    }

    /// Steps every machine to cluster time `target_ms`, in parallel
    /// when the cluster was configured with more than one thread.
    /// Machines are fully independent state machines, so parallel and
    /// sequential stepping produce bit-identical results.
    fn step_all(&mut self, target_ms: u64) -> Result<()> {
        let threads = self.threads.min(self.machines.len()).max(1);
        if threads == 1 {
            for machine in &mut self.machines {
                machine.step_to(target_ms, &self.ctx)?;
            }
            return Ok(());
        }
        let ctx = &self.ctx;
        let chunk_len = self.machines.len().div_ceil(threads);
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .machines
                .chunks_mut(chunk_len)
                .map(|chunk| {
                    scope.spawn(move || {
                        for machine in chunk {
                            machine.step_to(target_ms, ctx)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|panic| {
                        Err(ClusterError::WorkerPanic(panic_message(&panic)))
                    })
                })
                .collect()
        });
        results.into_iter().collect()
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Result of replaying a trace through a [`Cluster`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Name of the placement policy that produced this outcome.
    pub policy: &'static str,
    /// Per-tenant billing, folded from every machine's shard.
    pub billing: BillingAggregator,
    /// Machine index chosen for each trace event, in trace order —
    /// deterministic for a given trace, cluster config and policy.
    pub placements: Vec<usize>,
    /// Invocations dispatched to each machine.
    pub dispatch_counts: Vec<usize>,
    /// Invocations completed and billed.
    pub completed: usize,
    /// Invocations still executing or queued when the drain window
    /// closed.
    pub unfinished: usize,
    /// Mean arrival→completion latency of completed invocations, ms.
    pub mean_latency_ms: f64,
    /// Mean (over dispatches) of the chosen machine's predicted
    /// slowdown at dispatch time — the placement-quality signal
    /// Litmus-aware routing minimises.
    pub mean_predicted_slowdown: f64,
    /// Simulated time the replay covered, ms.
    pub sim_ms: u64,
}

impl ClusterOutcome {
    /// Completed invocations per simulated second.
    pub fn throughput_per_sim_s(&self) -> f64 {
        if self.sim_ms == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.sim_ms as f64 / 1000.0)
    }
}

/// Replays an [`InvocationTrace`] against a [`Cluster`] under a
/// [`PlacementPolicy`]: per time-slice, route every arrival in the
/// slice (policy sees live snapshots, including the Litmus congestion
/// estimates), then step all machines through the slice in parallel
/// while their shards absorb the resulting invoices.
///
/// # Examples
///
/// ```no_run
/// use litmus_cluster::{
///     Cluster, ClusterConfig, ClusterDriver, LitmusAware,
/// };
/// use litmus_core::{DiscountModel, TableBuilder};
/// use litmus_platform::InvocationTrace;
/// use litmus_sim::MachineSpec;
/// use litmus_workloads::suite;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = MachineSpec::cascade_lake();
/// let tables = TableBuilder::new(spec.clone()).build()?;
/// let model = DiscountModel::fit(&tables)?;
/// let trace = InvocationTrace::poisson(suite::benchmarks(), 200.0, 10_000, 7)
///     .expect("non-empty pool");
/// let config = ClusterConfig::homogeneous(spec, 8, 8);
/// let mut cluster = Cluster::build(config, tables, model)?;
/// let outcome = ClusterDriver::new(LitmusAware::new())
///     .replay(&mut cluster, &trace)?;
/// println!("{} invocations billed", outcome.completed);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct ClusterDriver<P> {
    policy: P,
}

impl<P: PlacementPolicy> ClusterDriver<P> {
    /// Creates a driver routing with `policy`.
    pub fn new(policy: P) -> Self {
        ClusterDriver { policy }
    }

    /// The policy's report name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Replays `trace` and returns the cluster-wide outcome. The solo
    /// oracle cache is warmed for the trace's functions first.
    ///
    /// Billing shards live on the machines and accumulate for the
    /// lifetime of the cluster (an accounting period), so
    /// [`ClusterOutcome::billing`] of a second replay on the same
    /// cluster covers both replays — build a fresh [`Cluster`] per
    /// experiment when billing must be isolated. Every *serving*
    /// metric (`completed`, `dispatch_counts`, latency, placements,
    /// `sim_ms`) covers only the replay that returned it.
    ///
    /// # Errors
    ///
    /// Propagates warm-up, stepping and pricing failures.
    pub fn replay(
        &mut self,
        cluster: &mut Cluster,
        trace: &InvocationTrace,
    ) -> Result<ClusterOutcome> {
        let spec = cluster.spec.clone();
        cluster.ctx.warm(&spec, trace)?;

        // Machines carry lifetime counters (they also back the billing
        // shards); snapshot them so this outcome's serving metrics
        // cover this replay only, even on a reused cluster.
        let base: Vec<(usize, usize, f64)> = cluster
            .machines
            .iter()
            .map(|m| (m.completed(), m.dispatched(), m.latency_sum_ms()))
            .collect();

        let slice_ms = cluster.slice_ms;
        let mut placements = Vec::with_capacity(trace.len());
        let mut predicted_sum = 0.0;
        let mut now_ms = 0u64;
        let mut next_event = 0;

        while next_event < trace.len() {
            let slice_end = now_ms + slice_ms;
            while next_event < trace.len() && trace.events()[next_event].at_ms < slice_end {
                let event = &trace.events()[next_event];
                let snapshots = cluster.snapshots();
                let chosen = self.policy.choose(&snapshots);
                predicted_sum += snapshots[chosen].predicted_slowdown;
                placements.push(chosen);
                cluster.machines[chosen].dispatch(
                    event.at_ms,
                    event.function.clone(),
                    event.tenant,
                );
                next_event += 1;
            }
            cluster.step_all(slice_end)?;
            now_ms = slice_end;
        }

        let drain_deadline = now_ms + cluster.drain_ms;
        while cluster.outstanding() > 0 && now_ms < drain_deadline {
            now_ms = (now_ms + slice_ms).min(drain_deadline);
            cluster.step_all(now_ms)?;
        }

        let mut billing = BillingAggregator::new();
        let mut completed = 0;
        let mut latency_sum = 0.0;
        for (machine, (base_completed, _, base_latency)) in cluster.machines.iter().zip(&base) {
            billing.absorb(machine.shard());
            completed += machine.completed() - base_completed;
            latency_sum += machine.latency_sum_ms() - base_latency;
        }
        Ok(ClusterOutcome {
            policy: self.policy.name(),
            billing,
            dispatch_counts: cluster
                .machines
                .iter()
                .zip(&base)
                .map(|(m, (_, base_dispatched, _))| m.dispatched() - base_dispatched)
                .collect(),
            completed,
            unfinished: cluster.outstanding(),
            mean_latency_ms: if completed == 0 {
                0.0
            } else {
                latency_sum / completed as f64
            },
            mean_predicted_slowdown: if placements.is_empty() {
                0.0
            } else {
                predicted_sum / placements.len() as f64
            },
            placements,
            sim_ms: now_ms,
        })
    }
}
