//! Trace-driven multi-machine serving for the Litmus reproduction —
//! the provider-side layer between one congested machine
//! ([`litmus_platform::CoRunHarness`]) and the paper-figure harness.
//!
//! Paper §5.1 observes that the congestion readings Litmus collects for
//! *pricing* "assist providers in estimating remaining resources and
//! making informed decisions regarding job scheduling". This crate
//! operationalises that at cluster scale:
//!
//! * [`Cluster`] — N independently-simulated machines (each a
//!   [`litmus_platform::CoRunHarness`] with its own background load)
//!   sharing one calibration;
//! * [`PlacementPolicy`] — pluggable routing: [`RoundRobin`],
//!   [`LeastLoaded`] (queue depth) and [`LitmusAware`] (route to the
//!   machine whose latest startup probe predicts the smallest
//!   slowdown);
//! * [`ClusterDriver`] — replays a multi-tenant
//!   [`litmus_platform::InvocationTrace`] per time-slice, stepping
//!   machines on a persistent worker pool (threads spawned once per
//!   cluster, synchronised at a per-slice barrier);
//! * [`StealingConfig`] — slice-boundary work stealing: machines whose
//!   queued-but-not-launched backlog exceeds a threshold re-dispatch
//!   the excess to the machine with the best forward-adjusted probe
//!   prediction;
//! * [`AutoscalerConfig`] — elasticity: reactively (the fleet grows
//!   when the fleetwide predicted slowdown crosses a high-water mark)
//!   or predictively ([`ScalingPolicy::Predictive`] feeds per-slice
//!   admitted-arrival counts into a `litmus-forecast` model and boots
//!   machines before the forecast burst lands, probe marks kept as
//!   backstop), draining/retiring idle machines at a low-water mark,
//!   with scale events, [`ForecastSample`]s and [`MachineLifetime`]s
//!   surfaced in the [`ClusterReport`];
//! * [`BillingShard`] / [`BillingAggregator`] — streaming per-tenant
//!   billing: each machine folds its invoices into constant-space
//!   [`litmus_core::BillingSummary`]s, merged cluster-wide at collection
//!   — no invoice list ever materialises (retired machines' shards are
//!   retained, so scaling never loses revenue);
//! * [`Telemetry`] — every replay carries a deterministic metric
//!   registry, sim-time event timeline and flight recorder
//!   ([`ClusterReport::telemetry`] / [`ClusterReport::timeline_jsonl`]);
//!   the JSONL export is byte-identical across thread counts, stepping
//!   modes and streaming vs materialized replay. Opt-in wall-clock
//!   stage profiling ([`ClusterDriver::profiling`]) sits outside the
//!   deterministic surface.
//!
//! Replays are fully deterministic: the same trace, cluster
//! configuration and policy produce identical placement sequences and
//! invoices, regardless of the stepping thread count or mode.
//!
//! # Examples
//!
//! Serve a skewed cluster (half the machines pre-loaded) and compare
//! routing policies:
//!
//! ```no_run
//! use litmus_cluster::{
//!     Cluster, ClusterConfig, ClusterDriver, LitmusAware, MachineConfig,
//!     RoundRobin,
//! };
//! use litmus_core::{DiscountModel, TableBuilder};
//! use litmus_platform::InvocationTrace;
//! use litmus_sim::MachineSpec;
//! use litmus_workloads::suite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = MachineSpec::cascade_lake();
//! let tables = TableBuilder::new(spec.clone()).build()?;
//! let model = DiscountModel::fit(&tables)?;
//!
//! // Machines 0–3 carry heavy background load, 4–7 are idle.
//! let machines: Vec<_> = (0..8)
//!     .map(|i| {
//!         let background = if i < 4 { 24 } else { 0 };
//!         MachineConfig::new(8).background(background).seed(100 + i)
//!     })
//!     .collect();
//! let config = ClusterConfig::homogeneous(spec, 8, 8).machines(machines);
//!
//! let trace = InvocationTrace::poisson(suite::benchmarks(), 300.0, 20_000, 1)
//!     .expect("non-empty pool");
//! let mut cluster = Cluster::build(config, tables, model)?;
//! let outcome =
//!     ClusterDriver::new(LitmusAware::new()).replay(&mut cluster, &trace)?;
//! for (tenant, summary) in outcome.billing.tenants() {
//!     println!(
//!         "{tenant}: {} invocations, {:.1}% discount",
//!         summary.len(),
//!         summary.average_discount() * 100.0
//!     );
//! }
//! # let _ = RoundRobin::new();
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod billing;
mod context;
mod driver;
mod error;
mod events;
mod machine;
mod policy;
mod pool;
mod scale;
mod steal;

pub use billing::{BillingAggregator, BillingShard};
pub use context::ServingContext;
pub use driver::{Cluster, ClusterConfig, ClusterDriver, ClusterReport};
pub use error::ClusterError;
pub use events::{EventClass, EventQueue, ReplayEvent};
pub use machine::{Machine, MachineConfig, MachineId};
pub use policy::{
    LeastLoaded, LitmusAware, MachineSnapshot, PlacementPolicy, ProbeFreshness, RoundRobin,
};
pub use pool::SteppingMode;
pub use scale::{
    AutoscalerConfig, ForecastSample, MachineLifetime, PredictiveConfig, ScaleEvent, ScaleKind,
    ScaleReason, ScalingPolicy,
};
pub use steal::{StealEvent, StealingConfig};

// The forecast vocabulary predictive configs are written in, re-exported
// so `litmus_cluster` users don't need a direct `litmus-forecast` dep.
pub use litmus_forecast::{ForecasterSpec, HorizonForecast};

// The telemetry vocabulary reports are written in, re-exported so
// `litmus_cluster` users don't need a direct `litmus-telemetry` dep.
pub use litmus_telemetry::{
    EventKind, FieldValue, FlightRecorder, Gauge, LogHistogram, Registry, StageProfile, StageStat,
    Telemetry, TelemetryConfig, Timeline, TimelineEvent, TraceId, TraceSampler,
};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ClusterError>;
