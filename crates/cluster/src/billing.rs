use std::collections::BTreeMap;

use litmus_core::{BillingSummary, Invoice};
use litmus_platform::TenantId;

/// Per-tenant streaming billing state: [`BillingSummary`]s folded
/// incrementally as invocations complete, in constant space per tenant.
///
/// The same type plays both roles of the sharded metering plane —
/// [`BillingShard`] (one per machine, owned by that machine while the
/// cluster steps in parallel: no locks, no cross-machine traffic) and
/// [`BillingAggregator`] (the cluster-wide fold of every shard via
/// [`BillingShard::absorb`]) — because shards form a commutative monoid
/// under per-tenant merge: absorbing shard by shard yields exactly what
/// folding every invoice into one shard would (up to float addition
/// order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BillingShard {
    tenants: BTreeMap<TenantId, BillingSummary>,
    total: BillingSummary,
}

/// Cluster-wide billing: the fold of every machine's [`BillingShard`]
/// — what the provider's accounting period sees.
///
/// # Examples
///
/// ```
/// use litmus_cluster::{BillingAggregator, BillingShard};
///
/// let mut aggregator = BillingAggregator::new();
/// aggregator.absorb(&BillingShard::new());
/// assert!(aggregator.total().is_empty());
/// ```
pub type BillingAggregator = BillingShard;

impl BillingShard {
    /// Creates an empty shard.
    pub fn new() -> Self {
        BillingShard::default()
    }

    /// Folds one completed invoice into the tenant's summary.
    pub fn fold(&mut self, tenant: TenantId, invoice: &Invoice) {
        self.tenants.entry(tenant).or_default().fold(invoice);
        self.total.fold(invoice);
    }

    /// Merges another shard into this one, tenant by tenant.
    pub fn absorb(&mut self, other: &BillingShard) {
        for (tenant, summary) in other.tenants() {
            self.tenants.entry(tenant).or_default().merge(summary);
        }
        self.total.merge(&other.total);
    }

    /// One tenant's summary, if they were ever billed here.
    pub fn tenant(&self, tenant: TenantId) -> Option<&BillingSummary> {
        self.tenants.get(&tenant)
    }

    /// Per-tenant summaries, ascending by tenant id.
    pub fn tenants(&self) -> impl Iterator<Item = (TenantId, &BillingSummary)> + '_ {
        self.tenants.iter().map(|(id, summary)| (*id, summary))
    }

    /// Number of distinct tenants billed.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The summary over all tenants.
    pub fn total(&self) -> &BillingSummary {
        &self.total
    }

    /// Number of invoices folded in (directly or via absorbed shards).
    pub fn len(&self) -> usize {
        self.total.len()
    }

    /// Whether no invoices have been folded in.
    pub fn is_empty(&self) -> bool {
        self.total.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus_core::Price;
    use litmus_sim::PmuCounters;

    fn invoice(cost: f64) -> Invoice {
        Invoice {
            function: "auth-py".into(),
            counters: PmuCounters {
                cycles: cost,
                instructions: cost * 0.9,
                ..Default::default()
            },
            commercial: Price {
                private: cost * 0.8,
                shared: cost * 0.2,
            },
            litmus: Price {
                private: cost * 0.7,
                shared: cost * 0.15,
            },
            ideal: Price {
                private: cost * 0.72,
                shared: cost * 0.14,
            },
        }
    }

    #[test]
    fn shards_fold_per_tenant_and_total() {
        let mut shard = BillingShard::new();
        shard.fold(TenantId(1), &invoice(100.0));
        shard.fold(TenantId(2), &invoice(50.0));
        shard.fold(TenantId(1), &invoice(10.0));
        assert_eq!(shard.len(), 3);
        assert!(!shard.is_empty());
        assert_eq!(shard.tenant_count(), 2);
        assert_eq!(shard.tenant(TenantId(1)).unwrap().len(), 2);
        assert_eq!(shard.tenant(TenantId(2)).unwrap().len(), 1);
        assert!(shard.tenant(TenantId(99)).is_none());
        assert!(
            (shard.total().commercial_revenue() - 160.0).abs() < 1e-9,
            "{}",
            shard.total().commercial_revenue()
        );
    }

    #[test]
    fn aggregator_matches_monolithic_fold() {
        // Two shards vs one big shard: identical totals.
        let mut a = BillingShard::new();
        let mut b = BillingShard::new();
        let mut mono = BillingShard::new();
        for (i, cost) in [12.0, 9.0, 55.0, 31.0, 7.0].iter().enumerate() {
            let tenant = TenantId((i % 2) as u32);
            let inv = invoice(*cost);
            if i % 2 == 0 {
                a.fold(tenant, &inv);
            } else {
                b.fold(tenant, &inv);
            }
            mono.fold(tenant, &inv);
        }
        let mut aggregator = BillingAggregator::new();
        aggregator.absorb(&a);
        aggregator.absorb(&b);
        assert_eq!(aggregator.tenant_count(), 2);
        assert_eq!(aggregator.total().len(), mono.total().len());
        assert!((aggregator.total().litmus_revenue() - mono.total().litmus_revenue()).abs() < 1e-9);
        for (tenant, summary) in mono.tenants() {
            let merged = aggregator.tenant(tenant).unwrap();
            assert_eq!(merged.len(), summary.len());
            assert!((merged.commercial_revenue() - summary.commercial_revenue()).abs() < 1e-9);
        }
    }
}
