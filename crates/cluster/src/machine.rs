use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use litmus_platform::{CoRunEnv, CoRunHarness, HarnessConfig, TenantId};
use litmus_sim::{Event, ExecutionProfile, InstanceId, MachineSpec};
use litmus_telemetry::TraceId;
use litmus_workloads::{Benchmark, Language};

use crate::billing::BillingShard;
use crate::context::ServingContext;
use crate::policy::MachineSnapshot;
use crate::Result;

/// Stable identity of a machine for the lifetime of a [`crate::Cluster`].
///
/// Autoscaling adds and retires machines mid-replay, so positional
/// indices shift; ids never do. Ids are assigned densely from 0 in boot
/// order, so replay reports can index per-machine vectors by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl MachineId {
    /// The id as a dense vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Configuration of one serving machine in a [`crate::Cluster`].
///
/// Machines share the cluster's [`MachineSpec`] but may differ in pool
/// size and — crucially for placement experiments — background load:
/// long-lived filler functions time-sharing the same cores, modelling
/// the colocated tenants a real provider has already packed there.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Cores in the machine's serving pool.
    pub cores: usize,
    /// Background filler functions kept alive on the pool (0 = the
    /// machine serves trace traffic only).
    pub background: usize,
    /// Instruction-count scale for background fillers.
    pub background_scale: f64,
    /// Warm-up before the machine joins the cluster, ms.
    pub warmup_ms: u64,
    /// Seed for the background mix (machines get distinct streams).
    pub seed: u64,
    /// Most invocations allowed to execute concurrently; dispatched
    /// arrivals beyond the cap wait in the machine's queue (and are
    /// what work stealing re-dispatches elsewhere).
    pub max_inflight: usize,
}

impl MachineConfig {
    /// A dedicated serving machine: `cores` cores, no background load,
    /// and a concurrency cap of 12 invocations per core (roughly the
    /// paper's §7.2 temporal-sharing density).
    pub fn new(cores: usize) -> Self {
        MachineConfig {
            cores,
            background: 0,
            background_scale: 0.05,
            warmup_ms: 100,
            seed: 0x5EED,
            max_inflight: cores.max(1) * 12,
        }
    }

    /// Sets the background filler count.
    pub fn background(mut self, fillers: usize) -> Self {
        self.background = fillers;
        self
    }

    /// Sets the background profile scale.
    pub fn background_scale(mut self, scale: f64) -> Self {
        self.background_scale = scale;
        self
    }

    /// Sets the warm-up duration, ms.
    pub fn warmup_ms(mut self, ms: u64) -> Self {
        self.warmup_ms = ms;
        self
    }

    /// Sets the background mix seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the concurrency cap (minimum 1).
    pub fn max_inflight(mut self, cap: usize) -> Self {
        self.max_inflight = cap.max(1);
        self
    }
}

/// An invocation dispatched to a machine but not yet launched — the
/// unit of work the stealing pass may re-dispatch to a calmer machine.
#[derive(Debug, Clone)]
pub(crate) struct QueuedArrival {
    pub(crate) launch_at_ms: u64,
    pub(crate) function: Benchmark,
    pub(crate) tenant: TenantId,
    /// Identity of the sampled trace this arrival belongs to (`None`
    /// when the invocation was not sampled — nothing is recorded).
    pub(crate) trace: Option<TraceId>,
    /// Times the stealing pass has re-dispatched this arrival.
    pub(crate) moves: u32,
}

#[derive(Debug, Clone)]
struct InFlight {
    function: Benchmark,
    tenant: TenantId,
    arrived_cluster_ms: u64,
    launched_cluster_ms: u64,
    trace: Option<TraceId>,
    moves: u32,
}

/// Everything the driver needs to emit one sampled invocation's
/// completion-side spans (queue wait, execution, billing attribution).
/// Machines accumulate these locally while stepping on worker threads;
/// the driver drains them single-threadedly after every step, so span
/// emission order stays deterministic.
#[derive(Debug, Clone)]
pub(crate) struct CompletionRecord {
    pub(crate) trace: TraceId,
    pub(crate) tenant: TenantId,
    pub(crate) machine: MachineId,
    /// Cluster time the invocation arrived (dispatch stamp), ms.
    pub(crate) arrived_ms: u64,
    /// Cluster time the invocation launched into execution, ms.
    pub(crate) launched_ms: u64,
    /// Cluster time the invocation completed, ms (fractional: the
    /// simulator completes at sub-ms quanta).
    pub(crate) completed_ms: f64,
    /// Litmus-priced cost billed for the invocation.
    pub(crate) cost: f64,
    /// Predicted slowdown the completion's startup probe produced.
    pub(crate) predicted: f64,
    /// Times the stealing pass re-dispatched the invocation.
    pub(crate) moves: u32,
}

/// One serving machine: a congested [`CoRunHarness`] plus the
/// scheduler-side bookkeeping the cluster needs — an arrival queue, the
/// in-flight table, the machine's latest Litmus congestion estimate and
/// its local [`BillingShard`].
///
/// Machines are stepped independently (and in parallel) by the
/// [`crate::ClusterDriver`]; nothing here references any other machine.
#[derive(Debug)]
pub struct Machine {
    id: MachineId,
    harness: CoRunHarness,
    cores: usize,
    /// Harness-local sim time corresponding to cluster time `born_ms`
    /// (boot + warm-up + initial probe all happen before the epoch).
    epoch_ms: u64,
    /// Cluster time at which the machine joined the fleet (0 for
    /// machines present at build, the scale-up slice for autoscaled
    /// ones).
    born_ms: u64,
    max_inflight: usize,
    queue: VecDeque<QueuedArrival>,
    inflight: BTreeMap<InstanceId, InFlight>,
    predicted_slowdown: f64,
    /// Cluster time the congestion estimate was last refreshed (boot
    /// probe, then every completion's startup probe).
    last_probe_ms: u64,
    shard: BillingShard,
    dispatched: usize,
    launched: usize,
    /// Full quanta actually stepped by the serving loop (idle
    /// fast-forwards excluded) — the wall-clock cost driver the
    /// event-driven engine minimises.
    quanta: u64,
    completed: usize,
    latency_sum_ms: f64,
    queue_wait_sum_ms: f64,
    draining: bool,
    /// Per-invocation completion records of sampled traces, drained by
    /// the driver after every step (empty whenever tracing is off).
    trace_records: Vec<CompletionRecord>,
}

impl Machine {
    /// Boots the machine: starts the harness (launching and warming any
    /// background fillers), then takes one startup Litmus probe so the
    /// placement policies see a meaningful congestion estimate before
    /// the first invocation completes. `born_ms` is the cluster time
    /// the machine joins at (0 at cluster build).
    ///
    /// # Errors
    ///
    /// Propagates harness boot and probe failures.
    pub fn boot(
        id: MachineId,
        born_ms: u64,
        spec: MachineSpec,
        config: &MachineConfig,
        probe_language: Language,
        ctx: &ServingContext,
    ) -> Result<Self> {
        let harness_config = HarnessConfig::new(spec)
            .env(CoRunEnv::Shared {
                co_runners: config.background,
                cores: config.cores,
            })
            .mix_scale(config.background_scale)
            .warmup_ms(config.warmup_ms)
            .seed(config.seed);
        let harness = CoRunHarness::start(harness_config)?;
        let mut machine = Machine {
            id,
            harness,
            cores: config.cores,
            epoch_ms: 0,
            born_ms,
            max_inflight: config.max_inflight.max(1),
            queue: VecDeque::new(),
            inflight: BTreeMap::new(),
            predicted_slowdown: 1.0,
            last_probe_ms: born_ms,
            shard: BillingShard::new(),
            dispatched: 0,
            launched: 0,
            quanta: 0,
            completed: 0,
            latency_sum_ms: 0.0,
            queue_wait_sum_ms: 0.0,
            draining: false,
            trace_records: Vec::new(),
        };
        machine.probe(probe_language, ctx)?;
        machine.epoch_ms = machine.harness.sim().now_ms();
        Ok(machine)
    }

    /// Runs a startup-only probe (exactly what a new function's launch
    /// would measure) and refreshes the congestion estimate.
    fn probe(&mut self, language: Language, ctx: &ServingContext) -> Result<()> {
        let mut builder = ExecutionProfile::builder(format!("{}-cluster-probe", language.abbr()));
        for phase in language.startup_phases() {
            builder = builder.startup_phase(phase);
        }
        let profile = builder.build().map_err(litmus_core::CoreError::from)?;
        let report = self.harness.measure(profile)?;
        let baseline = ctx.tables().baseline(language)?;
        let startup = report
            .startup
            .as_ref()
            .ok_or(litmus_core::CoreError::NoStartup)?;
        let reading = litmus_core::LitmusReading::from_startup(baseline, startup)?;
        self.predicted_slowdown = ctx.model().estimate(&reading)?.total_slowdown;
        Ok(())
    }

    /// The machine's stable id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Cluster time the machine joined the fleet, ms.
    pub fn born_ms(&self) -> u64 {
        self.born_ms
    }

    /// Harness-local time corresponding to cluster time `cluster_ms`.
    fn local_ms(&self, cluster_ms: u64) -> u64 {
        self.epoch_ms + cluster_ms.saturating_sub(self.born_ms)
    }

    /// Cluster time corresponding to the harness's current local time.
    fn cluster_now_ms(&self) -> u64 {
        self.born_ms + (self.harness.sim().now_ms() - self.epoch_ms)
    }

    /// Accepts an invocation arriving at cluster time `at_ms`; it
    /// launches once the machine steps past that time and a concurrency
    /// slot is free. `trace` carries the sampled trace identity (pass
    /// `None` for unsampled invocations — nothing extra is recorded).
    pub fn dispatch(
        &mut self,
        at_ms: u64,
        function: Benchmark,
        tenant: TenantId,
        trace: Option<TraceId>,
    ) {
        self.queue.push_back(QueuedArrival {
            launch_at_ms: at_ms,
            function,
            tenant,
            trace,
            moves: 0,
        });
        self.dispatched += 1;
    }

    /// Removes up to `count` queued-but-not-launched invocations from
    /// the back of the queue (the most recently routed work) so they
    /// can be re-dispatched elsewhere. Returned in ascending
    /// arrival-time order. The donor's dispatch count is rolled back:
    /// the invocation is accounted to whichever machine finally runs
    /// it.
    pub(crate) fn shed_queued(&mut self, count: usize) -> Vec<QueuedArrival> {
        let take = count.min(self.queue.len());
        // split_off keeps the tail in queue order — the same order the
        // old pop_back-then-reverse loop produced.
        let shed: Vec<QueuedArrival> = self.queue.split_off(self.queue.len() - take).into();
        self.dispatched -= shed.len();
        shed
    }

    /// Accepts invocations shed by another machine, keeping the queue
    /// sorted by launch time (stolen work may predate queued work).
    pub(crate) fn accept_stolen(&mut self, arrivals: Vec<QueuedArrival>) {
        for mut arrival in arrivals {
            arrival.moves += 1;
            let at = self
                .queue
                .partition_point(|queued| queued.launch_at_ms <= arrival.launch_at_ms);
            self.queue.insert(at, arrival);
            self.dispatched += 1;
        }
    }

    /// Puts the machine into drain: its background fillers stop being
    /// backfilled and the scheduler stops routing work here. Once
    /// [`Machine::outstanding`] reaches zero the cluster retires it.
    pub fn begin_drain(&mut self) {
        self.draining = true;
        self.harness.drain();
    }

    /// Whether the machine is draining toward retirement.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Advances the machine to cluster time `cluster_ms`, launching
    /// queued arrivals at their arrival quantum (while concurrency
    /// slots last) and pricing every completion into the machine's
    /// [`BillingShard`]. Each completion's startup probe also refreshes
    /// [`MachineSnapshot::predicted_slowdown`] — the free §5.1
    /// scheduling signal.
    ///
    /// Idle stretches cost O(1): whenever the machine has nothing
    /// active (no serving work, no background fillers), the harness
    /// fast-forwards to the next queued launch or to the target in one
    /// jump ([`litmus_platform::CoRunHarness::fast_forward_to`]) —
    /// bit-identical to stepping every quantum, because an idle
    /// simulator's state is a fixed point and launches fire at the
    /// same local quantum either way. This also makes stepping
    /// granularity-invariant: `step_to(a)` then `step_to(b)` equals
    /// `step_to(b)` directly, which is what lets the event-driven
    /// engine merge quiet slices.
    ///
    /// # Errors
    ///
    /// Propagates launch, backfill and pricing failures.
    pub fn step_to(&mut self, cluster_ms: u64, ctx: &ServingContext) -> Result<()> {
        let target = self.local_ms(cluster_ms);
        while self.harness.sim().now_ms() < target {
            self.launch_due(ctx)?;
            if self.harness.sim().active_instances() == 0 {
                // Nothing can complete before the next queued launch
                // (launch_due above drained everything already due), so
                // jump straight there — or to the target if the queue
                // is empty or due later.
                let now = self.harness.sim().now_ms();
                let next = self.queue.front().map_or(target, |queued| {
                    self.local_ms(queued.launch_at_ms).clamp(now, target)
                });
                if next > now {
                    self.harness.fast_forward_to(next)?;
                    continue;
                }
            }
            let events = self.harness.step()?;
            self.quanta += 1;
            self.settle(&events, ctx)?;
        }
        self.launch_due(ctx)?;
        Ok(())
    }

    /// Whether advancing to cluster time `cluster_ms` involves any real
    /// quantum work: active instances (serving or filler), or a queued
    /// arrival that launches before then. When false,
    /// [`Machine::step_to`] is a pure O(1) fast-forward — the test the
    /// event-driven engine uses to keep idle machines off the worker
    /// pool.
    pub fn needs_quanta_before(&self, cluster_ms: u64) -> bool {
        if self.harness.sim().active_instances() > 0 {
            return true;
        }
        self.queue
            .front()
            .is_some_and(|queued| self.local_ms(queued.launch_at_ms) < self.local_ms(cluster_ms))
    }

    /// Launches queued arrivals whose time has come, while the
    /// concurrency cap allows.
    fn launch_due(&mut self, ctx: &ServingContext) -> Result<()> {
        let now = self.harness.sim().now_ms();
        while self.inflight.len() < self.max_inflight {
            let Some(front) = self.queue.front() else {
                break;
            };
            if self.local_ms(front.launch_at_ms) > now {
                break;
            }
            let Some(arrival) = self.queue.pop_front() else {
                break;
            };
            let profile = arrival
                .function
                .profile()
                .scaled(ctx.scale())
                .map_err(litmus_core::CoreError::from)?;
            let id = self.harness.submit(profile)?;
            let launched_cluster_ms = self.cluster_now_ms();
            self.queue_wait_sum_ms +=
                (launched_cluster_ms.saturating_sub(arrival.launch_at_ms)) as f64;
            self.launched += 1;
            self.inflight.insert(
                id,
                InFlight {
                    function: arrival.function,
                    tenant: arrival.tenant,
                    arrived_cluster_ms: arrival.launch_at_ms,
                    launched_cluster_ms,
                    trace: arrival.trace,
                    moves: arrival.moves,
                },
            );
        }
        Ok(())
    }

    /// Prices completions among `events` and updates serving stats.
    fn settle(&mut self, events: &[Event], ctx: &ServingContext) -> Result<()> {
        for &Event::Completed { id, at_ms } in events {
            let Some(done) = self.inflight.remove(&id) else {
                continue; // a background filler, not serving traffic
            };
            let report = self.harness.report(id)?;
            let (invoice, predicted) = ctx.price(&done.function, &report)?;
            self.predicted_slowdown = predicted;
            self.completed += 1;
            // Both times in cluster coordinates: local completion time
            // shifted by the machine's epoch/birth offset.
            let completed_cluster_ms = self.born_ms as f64 + (at_ms - self.epoch_ms as f64);
            self.last_probe_ms = self.last_probe_ms.max(completed_cluster_ms as u64);
            self.latency_sum_ms += completed_cluster_ms - done.arrived_cluster_ms as f64;
            if let Some(trace) = done.trace {
                self.trace_records.push(CompletionRecord {
                    trace,
                    tenant: done.tenant,
                    machine: self.id,
                    arrived_ms: done.arrived_cluster_ms,
                    launched_ms: done.launched_cluster_ms,
                    completed_ms: completed_cluster_ms,
                    cost: invoice.litmus.total(),
                    predicted,
                    moves: done.moves,
                });
            }
            self.shard.fold(done.tenant, &invoice);
        }
        Ok(())
    }

    /// Drains the completion records accumulated since the last call,
    /// in per-machine completion order. Called by the driver (single
    /// thread) after every step, so records never outlive a machine's
    /// retirement.
    pub(crate) fn take_trace_records(&mut self) -> Vec<CompletionRecord> {
        std::mem::take(&mut self.trace_records)
    }

    /// The scheduler-visible state of the machine.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            id: self.id,
            inflight: self.inflight.len(),
            queued: self.queue.len(),
            predicted_slowdown: self.predicted_slowdown,
            probe_age_ms: self.cluster_now_ms().saturating_sub(self.last_probe_ms),
            cores: self.cores,
            dispatched: self.dispatched,
            draining: self.draining,
        }
    }

    /// Executing + queued invocations.
    pub fn outstanding(&self) -> usize {
        self.inflight.len() + self.queue.len()
    }

    /// Full simulator quanta actually stepped by the serving loop —
    /// idle fast-forwards are excluded, so this counts the real
    /// wall-clock work [`Machine::step_to`] performed. Two replays that
    /// agree here did the same co-run evaluations regardless of how
    /// their driver sliced time.
    pub fn quanta_stepped(&self) -> u64 {
        self.quanta
    }

    /// Invocations dispatched here and not re-dispatched away.
    pub fn dispatched(&self) -> usize {
        self.dispatched
    }

    /// Invocations launched into execution here (≥ completed).
    pub fn launched(&self) -> usize {
        self.launched
    }

    /// Invocations completed and billed here.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Sum of completed invocations' arrival→completion latencies, ms.
    pub fn latency_sum_ms(&self) -> f64 {
        self.latency_sum_ms
    }

    /// Sum of launched invocations' arrival→launch waits, ms — the
    /// queueing delay work stealing exists to shrink.
    pub fn queue_wait_sum_ms(&self) -> f64 {
        self.queue_wait_sum_ms
    }

    /// The machine's billing shard.
    pub fn shard(&self) -> &BillingShard {
        &self.shard
    }

    /// The underlying harness, for inspection.
    pub fn harness(&self) -> &CoRunHarness {
        &self.harness
    }
}
