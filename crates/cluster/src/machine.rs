use std::collections::{HashMap, VecDeque};

use litmus_platform::{CoRunEnv, CoRunHarness, HarnessConfig, TenantId};
use litmus_sim::{Event, ExecutionProfile, InstanceId, MachineSpec};
use litmus_workloads::{Benchmark, Language};

use crate::billing::BillingShard;
use crate::context::ServingContext;
use crate::policy::MachineSnapshot;
use crate::Result;

/// Configuration of one serving machine in a [`crate::Cluster`].
///
/// Machines share the cluster's [`MachineSpec`] but may differ in pool
/// size and — crucially for placement experiments — background load:
/// long-lived filler functions time-sharing the same cores, modelling
/// the colocated tenants a real provider has already packed there.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Cores in the machine's serving pool.
    pub cores: usize,
    /// Background filler functions kept alive on the pool (0 = the
    /// machine serves trace traffic only).
    pub background: usize,
    /// Instruction-count scale for background fillers.
    pub background_scale: f64,
    /// Warm-up before the machine joins the cluster, ms.
    pub warmup_ms: u64,
    /// Seed for the background mix (machines get distinct streams).
    pub seed: u64,
}

impl MachineConfig {
    /// A dedicated serving machine: `cores` cores, no background load.
    pub fn new(cores: usize) -> Self {
        MachineConfig {
            cores,
            background: 0,
            background_scale: 0.05,
            warmup_ms: 100,
            seed: 0x5EED,
        }
    }

    /// Sets the background filler count.
    pub fn background(mut self, fillers: usize) -> Self {
        self.background = fillers;
        self
    }

    /// Sets the background profile scale.
    pub fn background_scale(mut self, scale: f64) -> Self {
        self.background_scale = scale;
        self
    }

    /// Sets the warm-up duration, ms.
    pub fn warmup_ms(mut self, ms: u64) -> Self {
        self.warmup_ms = ms;
        self
    }

    /// Sets the background mix seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[derive(Debug, Clone)]
struct QueuedArrival {
    launch_at_ms: u64,
    function: Benchmark,
    tenant: TenantId,
}

#[derive(Debug, Clone)]
struct InFlight {
    function: Benchmark,
    tenant: TenantId,
    arrived_cluster_ms: u64,
}

/// One serving machine: a congested [`CoRunHarness`] plus the
/// scheduler-side bookkeeping the cluster needs — an arrival queue, the
/// in-flight table, the machine's latest Litmus congestion estimate and
/// its local [`BillingShard`].
///
/// Machines are stepped independently (and in parallel) by the
/// [`crate::ClusterDriver`]; nothing here references any other machine.
#[derive(Debug)]
pub struct Machine {
    harness: CoRunHarness,
    cores: usize,
    /// Harness-local sim time corresponding to cluster time 0
    /// (boot + warm-up + initial probe all happen before the epoch).
    epoch_ms: u64,
    queue: VecDeque<QueuedArrival>,
    inflight: HashMap<InstanceId, InFlight>,
    predicted_slowdown: f64,
    shard: BillingShard,
    dispatched: usize,
    completed: usize,
    latency_sum_ms: f64,
}

impl Machine {
    /// Boots the machine: starts the harness (launching and warming any
    /// background fillers), then takes one startup Litmus probe so the
    /// placement policies see a meaningful congestion estimate before
    /// the first invocation completes.
    ///
    /// # Errors
    ///
    /// Propagates harness boot and probe failures.
    pub fn boot(
        spec: MachineSpec,
        config: &MachineConfig,
        probe_language: Language,
        ctx: &ServingContext,
    ) -> Result<Self> {
        let harness_config = HarnessConfig::new(spec)
            .env(CoRunEnv::Shared {
                co_runners: config.background,
                cores: config.cores,
            })
            .mix_scale(config.background_scale)
            .warmup_ms(config.warmup_ms)
            .seed(config.seed);
        let harness = CoRunHarness::start(harness_config)?;
        let mut machine = Machine {
            harness,
            cores: config.cores,
            epoch_ms: 0,
            queue: VecDeque::new(),
            inflight: HashMap::new(),
            predicted_slowdown: 1.0,
            shard: BillingShard::new(),
            dispatched: 0,
            completed: 0,
            latency_sum_ms: 0.0,
        };
        machine.probe(probe_language, ctx)?;
        machine.epoch_ms = machine.harness.sim().now_ms();
        Ok(machine)
    }

    /// Runs a startup-only probe (exactly what a new function's launch
    /// would measure) and refreshes the congestion estimate.
    fn probe(&mut self, language: Language, ctx: &ServingContext) -> Result<()> {
        let mut builder = ExecutionProfile::builder(format!("{}-cluster-probe", language.abbr()));
        for phase in language.startup_phases() {
            builder = builder.startup_phase(phase);
        }
        let profile = builder.build().map_err(litmus_core::CoreError::from)?;
        let report = self.harness.measure(profile)?;
        let baseline = ctx.tables().baseline(language)?;
        let startup = report
            .startup
            .as_ref()
            .ok_or(litmus_core::CoreError::NoStartup)?;
        let reading = litmus_core::LitmusReading::from_startup(baseline, startup)?;
        self.predicted_slowdown = ctx.model().estimate(&reading)?.total_slowdown;
        Ok(())
    }

    /// Accepts an invocation arriving at cluster time `at_ms`; it
    /// launches once the machine steps past that time.
    pub fn dispatch(&mut self, at_ms: u64, function: Benchmark, tenant: TenantId) {
        self.queue.push_back(QueuedArrival {
            launch_at_ms: at_ms,
            function,
            tenant,
        });
        self.dispatched += 1;
    }

    /// Advances the machine to cluster time `cluster_ms`, launching
    /// queued arrivals at their arrival quantum and pricing every
    /// completion into the machine's [`BillingShard`]. Each completion's
    /// startup probe also refreshes [`MachineSnapshot::predicted_slowdown`]
    /// — the free §5.1 scheduling signal.
    ///
    /// # Errors
    ///
    /// Propagates launch, backfill and pricing failures.
    pub fn step_to(&mut self, cluster_ms: u64, ctx: &ServingContext) -> Result<()> {
        let target = self.epoch_ms + cluster_ms;
        while self.harness.sim().now_ms() < target {
            self.launch_due(ctx)?;
            let events = self.harness.step()?;
            self.settle(&events, ctx)?;
        }
        self.launch_due(ctx)?;
        Ok(())
    }

    /// Launches every queued arrival whose time has come.
    fn launch_due(&mut self, ctx: &ServingContext) -> Result<()> {
        let now = self.harness.sim().now_ms();
        while let Some(front) = self.queue.front() {
            if front.launch_at_ms + self.epoch_ms > now {
                break;
            }
            let arrival = self.queue.pop_front().expect("front exists");
            let profile = arrival
                .function
                .profile()
                .scaled(ctx.scale())
                .map_err(litmus_core::CoreError::from)?;
            let id = self.harness.submit(profile)?;
            self.inflight.insert(
                id,
                InFlight {
                    function: arrival.function,
                    tenant: arrival.tenant,
                    arrived_cluster_ms: arrival.launch_at_ms,
                },
            );
        }
        Ok(())
    }

    /// Prices completions among `events` and updates serving stats.
    fn settle(&mut self, events: &[Event], ctx: &ServingContext) -> Result<()> {
        for &Event::Completed { id, at_ms } in events {
            let Some(done) = self.inflight.remove(&id) else {
                continue; // a background filler, not serving traffic
            };
            let report = self.harness.report(id)?;
            let (invoice, predicted) = ctx.price(&done.function, &report)?;
            self.predicted_slowdown = predicted;
            self.shard.fold(done.tenant, &invoice);
            self.completed += 1;
            self.latency_sum_ms += at_ms - (done.arrived_cluster_ms + self.epoch_ms) as f64;
        }
        Ok(())
    }

    /// The scheduler-visible state of the machine.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            inflight: self.inflight.len(),
            queued: self.queue.len(),
            predicted_slowdown: self.predicted_slowdown,
            cores: self.cores,
            dispatched: self.dispatched,
        }
    }

    /// Executing + queued invocations.
    pub fn outstanding(&self) -> usize {
        self.inflight.len() + self.queue.len()
    }

    /// Invocations ever dispatched here.
    pub fn dispatched(&self) -> usize {
        self.dispatched
    }

    /// Invocations completed and billed here.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Sum of completed invocations' arrival→completion latencies, ms.
    pub fn latency_sum_ms(&self) -> f64 {
        self.latency_sum_ms
    }

    /// The machine's billing shard.
    pub fn shard(&self) -> &BillingShard {
        &self.shard
    }

    /// The underlying harness, for inspection.
    pub fn harness(&self) -> &CoRunHarness {
        &self.harness
    }
}
