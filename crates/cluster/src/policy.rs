use crate::machine::MachineId;

/// What a placement policy may observe about one machine at dispatch
/// time. All signals are provider-side and free: queue depths come from
/// the scheduler's own bookkeeping, and the congestion estimate comes
/// from the latest Litmus probe (paper §5.1 — every function startup
/// doubles as a congestion reading, so routing information costs
/// nothing extra).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSnapshot {
    /// The machine's stable id (positions shift as autoscaling adds
    /// and retires machines; ids never do).
    pub id: MachineId,
    /// Invocations currently executing on the machine.
    pub inflight: usize,
    /// Invocations dispatched to the machine but not yet launched.
    pub queued: usize,
    /// Presumed slowdown of a typical function on this machine (≥ 1),
    /// from the machine's latest Litmus probe mapped through the
    /// discount model.
    pub predicted_slowdown: f64,
    /// How long ago (cluster ms) the probe behind
    /// [`MachineSnapshot::predicted_slowdown`] was taken — the
    /// staleness signal [`ProbeFreshness`] decays confidence by.
    pub probe_age_ms: u64,
    /// Cores in the machine's serving pool.
    pub cores: usize,
    /// Total invocations ever dispatched to the machine.
    pub dispatched: usize,
    /// Whether the machine is draining toward retirement (the driver
    /// never offers draining machines to a policy, but the stealing
    /// pass sees them as donors).
    pub draining: bool,
}

impl MachineSnapshot {
    /// Outstanding work on the machine (executing + waiting).
    pub fn load(&self) -> usize {
        self.inflight + self.queued
    }

    /// Forward-adjusted congestion score: the probe's presumed slowdown
    /// scaled by the per-core work outstanding on the machine.
    ///
    /// A probe reading describes the machine *as of its last
    /// completion*; everything routed there since is invisible to it.
    /// Left uncorrected, that staleness herds the whole fleet onto
    /// whichever machine last looked calm, saturating it before its
    /// next probe can say otherwise. Scaling by outstanding work per
    /// core folds the scheduler's own (exact, free) knowledge of
    /// routed-but-unmeasured load into the probe's (measured, stale)
    /// congestion estimate.
    pub fn congestion_score(&self) -> f64 {
        self.predicted_slowdown * (1.0 + self.load() as f64 / self.cores.max(1) as f64)
    }
}

/// A placement policy: given a snapshot of every machine, pick the one
/// to route the next invocation to.
///
/// Policies must be deterministic — identical snapshot sequences must
/// produce identical placement sequences — so cluster replays are
/// exactly reproducible.
pub trait PlacementPolicy {
    /// Short name for reports (`round-robin`, `litmus-aware`, …).
    fn name(&self) -> &'static str;

    /// Index of the machine to place the next invocation on.
    /// `machines` is never empty.
    fn choose(&mut self, machines: &[MachineSnapshot]) -> usize;
}

/// Cycles through machines in index order, ignoring all signals — the
/// baseline any smarter policy must beat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates the policy, starting at machine 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn choose(&mut self, machines: &[MachineSnapshot]) -> usize {
        let idx = self.next % machines.len();
        self.next = (self.next + 1) % machines.len();
        idx
    }
}

/// Routes to the machine with the fewest outstanding invocations
/// (ties broken by lowest index) — classic queue-depth balancing,
/// blind to how congested each machine actually is.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// Creates the policy.
    pub fn new() -> Self {
        LeastLoaded
    }
}

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn choose(&mut self, machines: &[MachineSnapshot]) -> usize {
        machines
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.load())
            .map(|(idx, _)| idx)
            .expect("machines is non-empty") // lint:allow(panic-in-lib): Cluster::new rejects empty machine sets
    }
}

/// Age-based confidence decay for probe readings: a probe older than
/// its half-life counts half toward the machine's score, with the
/// other half taken from the fleet-mean prediction. A reading of age 0
/// is trusted fully; an ancient one says nothing the fleet average
/// doesn't.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeFreshness {
    /// Probe age at which confidence has halved, ms (≥ 1).
    pub half_life_ms: u64,
}

impl ProbeFreshness {
    /// Confidence weight in `(0, 1]` for a probe of `age_ms`.
    fn weight(&self, age_ms: u64) -> f64 {
        0.5f64.powf(age_ms as f64 / self.half_life_ms.max(1) as f64)
    }
}

/// Routes to the machine whose latest Litmus probe predicts the
/// smallest slowdown — the paper's §5.1 observation operationalised:
/// congestion readings the provider already collects for pricing double
/// as the scheduling signal.
///
/// The raw probe reading is forward-adjusted by outstanding work (see
/// [`MachineSnapshot::congestion_score`]) so stale readings cannot herd
/// traffic, and near-ties (within 1%) fall back to queue depth, then
/// index. With [`LitmusAware::freshness`] enabled, each probe is
/// additionally blended toward the fleet-mean prediction by its age
/// (half-life decay), so an outlier reading loses influence as it goes
/// stale; the default keeps today's behavior (full trust at any age).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LitmusAware {
    freshness: Option<ProbeFreshness>,
}

impl LitmusAware {
    /// Creates the policy with freshness decay off (every probe fully
    /// trusted regardless of age — the historical behavior).
    pub fn new() -> Self {
        LitmusAware::default()
    }

    /// Enables age-based probe decay with the given half-life, ms
    /// (minimum 1).
    pub fn freshness(mut self, half_life_ms: u64) -> Self {
        self.freshness = Some(ProbeFreshness {
            half_life_ms: half_life_ms.max(1),
        });
        self
    }

    /// The configured freshness decay, if any.
    pub fn freshness_config(&self) -> Option<ProbeFreshness> {
        self.freshness
    }
}

impl PlacementPolicy for LitmusAware {
    fn name(&self) -> &'static str {
        "litmus-aware"
    }

    fn choose(&mut self, machines: &[MachineSnapshot]) -> usize {
        match self.freshness {
            // The historical allocation-free path: raw probes,
            // forward-adjusted by outstanding work.
            None => {
                let best = machines
                    .iter()
                    .map(MachineSnapshot::congestion_score)
                    .fold(f64::INFINITY, f64::min);
                machines
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.congestion_score() <= best * 1.01)
                    .min_by_key(|(idx, m)| (m.load(), *idx))
                    .map(|(idx, _)| idx)
                    .expect("machines is non-empty") // lint:allow(panic-in-lib): Cluster::new rejects empty machine sets
            }
            Some(decay) => {
                // Allocation-free like the historical arm: scores are
                // recomputed in the tie-filter pass instead of cached.
                let mean = machines.iter().map(|m| m.predicted_slowdown).sum::<f64>()
                    / machines.len() as f64;
                let score = |m: &MachineSnapshot| {
                    let blended =
                        mean + (m.predicted_slowdown - mean) * decay.weight(m.probe_age_ms);
                    blended * (1.0 + m.load() as f64 / m.cores.max(1) as f64)
                };
                let best = machines.iter().map(score).fold(f64::INFINITY, f64::min);
                machines
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| score(m) <= best * 1.01)
                    .min_by_key(|(idx, m)| (m.load(), *idx))
                    .map(|(idx, _)| idx)
                    .expect("machines is non-empty") // lint:allow(panic-in-lib): Cluster::new rejects empty machine sets
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(inflight: usize, slowdown: f64) -> MachineSnapshot {
        MachineSnapshot {
            id: MachineId(0),
            inflight,
            queued: 0,
            predicted_slowdown: slowdown,
            probe_age_ms: 0,
            cores: 8,
            dispatched: 0,
            draining: false,
        }
    }

    fn aged(slowdown: f64, probe_age_ms: u64) -> MachineSnapshot {
        MachineSnapshot {
            probe_age_ms,
            ..snapshot(0, slowdown)
        }
    }

    #[test]
    fn round_robin_cycles() {
        let machines = vec![snapshot(0, 1.0); 3];
        let mut policy = RoundRobin::new();
        let picks: Vec<_> = (0..7).map(|_| policy.choose(&machines)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_prefers_short_queues_then_index() {
        let machines = vec![snapshot(4, 1.0), snapshot(1, 9.0), snapshot(1, 1.0)];
        assert_eq!(LeastLoaded::new().choose(&machines), 1);
    }

    #[test]
    fn litmus_aware_prefers_calm_machines() {
        let machines = vec![snapshot(0, 3.0), snapshot(0, 1.2), snapshot(0, 1.9)];
        assert_eq!(LitmusAware::new().choose(&machines), 1);
    }

    #[test]
    fn litmus_aware_breaks_near_ties_by_load() {
        // Machines 0 and 2 score within 1% of each other: pick the
        // idler one.
        let machines = vec![snapshot(2, 1.500), snapshot(9, 2.8), snapshot(2, 1.505)];
        assert_eq!(LitmusAware::new().choose(&machines), 0);
    }

    #[test]
    fn litmus_aware_discounts_stale_calm_readings_under_load() {
        // Machine 0's probe looks calm but 16 invocations are already
        // outstanding on its 8 cores: score 1.0·(1+2) = 3.0. Machine 1
        // reads congested (1.8) but is idle: score 1.8. The policy must
        // not herd onto the stale-calm machine.
        let machines = vec![snapshot(16, 1.0), snapshot(0, 1.8)];
        assert_eq!(LitmusAware::new().choose(&machines), 1);
    }

    #[test]
    fn freshness_decays_a_stale_outlier_toward_the_fleet_mean() {
        // Machine 0's probe reads an outlier-calm 1.0, but it is 10
        // half-lives stale; machines 1 and 2 have fresh readings of
        // 1.3 and 2.0. Raw scoring herds onto the stale outlier;
        // freshness decay blends it to ~the fleet mean (≈ 1.43) and
        // routes to the genuinely calm machine 1 instead.
        let machines = vec![aged(1.0, 5_000), aged(1.3, 0), aged(2.0, 0)];
        assert_eq!(LitmusAware::new().choose(&machines), 0);
        assert_eq!(LitmusAware::new().freshness(500).choose(&machines), 1);
    }

    #[test]
    fn freshness_trusts_fresh_probes_like_the_default() {
        // All probes fresh: decay weight is 1 and the decayed policy
        // must pick exactly what the default picks.
        let machines = vec![snapshot(2, 1.6), snapshot(0, 1.9), snapshot(1, 1.2)];
        assert_eq!(
            LitmusAware::new().freshness(1_000).choose(&machines),
            LitmusAware::new().choose(&machines),
        );
    }

    #[test]
    fn freshness_weight_halves_per_half_life() {
        let decay = ProbeFreshness { half_life_ms: 400 };
        assert_eq!(decay.weight(0), 1.0);
        assert!((decay.weight(400) - 0.5).abs() < 1e-12);
        assert!((decay.weight(800) - 0.25).abs() < 1e-12);
        // An ancient probe's influence vanishes: the stale outlier
        // converges to the fleet mean (≈ 1.73 here), so any fresh
        // reading below that mean out-competes it.
        let mut policy = LitmusAware::new().freshness(100);
        let machines = vec![aged(1.0, 100_000), aged(1.2, 0), aged(3.0, 0)];
        assert_eq!(policy.choose(&machines), 1);
        // …while at age 0 the same outlier is trusted and wins.
        let machines = vec![aged(1.0, 0), aged(1.2, 0), aged(3.0, 0)];
        assert_eq!(policy.choose(&machines), 0);
    }

    #[test]
    fn queued_work_counts_toward_load() {
        let mut busy = snapshot(1, 1.0);
        busy.queued = 5;
        assert_eq!(busy.load(), 6);
        let machines = vec![busy, snapshot(2, 1.0)];
        assert_eq!(LeastLoaded::new().choose(&machines), 1);
    }
}
