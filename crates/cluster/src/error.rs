use std::error::Error;
use std::fmt;

use litmus_core::CoreError;
use litmus_platform::PlatformError;
use litmus_sim::SimError;

/// Errors produced by the cluster serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A platform-layer operation (harness boot, stepping) failed.
    Platform(PlatformError),
    /// A pricing-core operation failed.
    Core(CoreError),
    /// A simulation operation failed.
    Sim(SimError),
    /// The cluster was configured with zero machines.
    NoMachines,
    /// A worker thread panicked while stepping its machines (the panic
    /// message is preserved when it was a string).
    WorkerPanic(String),
    /// An invocation arrived for a function the serving context was not
    /// warmed with (no solo oracle entry).
    UnknownFunction(&'static str),
    /// An autoscaler configuration had incoherent water marks or
    /// machine bounds.
    InvalidAutoscale(&'static str),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Platform(e) => write!(f, "platform error: {e}"),
            ClusterError::Core(e) => write!(f, "pricing error: {e}"),
            ClusterError::Sim(e) => write!(f, "simulation error: {e}"),
            ClusterError::NoMachines => {
                write!(f, "cluster configured with zero machines")
            }
            ClusterError::WorkerPanic(msg) => {
                write!(f, "cluster worker thread panicked: {msg}")
            }
            ClusterError::UnknownFunction(name) => write!(
                f,
                "function {name} missing from the serving context's solo \
                 oracle cache"
            ),
            ClusterError::InvalidAutoscale(why) => {
                write!(f, "invalid autoscaler configuration: {why}")
            }
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Platform(e) => Some(e),
            ClusterError::Core(e) => Some(e),
            ClusterError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for ClusterError {
    fn from(e: PlatformError) -> Self {
        ClusterError::Platform(e)
    }
}

impl From<CoreError> for ClusterError {
    fn from(e: CoreError) -> Self {
        ClusterError::Core(e)
    }
}

impl From<SimError> for ClusterError {
    fn from(e: SimError) -> Self {
        ClusterError::Sim(e)
    }
}

impl From<litmus_forecast::ForecastError> for ClusterError {
    fn from(e: litmus_forecast::ForecastError) -> Self {
        let litmus_forecast::ForecastError::InvalidConfig(why) = e;
        ClusterError::InvalidAutoscale(why)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let e: ClusterError = SimError::EmptyProfile.into();
        assert!(e.source().is_some());
        let e: ClusterError = PlatformError::EmptyMix.into();
        assert!(e.to_string().contains("platform"));
        let e: ClusterError = CoreError::NoStartup.into();
        assert!(e.to_string().contains("startup"));
    }

    #[test]
    fn messages_are_informative() {
        assert!(ClusterError::NoMachines.to_string().contains("zero"));
        let e = ClusterError::InvalidAutoscale("low above high");
        assert!(e.to_string().contains("low above high"));
        let e = ClusterError::UnknownFunction("auth-py");
        assert!(e.to_string().contains("auth-py"));
        let e = ClusterError::WorkerPanic("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
