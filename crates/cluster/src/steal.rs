//! Slice-boundary work stealing.
//!
//! Dispatch-time placement (even Litmus-aware placement) commits an
//! invocation to a machine using the signals available *then*; a burst
//! later in the same slice, a stale probe or a concurrency cap can
//! leave deep queued backlogs on machines that looked calm at routing
//! time. The stealing pass runs at every slice boundary and
//! re-dispatches *queued-but-not-launched* invocations — never
//! executing ones, so nothing is ever billed twice — from machines
//! whose backlog exceeds a threshold to the machine with the best
//! forward-adjusted probe prediction
//! ([`MachineSnapshot::congestion_score`]).
//!
//! The pass is deterministic: donors are visited in machine order,
//! receivers chosen by `(score, load, id)`, so replays remain exactly
//! reproducible.

use crate::machine::MachineId;
use crate::policy::MachineSnapshot;
use crate::Cluster;

/// Configuration of the slice-boundary stealing pass.
///
/// # Examples
///
/// ```
/// use litmus_cluster::StealingConfig;
///
/// let config = StealingConfig::default().backlog_threshold(2);
/// assert_eq!(config.backlog_threshold, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealingConfig {
    /// Queued-but-not-launched invocations a machine may keep before
    /// the excess becomes eligible for re-dispatch.
    pub backlog_threshold: usize,
    /// Upper bound on invocations moved per slice boundary, keeping
    /// the pass O(budget) even under pathological skew.
    pub max_moves_per_slice: usize,
}

impl Default for StealingConfig {
    fn default() -> Self {
        StealingConfig {
            backlog_threshold: 4,
            max_moves_per_slice: 256,
        }
    }
}

impl StealingConfig {
    /// Sets the backlog threshold (minimum 1 — a threshold of 0 would
    /// bounce every queued arrival around the fleet each slice).
    pub fn backlog_threshold(mut self, threshold: usize) -> Self {
        self.backlog_threshold = threshold.max(1);
        self
    }

    /// Sets the per-slice move budget (minimum 1).
    pub fn max_moves_per_slice(mut self, budget: usize) -> Self {
        self.max_moves_per_slice = budget.max(1);
        self
    }
}

/// One re-dispatch decision taken by the stealing pass, as surfaced in
/// [`crate::ClusterReport::steal_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealEvent {
    /// Cluster time of the slice boundary the steal happened at, ms.
    pub at_ms: u64,
    /// Machine the backlog was shed from.
    pub from: MachineId,
    /// Machine the backlog was re-dispatched to.
    pub to: MachineId,
    /// Invocations moved.
    pub moved: usize,
}

/// Receiver choice: the non-draining machine (other than `donor`) with
/// the best forward-adjusted congestion score that still has queue room
/// below the threshold. Returns `None` when nobody qualifies.
fn best_receiver(
    snaps: &[MachineSnapshot],
    donor: usize,
    threshold: usize,
    donor_score: f64,
    require_better: bool,
) -> Option<usize> {
    snaps
        .iter()
        .enumerate()
        .filter(|(idx, snap)| {
            *idx != donor
                && !snap.draining
                && snap.queued < threshold
                && (!require_better || snap.congestion_score() < donor_score)
        })
        .min_by(|(_, a), (_, b)| {
            a.congestion_score()
                .total_cmp(&b.congestion_score())
                .then_with(|| (a.load(), a.id).cmp(&(b.load(), b.id)))
        })
        .map(|(idx, _)| idx)
}

/// Runs one stealing pass over `cluster` at slice boundary `now_ms`,
/// appending a [`StealEvent`] per transfer, and returns the number of
/// invocations re-dispatched.
pub(crate) fn steal_pass(
    cluster: &mut Cluster,
    config: &StealingConfig,
    now_ms: u64,
    events: &mut Vec<StealEvent>,
) -> usize {
    let mut snaps = cluster.snapshots();
    if snaps.len() < 2 {
        return 0;
    }
    let threshold = config.backlog_threshold.max(1);
    let mut budget = config.max_moves_per_slice;
    let mut moved_total = 0;

    for donor in 0..snaps.len() {
        if budget == 0 {
            break;
        }
        // Draining machines shed their whole backlog; everyone else
        // keeps `threshold` queued invocations.
        let keep = if snaps[donor].draining { 0 } else { threshold };
        let mut excess = snaps[donor].queued.saturating_sub(keep);
        while excess > 0 && budget > 0 {
            let donor_score = snaps[donor].congestion_score();
            // A drain must empty even onto worse-scoring machines; a
            // regular steal must strictly improve the prediction, or
            // moving work just reshuffles the hot spot.
            let require_better = !snaps[donor].draining;
            let Some(receiver) =
                best_receiver(&snaps, donor, threshold, donor_score, require_better)
            else {
                break;
            };
            let room = threshold - snaps[receiver].queued;
            let take = excess.min(room).min(budget);
            let shed = cluster.transfer_queued(donor, receiver, take);
            if shed == 0 {
                break;
            }
            snaps[donor].queued -= shed;
            snaps[donor].dispatched -= shed;
            snaps[receiver].queued += shed;
            snaps[receiver].dispatched += shed;
            events.push(StealEvent {
                at_ms: now_ms,
                from: snaps[donor].id,
                to: snaps[receiver].id,
                moved: shed,
            });
            excess -= shed;
            budget -= shed;
            moved_total += shed;
        }
    }
    moved_total
}
