//! Property coverage for the forecasting layer: seasonal recovery of
//! planted periodic structure, and bit-identical state across chunked
//! and whole-stream observation feeds.

use litmus_forecast::{
    backtest_series, BacktestConfig, Ewma, Forecaster, HoltLinear, SeasonalHoltWinters,
};
use proptest::prelude::*;

/// Deterministic uniform-ish noise in `[-1, 1]` from a tiny LCG, so
/// the planted series is a pure function of the proptest inputs.
fn noise(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// A sinusoid of the given period with planted noise, offset so the
/// series stays positive (it models an arrival rate).
fn planted_sinusoid(period: usize, cycles: usize, amplitude: f64, seed: u64) -> Vec<f64> {
    let n = period * cycles;
    noise(seed, n)
        .into_iter()
        .enumerate()
        .map(|(i, eps)| {
            let phase = i as f64 / period as f64 * std::f64::consts::TAU;
            20.0 + amplitude * phase.sin() + eps * 0.1 * amplitude
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Seasonal Holt–Winters keyed to the planted period beats the
    /// level-only EWMA baseline on a noisy sinusoid: the seasonal
    /// indices recover the cycle the level alone must chase.
    #[test]
    fn seasonal_model_recovers_a_planted_period(
        period in 4usize..16,
        seed in 0u64..1_000,
        amplitude in 5.0f64..15.0,
    ) {
        let series = planted_sinusoid(period, 24, amplitude, seed);
        let config = BacktestConfig {
            horizon: 1,
            warmup: period * 4,
            ..BacktestConfig::default()
        };
        let mut flat = Ewma::new(0.3).unwrap();
        let mut seasonal = SeasonalHoltWinters::new(0.15, 0.02, 0.35, period).unwrap();
        let flat_report = backtest_series(&mut flat, &series, config).unwrap();
        let seasonal_report = backtest_series(&mut seasonal, &series, config).unwrap();
        prop_assert!(
            seasonal_report.mae < flat_report.mae,
            "period {}: seasonal mae {} !< ewma mae {}",
            period,
            seasonal_report.mae,
            flat_report.mae
        );
    }

    /// Feeding the same observations in arbitrary chunks leaves every
    /// forecaster in bit-identical state: `observe_all` over any
    /// partition equals one whole-stream feed.
    #[test]
    fn forecasters_are_bit_identical_across_chunked_feeds(
        values in proptest::collection::vec(0.0f64..500.0, 3..120),
        chunk in 1usize..17,
    ) {
        let fresh: Vec<Box<dyn Forecaster>> = vec![
            Box::new(Ewma::new(0.37).unwrap()),
            Box::new(HoltLinear::new(0.45, 0.18).unwrap()),
            Box::new(SeasonalHoltWinters::new(0.3, 0.1, 0.25, 5).unwrap()),
        ];
        let mut whole: Vec<Box<dyn Forecaster>> = vec![
            Box::new(Ewma::new(0.37).unwrap()),
            Box::new(HoltLinear::new(0.45, 0.18).unwrap()),
            Box::new(SeasonalHoltWinters::new(0.3, 0.1, 0.25, 5).unwrap()),
        ];
        let mut chunked = fresh;
        for (w, c) in whole.iter_mut().zip(chunked.iter_mut()) {
            w.observe_all(&values);
            for piece in values.chunks(chunk) {
                c.observe_all(piece);
            }
            prop_assert_eq!(w.len(), c.len());
            for horizon in 1..=8usize {
                let a = w.predict(horizon);
                let b = c.predict(horizon);
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "{}: horizon {} diverged: {} vs {}",
                    w.name(), horizon, a, b
                );
            }
        }
    }

    /// Backtests are deterministic: two runs over the same inputs
    /// produce the identical report.
    #[test]
    fn backtests_are_deterministic(
        values in proptest::collection::vec(0.0f64..200.0, 8..80),
        horizon in 1usize..6,
    ) {
        let config = BacktestConfig { horizon, warmup: 2, ..BacktestConfig::default() };
        let mut a = HoltLinear::new(0.4, 0.2).unwrap();
        let mut b = HoltLinear::new(0.4, 0.2).unwrap();
        let ra = backtest_series(&mut a, &values, config).unwrap();
        let rb = backtest_series(&mut b, &values, config).unwrap();
        prop_assert_eq!(ra, rb);
    }
}
