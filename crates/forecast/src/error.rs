use std::fmt;

/// Errors from forecaster construction and backtesting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForecastError {
    /// A smoothing parameter, period, horizon or bucket width was
    /// incoherent.
    InvalidConfig(&'static str),
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::InvalidConfig(why) => write!(f, "invalid forecast config: {why}"),
        }
    }
}

impl std::error::Error for ForecastError {}
