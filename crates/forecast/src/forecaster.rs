//! The online [`Forecaster`] trait and its three deterministic
//! exponential-smoothing implementations.
//!
//! All three models consume one observation per fixed-width interval
//! (an arrival count or rate) in `observe` and answer point forecasts
//! any whole number of intervals ahead in `predict`. State is a
//! handful of `f64`s updated with the textbook recursions, so a
//! forecaster is bit-identical across runs, chunked feeds and
//! machines — the property cluster replays rely on.

use crate::error::ForecastError;
use crate::Result;

fn check_weight(value: f64, what: &'static str) -> Result<()> {
    if !(value.is_finite() && value > 0.0 && value <= 1.0) {
        return Err(ForecastError::InvalidConfig(what));
    }
    Ok(())
}

/// An online forecaster over a stream of equally-spaced observations.
///
/// Implementations must be deterministic: the same observation
/// sequence must produce the same state and forecasts, regardless of
/// how the sequence was chunked when fed (the default
/// [`Forecaster::observe_all`] is a plain loop, and implementations
/// must not override it with anything that breaks that equivalence).
pub trait Forecaster: std::fmt::Debug {
    /// Short name for reports (`ewma`, `holt-linear`, …).
    fn name(&self) -> &'static str;

    /// Consumes the next observation in the series.
    fn observe(&mut self, value: f64);

    /// Point forecast `horizon` intervals past the last observation
    /// (`horizon ≥ 1`; 0 is treated as 1). Before any observation the
    /// forecast is 0. Trending models may forecast below zero on
    /// falling series; callers modelling non-negative quantities clamp.
    fn predict(&self, horizon: usize) -> f64;

    /// Observations consumed so far.
    fn len(&self) -> u64;

    /// Whether nothing has been observed yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feeds a slice of observations in order — exactly equivalent to
    /// calling [`Forecaster::observe`] per element.
    fn observe_all(&mut self, values: &[f64]) {
        for &value in values {
            self.observe(value);
        }
    }
}

impl<F: Forecaster + ?Sized> Forecaster for &mut F {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn observe(&mut self, value: f64) {
        (**self).observe(value);
    }

    fn predict(&self, horizon: usize) -> f64 {
        (**self).predict(horizon)
    }

    fn len(&self) -> u64 {
        (**self).len()
    }
}

impl<F: Forecaster + ?Sized> Forecaster for Box<F> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn observe(&mut self, value: f64) {
        (**self).observe(value);
    }

    fn predict(&self, horizon: usize) -> f64 {
        (**self).predict(horizon)
    }

    fn len(&self) -> u64 {
        (**self).len()
    }
}

/// Exponentially-weighted moving average — the level-only baseline
/// every richer model must beat. `level ← α·x + (1-α)·level`; the
/// forecast at any horizon is the level.
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    level: f64,
    seen: u64,
}

impl Ewma {
    /// Creates the smoother. `alpha` in `(0, 1]` weighs the newest
    /// observation.
    ///
    /// # Errors
    ///
    /// [`ForecastError::InvalidConfig`] for `alpha` outside `(0, 1]`.
    pub fn new(alpha: f64) -> Result<Self> {
        check_weight(alpha, "ewma alpha must be in (0, 1]")?;
        Ok(Ewma {
            alpha,
            level: 0.0,
            seen: 0,
        })
    }

    /// The current level estimate.
    pub fn level(&self) -> f64 {
        self.level
    }
}

impl Forecaster for Ewma {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn observe(&mut self, value: f64) {
        if self.seen == 0 {
            self.level = value;
        } else {
            self.level = self.alpha * value + (1.0 - self.alpha) * self.level;
        }
        self.seen += 1;
    }

    fn predict(&self, _horizon: usize) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.level
        }
    }

    fn len(&self) -> u64 {
        self.seen
    }
}

/// Holt's linear (double exponential) smoothing: a level plus a trend,
/// so ramps are extrapolated instead of chased. The second observation
/// initialises the trend to the first difference.
#[derive(Debug, Clone, PartialEq)]
pub struct HoltLinear {
    alpha: f64,
    beta: f64,
    level: f64,
    trend: f64,
    seen: u64,
}

impl HoltLinear {
    /// Creates the smoother. `alpha` smooths the level, `beta` the
    /// trend; both in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// [`ForecastError::InvalidConfig`] for weights outside `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        check_weight(alpha, "holt alpha must be in (0, 1]")?;
        check_weight(beta, "holt beta must be in (0, 1]")?;
        Ok(HoltLinear {
            alpha,
            beta,
            level: 0.0,
            trend: 0.0,
            seen: 0,
        })
    }

    /// The current level estimate.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The current per-interval trend estimate.
    pub fn trend(&self) -> f64 {
        self.trend
    }
}

impl Forecaster for HoltLinear {
    fn name(&self) -> &'static str {
        "holt-linear"
    }

    fn observe(&mut self, value: f64) {
        match self.seen {
            0 => self.level = value,
            1 => {
                self.trend = value - self.level;
                self.level = value;
            }
            _ => {
                let prev = self.level;
                self.level = self.alpha * value + (1.0 - self.alpha) * (self.level + self.trend);
                self.trend = self.beta * (self.level - prev) + (1.0 - self.beta) * self.trend;
            }
        }
        self.seen += 1;
    }

    fn predict(&self, horizon: usize) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        self.level + horizon.max(1) as f64 * self.trend
    }

    fn len(&self) -> u64 {
        self.seen
    }
}

/// Additive Holt–Winters: level + trend + a seasonal index per slot of
/// a configurable period — the model matched to the Azure trace's
/// strong minute-of-day cycle. Seasonal indices start at zero and are
/// learned online (`γ`-smoothed deviations from the level), so the
/// model degrades gracefully to Holt on aperiodic input and needs no
/// warm-up buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SeasonalHoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    seen: u64,
}

impl SeasonalHoltWinters {
    /// Creates the smoother: `alpha`/`beta` as in [`HoltLinear`],
    /// `gamma` in `(0, 1]` smooths the seasonal indices, `period ≥ 2`
    /// is the cycle length in observation intervals.
    ///
    /// # Errors
    ///
    /// [`ForecastError::InvalidConfig`] for weights outside `(0, 1]`
    /// or a period below 2.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Result<Self> {
        check_weight(alpha, "holt-winters alpha must be in (0, 1]")?;
        check_weight(beta, "holt-winters beta must be in (0, 1]")?;
        check_weight(gamma, "holt-winters gamma must be in (0, 1]")?;
        if period < 2 {
            return Err(ForecastError::InvalidConfig(
                "holt-winters period must be at least 2 intervals",
            ));
        }
        Ok(SeasonalHoltWinters {
            alpha,
            beta,
            gamma,
            level: 0.0,
            trend: 0.0,
            seasonal: vec![0.0; period],
            seen: 0,
        })
    }

    /// The seasonal cycle length, in observation intervals.
    pub fn period(&self) -> usize {
        self.seasonal.len()
    }

    /// The learned seasonal index of each slot in the cycle.
    pub fn seasonal(&self) -> &[f64] {
        &self.seasonal
    }
}

impl Forecaster for SeasonalHoltWinters {
    fn name(&self) -> &'static str {
        "seasonal-holt-winters"
    }

    fn observe(&mut self, value: f64) {
        let slot = (self.seen % self.seasonal.len() as u64) as usize;
        if self.seen == 0 {
            self.level = value;
        } else {
            let season = self.seasonal[slot];
            let prev = self.level;
            self.level =
                self.alpha * (value - season) + (1.0 - self.alpha) * (self.level + self.trend);
            self.trend = self.beta * (self.level - prev) + (1.0 - self.beta) * self.trend;
            self.seasonal[slot] = self.gamma * (value - self.level) + (1.0 - self.gamma) * season;
        }
        self.seen += 1;
    }

    fn predict(&self, horizon: usize) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        let horizon = horizon.max(1);
        let slot = ((self.seen + horizon as u64 - 1) % self.seasonal.len() as u64) as usize;
        self.level + horizon as f64 * self.trend + self.seasonal[slot]
    }

    fn len(&self) -> u64 {
        self.seen
    }
}

/// A value-only description of a forecaster — how configurations
/// (e.g. the cluster autoscaler's) carry "which model, which knobs"
/// without holding live state. [`ForecasterSpec::build`] constructs a
/// fresh forecaster, so every replay starts from identical state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ForecasterSpec {
    /// [`Ewma`] with the given `alpha`.
    Ewma {
        /// Newest-observation weight in `(0, 1]`.
        alpha: f64,
    },
    /// [`HoltLinear`] with the given weights.
    HoltLinear {
        /// Level weight in `(0, 1]`.
        alpha: f64,
        /// Trend weight in `(0, 1]`.
        beta: f64,
    },
    /// [`SeasonalHoltWinters`] with the given weights and period.
    SeasonalHoltWinters {
        /// Level weight in `(0, 1]`.
        alpha: f64,
        /// Trend weight in `(0, 1]`.
        beta: f64,
        /// Seasonal weight in `(0, 1]`.
        gamma: f64,
        /// Cycle length in observation intervals (≥ 2).
        period: usize,
    },
}

impl ForecasterSpec {
    /// The name the built forecaster will report.
    pub fn name(&self) -> &'static str {
        match self {
            ForecasterSpec::Ewma { .. } => "ewma",
            ForecasterSpec::HoltLinear { .. } => "holt-linear",
            ForecasterSpec::SeasonalHoltWinters { .. } => "seasonal-holt-winters",
        }
    }

    /// Builds a fresh (zero-state) forecaster from the spec.
    ///
    /// # Errors
    ///
    /// [`ForecastError::InvalidConfig`] for out-of-range weights or
    /// periods, exactly as the concrete constructors report them.
    pub fn build(&self) -> Result<Box<dyn Forecaster + Send>> {
        Ok(match *self {
            ForecasterSpec::Ewma { alpha } => Box::new(Ewma::new(alpha)?),
            ForecasterSpec::HoltLinear { alpha, beta } => Box::new(HoltLinear::new(alpha, beta)?),
            ForecasterSpec::SeasonalHoltWinters {
                alpha,
                beta,
                gamma,
                period,
            } => Box::new(SeasonalHoltWinters::new(alpha, beta, gamma, period)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate_weights_and_period() {
        assert!(Ewma::new(0.3).is_ok());
        for bad in [0.0, -0.1, 1.5, f64::NAN] {
            assert!(Ewma::new(bad).is_err());
            assert!(HoltLinear::new(bad, 0.2).is_err());
            assert!(HoltLinear::new(0.2, bad).is_err());
            assert!(SeasonalHoltWinters::new(bad, 0.1, 0.1, 4).is_err());
        }
        assert!(SeasonalHoltWinters::new(0.3, 0.1, 0.2, 1).is_err());
        assert!(SeasonalHoltWinters::new(0.3, 0.1, 0.2, 2).is_ok());
    }

    #[test]
    fn empty_forecasters_predict_zero() {
        assert_eq!(Ewma::new(0.5).unwrap().predict(3), 0.0);
        assert_eq!(HoltLinear::new(0.5, 0.2).unwrap().predict(1), 0.0);
        assert_eq!(
            SeasonalHoltWinters::new(0.5, 0.2, 0.1, 4)
                .unwrap()
                .predict(1),
            0.0
        );
    }

    #[test]
    fn ewma_converges_to_a_constant_series() {
        let mut ewma = Ewma::new(0.4).unwrap();
        ewma.observe_all(&[5.0; 50]);
        assert_eq!(ewma.predict(1), 5.0);
        assert_eq!(ewma.predict(10), 5.0, "ewma is horizon-flat");
    }

    #[test]
    fn holt_extrapolates_a_linear_ramp_exactly() {
        let mut holt = HoltLinear::new(0.5, 0.3).unwrap();
        let series: Vec<f64> = (0..40).map(|i| 3.0 + 2.0 * i as f64).collect();
        holt.observe_all(&series);
        // On a noiseless ramp the recursion locks onto slope 2 exactly.
        let next = 3.0 + 2.0 * 40.0;
        assert!((holt.predict(1) - next).abs() < 1e-6, "{}", holt.predict(1));
        assert!((holt.predict(5) - (next + 2.0 * 4.0)).abs() < 1e-6);
    }

    #[test]
    fn holt_winters_learns_a_square_wave() {
        // Period-4 square wave: 10, 10, 30, 30, …
        let mut shw = SeasonalHoltWinters::new(0.2, 0.05, 0.4, 4).unwrap();
        let series: Vec<f64> = (0..200)
            .map(|i| if i % 4 < 2 { 10.0 } else { 30.0 })
            .collect();
        shw.observe_all(&series);
        // Next slots are 10, 10, 30, 30 again.
        for (h, want) in [(1, 10.0), (2, 10.0), (3, 30.0), (4, 30.0)] {
            let got = shw.predict(h);
            assert!(
                (got - want).abs() < 2.0,
                "horizon {h}: predicted {got}, wanted ~{want}"
            );
        }
    }

    #[test]
    fn spec_builds_the_named_model() {
        let spec = ForecasterSpec::SeasonalHoltWinters {
            alpha: 0.3,
            beta: 0.1,
            gamma: 0.2,
            period: 6,
        };
        let built = spec.build().unwrap();
        assert_eq!(built.name(), spec.name());
        assert!(ForecasterSpec::Ewma { alpha: 2.0 }.build().is_err());
    }
}
