//! One-pass backtesting: score any [`Forecaster`] against a series or
//! a streaming [`TraceSource`].
//!
//! The harness replays history exactly the way the predictive
//! autoscaler consumes it live: observations arrive one interval at a
//! time, each forecast is frozen when issued and scored only when its
//! target interval lands `horizon` steps later — no peeking. Metrics
//! are the standard point-and-quantile losses (MAE, MAPE, pinball)
//! plus the empirical coverage of the residual-quantile band, so a
//! sweep can rank models on both accuracy and how honestly they state
//! their uncertainty.

use litmus_platform::TraceSource;

use crate::band::BandedForecaster;
use crate::error::ForecastError;
use crate::forecaster::Forecaster;
use crate::Result;

/// Configuration of one backtest run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BacktestConfig {
    /// Bucket width used to turn a [`TraceSource`]'s arrivals into an
    /// observation series (ignored by [`backtest_series`]).
    pub bucket_ms: u64,
    /// Forecast lead, in observation intervals.
    pub horizon: usize,
    /// Quantile of the upper band edge; also the pinball-loss
    /// quantile. In `(0.5, 1)`.
    pub quantile: f64,
    /// Residual-window size for the band.
    pub window: usize,
    /// Scored intervals skipped before metrics accumulate, so
    /// cold-start transients don't dominate short runs.
    pub warmup: usize,
}

impl Default for BacktestConfig {
    /// One-second buckets, one-step lead, a 90% upper band over the
    /// last 128 residuals, 8 warm-up scores.
    fn default() -> Self {
        BacktestConfig {
            bucket_ms: 1_000,
            horizon: 1,
            quantile: 0.9,
            window: 128,
            warmup: 8,
        }
    }
}

impl BacktestConfig {
    fn validate(&self) -> Result<()> {
        if self.bucket_ms == 0 {
            return Err(ForecastError::InvalidConfig("bucket_ms must be ≥ 1"));
        }
        // Horizon/quantile/window are validated by the band
        // constructor; fail here with the same messages.
        Ok(())
    }
}

/// Scorecard of one backtest: losses over the scored (post-warm-up)
/// intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BacktestReport {
    /// Name the forecaster reports.
    pub forecaster: &'static str,
    /// Observations fed (buckets, for a trace backtest).
    pub observations: usize,
    /// Intervals that contributed to the metrics.
    pub scored: usize,
    /// Mean of every observation fed.
    pub mean_observed: f64,
    /// Mean absolute error of the point forecast.
    pub mae: f64,
    /// Mean absolute percentage error over scored intervals with a
    /// non-zero observation (0 when there were none).
    pub mape: f64,
    /// Mean pinball loss of the upper band edge at
    /// [`BacktestConfig::quantile`].
    pub pinball: f64,
    /// Fraction of scored observations inside `[lo, hi]`.
    pub coverage: f64,
}

impl std::fmt::Display for BacktestReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: mae {:.3} mape {:.1}% pinball {:.3} coverage {:.0}% \
             ({} scored / {} observed, mean {:.2})",
            self.forecaster,
            self.mae,
            self.mape * 100.0,
            self.pinball,
            self.coverage * 100.0,
            self.scored,
            self.observations,
            self.mean_observed,
        )
    }
}

/// Streaming scorer shared by the series and trace entry points. The
/// forecast↔observation pairing lives entirely in
/// [`BandedForecaster::observe`] (one queue, one alignment
/// invariant); the scorer only accumulates losses over what it
/// returns.
struct Scorer<'a> {
    banded: BandedForecaster<&'a mut dyn Forecaster>,
    config: BacktestConfig,
    observations: usize,
    observed_sum: f64,
    scores: usize,
    scored: usize,
    abs_err_sum: f64,
    ape_sum: f64,
    ape_count: usize,
    pinball_sum: f64,
    covered: usize,
}

impl<'a> Scorer<'a> {
    fn new(forecaster: &'a mut dyn Forecaster, config: BacktestConfig) -> Result<Self> {
        config.validate()?;
        let banded =
            BandedForecaster::new(forecaster, config.horizon, config.quantile, config.window)?;
        Ok(Scorer {
            banded,
            config,
            observations: 0,
            observed_sum: 0.0,
            scores: 0,
            scored: 0,
            abs_err_sum: 0.0,
            ape_sum: 0.0,
            ape_count: 0,
            pinball_sum: 0.0,
            covered: 0,
        })
    }

    fn feed(&mut self, value: f64) {
        self.observations += 1;
        self.observed_sum += value;
        if let Some((forecast, residual)) = self.banded.observe(value) {
            self.scores += 1;
            if self.scores > self.config.warmup {
                self.scored += 1;
                self.abs_err_sum += residual.abs();
                if value > 0.0 {
                    self.ape_sum += residual.abs() / value;
                    self.ape_count += 1;
                }
                let q = self.config.quantile;
                self.pinball_sum += if value >= forecast.hi {
                    q * (value - forecast.hi)
                } else {
                    (1.0 - q) * (forecast.hi - value)
                };
                if (forecast.lo..=forecast.hi).contains(&value) {
                    self.covered += 1;
                }
            }
        }
    }

    fn report(self) -> BacktestReport {
        let scored = self.scored;
        let mean = |sum: f64, n: usize| if n == 0 { 0.0 } else { sum / n as f64 };
        BacktestReport {
            forecaster: self.banded.inner().name(),
            observations: self.observations,
            scored,
            mean_observed: mean(self.observed_sum, self.observations),
            mae: mean(self.abs_err_sum, scored),
            mape: mean(self.ape_sum, self.ape_count),
            pinball: mean(self.pinball_sum, scored),
            coverage: mean(self.covered as f64, scored),
        }
    }
}

/// Backtests `forecaster` over an explicit observation series
/// (`config.bucket_ms` is ignored). One pass, no peeking: the
/// forecast scored against `values[t]` was frozen at `t - horizon`.
///
/// # Errors
///
/// [`ForecastError::InvalidConfig`] for an incoherent config.
pub fn backtest_series(
    forecaster: &mut dyn Forecaster,
    values: &[f64],
    config: BacktestConfig,
) -> Result<BacktestReport> {
    let mut scorer = Scorer::new(forecaster, config)?;
    for &value in values {
        scorer.feed(value);
    }
    Ok(scorer.report())
}

/// Backtests `forecaster` against a streaming [`TraceSource`]: events
/// are bucketed into consecutive `config.bucket_ms` windows (empty
/// windows between arrivals count as zero observations) and each
/// bucket's arrival count is one observation. One pass; nothing is
/// materialized beyond the forecaster's own state.
///
/// # Errors
///
/// [`ForecastError::InvalidConfig`] for an incoherent config.
pub fn backtest_source<S: TraceSource>(
    forecaster: &mut dyn Forecaster,
    mut source: S,
    config: BacktestConfig,
) -> Result<BacktestReport> {
    let mut scorer = Scorer::new(forecaster, config)?;
    let mut bucket = 0u64;
    let mut count = 0u64;
    let mut saw_event = false;
    while let Some(event) = source.next_event() {
        saw_event = true;
        let target = event.at_ms / config.bucket_ms;
        while bucket < target {
            scorer.feed(count as f64);
            count = 0;
            bucket += 1;
        }
        count += 1;
    }
    if saw_event {
        scorer.feed(count as f64);
    }
    Ok(scorer.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::{Ewma, HoltLinear};
    use litmus_platform::{TenantId, TraceEvent};
    use litmus_workloads::suite;

    struct StampSource(std::vec::IntoIter<u64>);
    impl TraceSource for StampSource {
        fn next_event(&mut self) -> Option<TraceEvent> {
            self.0.next().map(|at_ms| TraceEvent {
                at_ms,
                function: suite::benchmarks()[0].clone(),
                tenant: TenantId(0),
            })
        }
    }

    #[test]
    fn constant_series_scores_zero_losses() {
        let mut ewma = Ewma::new(0.5).unwrap();
        let report = backtest_series(
            &mut ewma,
            &[4.0; 64],
            BacktestConfig {
                warmup: 0,
                ..BacktestConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.observations, 64);
        assert_eq!(report.scored, 63);
        assert_eq!(report.mae, 0.0);
        assert_eq!(report.mape, 0.0);
        assert_eq!(report.pinball, 0.0);
        assert_eq!(report.coverage, 1.0);
        assert_eq!(report.mean_observed, 4.0);
    }

    #[test]
    fn holt_beats_ewma_on_a_ramp() {
        let series: Vec<f64> = (0..120).map(|i| 2.0 + 0.5 * i as f64).collect();
        let config = BacktestConfig {
            horizon: 3,
            ..BacktestConfig::default()
        };
        let mut ewma = Ewma::new(0.4).unwrap();
        let mut holt = HoltLinear::new(0.4, 0.2).unwrap();
        let flat = backtest_series(&mut ewma, &series, config).unwrap();
        let trend = backtest_series(&mut holt, &series, config).unwrap();
        assert!(
            trend.mae < flat.mae,
            "holt {} vs ewma {}",
            trend.mae,
            flat.mae
        );
    }

    #[test]
    fn trace_backtest_buckets_gaps_as_zeros() {
        // Arrivals at 0 ms ×2, a 3-bucket silence, then 3500 ms ×3.
        let mut ewma = Ewma::new(0.5).unwrap();
        let report = backtest_source(
            &mut ewma,
            StampSource(vec![0, 1, 3_500, 3_501, 3_502].into_iter()),
            BacktestConfig {
                warmup: 0,
                ..BacktestConfig::default()
            },
        )
        .unwrap();
        // Buckets: [2, 0, 0, 3] — 4 observations, mean 5/4.
        assert_eq!(report.observations, 4);
        assert_eq!(report.mean_observed, 1.25);
    }

    #[test]
    fn empty_source_reports_zero_observations() {
        let mut ewma = Ewma::new(0.5).unwrap();
        let report = backtest_source(
            &mut ewma,
            StampSource(Vec::new().into_iter()),
            BacktestConfig::default(),
        )
        .unwrap();
        assert_eq!(report.observations, 0);
        assert_eq!(report.scored, 0);
        assert_eq!(report.mae, 0.0);
    }

    #[test]
    fn zero_bucket_width_is_rejected() {
        let mut ewma = Ewma::new(0.5).unwrap();
        assert!(backtest_source(
            &mut ewma,
            StampSource(Vec::new().into_iter()),
            BacktestConfig {
                bucket_ms: 0,
                ..BacktestConfig::default()
            },
        )
        .is_err());
    }
}
