//! Online arrival-rate forecasting for the Litmus reproduction — the
//! signal layer that lets the cluster's autoscaler boot machines
//! *before* a burst lands instead of after probes report congestion.
//!
//! The Azure Functions trace (the dataset behind `litmus-trace`) has
//! strong diurnal and minute-scale periodic structure, which makes
//! short-horizon forecasting of the admitted arrival rate the
//! highest-leverage input a scaler can have: the reactive water-mark
//! scaler pays for capacity only after the congestion signal crosses a
//! mark, while a forecast-driven scaler can buy the aggressive mark's
//! tail latency at closer to the lazy mark's machine-hours.
//!
//! * [`Forecaster`] — the online trait: one observation per
//!   fixed-width interval in, point forecasts any number of intervals
//!   ahead out. Implementations are deterministic and bit-identical
//!   across chunked and whole-stream feeds;
//! * [`Ewma`] / [`HoltLinear`] / [`SeasonalHoltWinters`] — the
//!   level-only baseline, the level+trend model for ramps, and
//!   additive seasonality keyed to a configurable period (e.g. the
//!   trace's minute-of-day cycle);
//! * [`ForecasterSpec`] — a value-only model description configs carry
//!   ([`ForecasterSpec::build`] makes a fresh zero-state model, so
//!   every replay starts identically);
//! * [`BandedForecaster`] / [`HorizonForecast`] — point + uncertainty
//!   band from online residual quantiles at a fixed horizon, so
//!   capacity can be provisioned against an upper quantile instead of
//!   a best guess;
//! * [`backtest_series`] / [`backtest_source`] — a one-pass,
//!   no-peeking harness scoring any forecaster (MAE, MAPE, pinball
//!   loss, band coverage) against a series or any streaming
//!   [`litmus_platform::TraceSource`].
//!
//! # Examples
//!
//! Score the three models one step ahead on a noiseless square wave:
//!
//! ```
//! use litmus_forecast::{
//!     backtest_series, BacktestConfig, Ewma, Forecaster, SeasonalHoltWinters,
//! };
//!
//! let wave: Vec<f64> = (0..240).map(|i| if i % 6 < 3 { 5.0 } else { 25.0 }).collect();
//! let config = BacktestConfig::default();
//! let mut flat = Ewma::new(0.4).unwrap();
//! let mut seasonal = SeasonalHoltWinters::new(0.2, 0.05, 0.4, 6).unwrap();
//! let flat_report = backtest_series(&mut flat, &wave, config).unwrap();
//! let seasonal_report = backtest_series(&mut seasonal, &wave, config).unwrap();
//! assert!(seasonal_report.mae < flat_report.mae);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backtest;
mod band;
mod error;
mod forecaster;

pub use backtest::{backtest_series, backtest_source, BacktestConfig, BacktestReport};
pub use band::{BandedForecaster, HorizonForecast};
pub use error::ForecastError;
pub use forecaster::{Ewma, Forecaster, ForecasterSpec, HoltLinear, SeasonalHoltWinters};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ForecastError>;
