//! Uncertainty bands from online residual quantiles.
//!
//! A point forecast alone under-books capacity exactly when it matters
//! (the forecaster is most wrong at the start of a burst), so the
//! predictive autoscaler provisions against an upper band instead.
//! [`BandedForecaster`] wraps any [`Forecaster`], holds the
//! `horizon`-step-ahead forecasts it issued, scores each against the
//! observation that eventually lands, and keeps the last `window`
//! residuals in a ring; band edges are empirical quantiles of that
//! ring added to the point forecast. Everything is deterministic and
//! one-pass.

use std::collections::VecDeque;

use crate::error::ForecastError;
use crate::forecaster::Forecaster;
use crate::Result;

/// A point forecast plus an uncertainty band, `horizon` intervals past
/// the last observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HorizonForecast {
    /// How many intervals ahead the forecast targets.
    pub horizon: usize,
    /// The wrapped model's point forecast.
    pub point: f64,
    /// Lower band edge: point + lower residual quantile (≤ point once
    /// residuals exist; equal to the point before any).
    pub lo: f64,
    /// Upper band edge: point + upper residual quantile.
    pub hi: f64,
}

/// A [`Forecaster`] plus an online residual-quantile band at one fixed
/// horizon.
#[derive(Debug)]
pub struct BandedForecaster<F> {
    inner: F,
    horizon: usize,
    quantile: f64,
    window: usize,
    /// The forecast frozen by the latest `observe` — still valid until
    /// the next observation mutates the model or the residual ring, so
    /// `forecast()` needn't recompute (and re-sort) per read.
    latest: Option<HorizonForecast>,
    /// Forecasts frozen for upcoming steps (band edges as of issue
    /// time); front is the forecast made `horizon` steps before the
    /// next observation, once the queue has filled to `horizon`
    /// entries.
    pending: VecDeque<HorizonForecast>,
    /// Ring of the last `window` horizon-step residuals
    /// (`observed - forecast`).
    residuals: Vec<f64>,
    cursor: usize,
}

impl<F: Forecaster> BandedForecaster<F> {
    /// Wraps `inner` with a band at `horizon` steps ahead. `quantile`
    /// in `(0.5, 1)` sets the upper band edge (the lower edge mirrors
    /// it at `1 - quantile`); `window` residuals (≥ 2) are retained.
    ///
    /// # Errors
    ///
    /// [`ForecastError::InvalidConfig`] for a zero horizon, a quantile
    /// outside `(0.5, 1)` or a window below 2.
    pub fn new(inner: F, horizon: usize, quantile: f64, window: usize) -> Result<Self> {
        if horizon == 0 {
            return Err(ForecastError::InvalidConfig("band horizon must be ≥ 1"));
        }
        if !(quantile.is_finite() && quantile > 0.5 && quantile < 1.0) {
            return Err(ForecastError::InvalidConfig(
                "band quantile must be in (0.5, 1)",
            ));
        }
        if window < 2 {
            return Err(ForecastError::InvalidConfig(
                "residual window must hold at least 2 residuals",
            ));
        }
        Ok(BandedForecaster {
            inner,
            horizon,
            quantile,
            window,
            latest: None,
            pending: VecDeque::with_capacity(horizon),
            residuals: Vec::new(),
            cursor: 0,
        })
    }

    /// The wrapped forecaster.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The fixed horizon of the band, in intervals.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Horizon-step residuals currently retained (unordered ring).
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Consumes the next observation: scores the forecast frozen
    /// `horizon` steps ago against it (once enough forecasts have been
    /// issued), feeds the wrapped model, then freezes the forecast for
    /// the step `horizon` ahead of this one. Returns the frozen
    /// forecast just scored and its point residual
    /// (`observed - point`), if any — backtests pair forecasts with
    /// their target observations through this single queue.
    pub fn observe(&mut self, value: f64) -> Option<(HorizonForecast, f64)> {
        // The queue reaches `horizon` entries only once the forecast
        // for *this* step (made `horizon` steps ago) is at the front.
        let due = self.pending.len() == self.horizon;
        let scored = match self.pending.pop_front() {
            Some(frozen) if due => {
                let residual = value - frozen.point;
                if self.residuals.len() < self.window {
                    self.residuals.push(residual);
                } else {
                    self.residuals[self.cursor] = residual;
                    self.cursor = (self.cursor + 1) % self.window;
                }
                Some((frozen, residual))
            }
            Some(frozen) => {
                // Not due yet: put the forecast back at the front.
                self.pending.push_front(frozen);
                None
            }
            None => None,
        };
        self.inner.observe(value);
        let next = self.compute_forecast();
        self.latest = Some(next);
        self.pending.push_back(next);
        scored
    }

    /// The banded forecast `horizon` intervals past the last
    /// observation. Before any residual has been scored the band
    /// collapses to the point forecast. Cached from the latest
    /// observation — nothing the band depends on changes between
    /// observations.
    pub fn forecast(&self) -> HorizonForecast {
        self.latest.unwrap_or_else(|| self.compute_forecast())
    }

    /// One sort of the residual ring serves both band edges.
    fn compute_forecast(&self) -> HorizonForecast {
        let point = self.inner.predict(self.horizon);
        let (lo, hi) = if self.residuals.is_empty() {
            (point, point)
        } else {
            let mut sorted = self.residuals.clone();
            sorted.sort_by(f64::total_cmp);
            let rank =
                |q: f64| sorted[(q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize];
            (
                point + rank(1.0 - self.quantile),
                point + rank(self.quantile),
            )
        };
        HorizonForecast {
            horizon: self.horizon,
            point,
            lo,
            hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Ewma;

    fn banded(horizon: usize) -> BandedForecaster<Ewma> {
        BandedForecaster::new(Ewma::new(0.5).unwrap(), horizon, 0.9, 64).unwrap()
    }

    #[test]
    fn construction_validates_horizon_quantile_and_window() {
        let ewma = || Ewma::new(0.5).unwrap();
        assert!(BandedForecaster::new(ewma(), 0, 0.9, 16).is_err());
        assert!(BandedForecaster::new(ewma(), 1, 0.5, 16).is_err());
        assert!(BandedForecaster::new(ewma(), 1, 1.0, 16).is_err());
        assert!(BandedForecaster::new(ewma(), 1, 0.9, 1).is_err());
        assert!(BandedForecaster::new(ewma(), 1, 0.9, 2).is_ok());
    }

    #[test]
    fn band_collapses_without_residuals_then_widens() {
        let mut banded = banded(2);
        banded.observe(10.0);
        let before = banded.forecast();
        assert_eq!(before.lo, before.point);
        assert_eq!(before.hi, before.point);
        // Alternate observations make the 2-step forecast miss.
        for i in 0..40 {
            banded.observe(if i % 2 == 0 { 0.0 } else { 20.0 });
        }
        let after = banded.forecast();
        assert!(after.lo < after.point, "{after:?}");
        assert!(after.hi > after.point, "{after:?}");
    }

    #[test]
    fn residuals_score_the_forecast_made_horizon_steps_earlier() {
        // Constant series: every horizon-step forecast is exact, so
        // all residuals are 0 — and the first score arrives only after
        // `horizon` forecasts have been issued.
        let mut banded = banded(3);
        let mut scored = 0;
        for i in 0..10 {
            match banded.observe(7.0) {
                None => assert!(i < 3, "observation {i} failed to score"),
                Some((frozen, residual)) => {
                    assert!(i >= 3, "observation {i} scored too early");
                    assert_eq!(residual, 0.0);
                    assert_eq!(frozen.point, 7.0);
                    assert_eq!(frozen.horizon, 3);
                    scored += 1;
                }
            }
        }
        assert_eq!(scored, 7);
        assert!(banded.residuals().iter().all(|&r| r == 0.0));
    }

    #[test]
    fn residual_ring_caps_at_the_window() {
        let mut banded = BandedForecaster::new(Ewma::new(0.9).unwrap(), 1, 0.8, 4).unwrap();
        for i in 0..50 {
            banded.observe(i as f64 % 5.0);
        }
        assert_eq!(banded.residuals().len(), 4);
    }
}
