//! Forecasting throughput: observations/second through each online
//! model, banded observe+forecast, and a full trace backtest.
//!
//! The predictive autoscaler calls `observe` + `forecast` once per
//! scheduling slice on the serving hot path, so per-observation cost
//! bounds how fine the slicing can get; the backtest number bounds how
//! fast a config sweep can score candidate forecasters against a real
//! day.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use litmus_forecast::{
    backtest_source, BacktestConfig, BandedForecaster, Ewma, Forecaster, HoltLinear,
    SeasonalHoltWinters,
};
use litmus_trace::{fixture, ExpandConfig};

/// A deterministic pseudo-random arrival-count series.
fn series(n: usize) -> Vec<f64> {
    let mut state = 0x5EEDu64;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (state >> 59) as f64;
            10.0 + 6.0 * ((i % 30) as f64 / 30.0 * std::f64::consts::TAU).sin() + noise
        })
        .collect()
}

fn bench_observe(c: &mut Criterion) {
    let values = series(10_000);
    let mut group = c.benchmark_group("forecast_observe_10k");
    group.bench_function("ewma", |b| {
        b.iter(|| {
            let mut model = Ewma::new(0.3).unwrap();
            model.observe_all(&values);
            black_box(model.predict(1))
        })
    });
    group.bench_function("holt_linear", |b| {
        b.iter(|| {
            let mut model = HoltLinear::new(0.3, 0.1).unwrap();
            model.observe_all(&values);
            black_box(model.predict(1))
        })
    });
    group.bench_function("seasonal_holt_winters", |b| {
        b.iter(|| {
            let mut model = SeasonalHoltWinters::new(0.25, 0.05, 0.35, 30).unwrap();
            model.observe_all(&values);
            black_box(model.predict(1))
        })
    });
    group.finish();
}

fn bench_banded(c: &mut Criterion) {
    let values = series(10_000);
    c.bench_function("forecast_banded_observe_forecast_10k", |b| {
        b.iter(|| {
            let model = SeasonalHoltWinters::new(0.25, 0.05, 0.35, 30).unwrap();
            let mut banded = BandedForecaster::new(model, 8, 0.9, 128).unwrap();
            let mut acc = 0.0;
            for &value in &values {
                banded.observe(value);
                acc += banded.forecast().hi;
            }
            black_box(acc)
        })
    });
}

fn bench_backtest(c: &mut Criterion) {
    let dataset = fixture::dataset();
    c.bench_function("forecast_backtest_fixture_day", |b| {
        b.iter(|| {
            let source = dataset
                .source(ExpandConfig::new(7).minute_ms(600))
                .expect("fixture expands");
            let mut model = SeasonalHoltWinters::new(0.25, 0.05, 0.35, 30).unwrap();
            let report = backtest_source(
                &mut model,
                source,
                BacktestConfig {
                    bucket_ms: 20,
                    horizon: 8,
                    ..BacktestConfig::default()
                },
            )
            .unwrap();
            black_box(report.mae)
        })
    });
}

criterion_group!(benches, bench_observe, bench_banded, bench_backtest);
criterion_main!(benches);
