//! Cluster serving throughput: invocations/sec replayed end to end
//! (dispatch → simulate → probe → price → shard) as machine count and
//! placement policy vary.
//!
//! The per-slice parallel stepping means wall-clock throughput should
//! grow with machine count until the host runs out of cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use litmus_cluster::{
    Cluster, ClusterConfig, ClusterDriver, LeastLoaded, LitmusAware, MachineConfig,
    PlacementPolicy, RoundRobin,
};
use litmus_core::{DiscountModel, PricingTables, TableBuilder};
use litmus_platform::InvocationTrace;
use litmus_sim::MachineSpec;
use litmus_workloads::suite;

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .expect("tables build");
    let model = DiscountModel::fit(&tables).expect("model fit");
    (tables, model)
}

fn config(machines: usize) -> ClusterConfig {
    let configs: Vec<_> = (0..machines)
        .map(|i| {
            let background = if i % 2 == 0 { 12 } else { 0 };
            MachineConfig::new(8)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(50)
                .seed(0xB0B + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), machines, 8)
        .machines(configs)
        .serving_scale(0.04)
}

fn replay_once<P: PlacementPolicy>(
    policy: P,
    machines: usize,
    tables: &PricingTables,
    model: &DiscountModel,
    trace: &InvocationTrace,
) -> usize {
    let mut cluster =
        Cluster::build(config(machines), tables.clone(), model.clone()).expect("cluster boots");
    let outcome = ClusterDriver::new(policy)
        .replay(&mut cluster, trace)
        .expect("replay succeeds");
    outcome.completed
}

/// Invocations/sec vs machine count (fixed per-machine arrival rate, so
/// total work scales with the cluster) under litmus-aware placement.
fn bench_machine_scaling(c: &mut Criterion) {
    let (tables, model) = calibration();
    let mut group = c.benchmark_group("cluster_replay_scaling");
    group.sample_size(10);
    for machines in [1usize, 2, 4, 8] {
        // ~40 invocations/s per machine over 2 s.
        let trace =
            InvocationTrace::poisson(suite::benchmarks(), 40.0 * machines as f64, 2_000, 17)
                .expect("non-empty pool");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{machines}machines_{}invocations", trace.len())),
            &machines,
            |b, &machines| {
                b.iter(|| {
                    black_box(replay_once(
                        LitmusAware::new(),
                        machines,
                        &tables,
                        &model,
                        &trace,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Policy overhead comparison at a fixed cluster size.
fn bench_policies(c: &mut Criterion) {
    let (tables, model) = calibration();
    let trace =
        InvocationTrace::poisson(suite::benchmarks(), 160.0, 2_000, 23).expect("non-empty pool");
    let mut group = c.benchmark_group("cluster_replay_policies");
    group.sample_size(10);
    group.bench_function("round_robin_4machines", |b| {
        b.iter(|| black_box(replay_once(RoundRobin::new(), 4, &tables, &model, &trace)))
    });
    group.bench_function("least_loaded_4machines", |b| {
        b.iter(|| black_box(replay_once(LeastLoaded::new(), 4, &tables, &model, &trace)))
    });
    group.bench_function("litmus_aware_4machines", |b| {
        b.iter(|| black_box(replay_once(LitmusAware::new(), 4, &tables, &model, &trace)))
    });
    group.finish();
}

criterion_group!(benches, bench_machine_scaling, bench_policies);
criterion_main!(benches);
