//! Cluster serving throughput: invocations/sec replayed end to end
//! (dispatch → simulate → probe → price → shard) as machine count,
//! placement policy, stepping mode and elasticity features vary.
//!
//! The persistent worker pool amortises thread spawns across slices,
//! so `stepping_modes` is the headline comparison: `pooled` must never
//! lose to `scoped`, and should win clearly at higher machine counts
//! (a 2 s replay crosses ~100 slice barriers; scoped stepping pays a
//! spawn/join per machine-chunk at every one of them).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use litmus_cluster::{
    AutoscalerConfig, Cluster, ClusterConfig, ClusterDriver, LeastLoaded, LitmusAware,
    MachineConfig, PlacementPolicy, RoundRobin, StealingConfig, SteppingMode,
};
use litmus_core::{DiscountModel, PricingTables, TableBuilder};
use litmus_platform::InvocationTrace;
use litmus_sim::MachineSpec;
use litmus_workloads::suite;

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .reference_scale(0.03)
        .build()
        .expect("tables build");
    let model = DiscountModel::fit(&tables).expect("model fit");
    (tables, model)
}

fn config(machines: usize) -> ClusterConfig {
    let configs: Vec<_> = (0..machines)
        .map(|i| {
            let background = if i % 2 == 0 { 12 } else { 0 };
            MachineConfig::new(8)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(50)
                .seed(0xB0B + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), machines, 8)
        .machines(configs)
        .serving_scale(0.04)
}

fn replay_once<P: PlacementPolicy>(
    policy: P,
    machines: usize,
    tables: &PricingTables,
    model: &DiscountModel,
    trace: &InvocationTrace,
) -> usize {
    replay_driver(
        ClusterDriver::new(policy),
        config(machines),
        tables,
        model,
        trace,
    )
}

fn replay_driver<P: PlacementPolicy>(
    driver: ClusterDriver<P>,
    config: ClusterConfig,
    tables: &PricingTables,
    model: &DiscountModel,
    trace: &InvocationTrace,
) -> usize {
    let mut cluster = Cluster::build(config, tables.clone(), model.clone()).expect("cluster boots");
    let mut driver = driver;
    let report = driver.replay(&mut cluster, trace).expect("replay succeeds");
    report.completed
}

/// Pooled vs scoped stepping at small and large machine counts — the
/// driver refactor's headline number. The persistent pool must match
/// scoped stepping at 2 machines and beat it at 8+.
fn bench_stepping_modes(c: &mut Criterion) {
    let (tables, model) = calibration();
    let mut group = c.benchmark_group("cluster_stepping_modes");
    group.sample_size(10);
    for machines in [2usize, 8, 16] {
        let trace =
            InvocationTrace::poisson(suite::benchmarks(), 40.0 * machines as f64, 2_000, 31)
                .expect("non-empty pool");
        for (label, mode) in [
            ("pooled", SteppingMode::Pooled),
            ("scoped", SteppingMode::Scoped),
        ] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{label}_{machines}machines")),
                &machines,
                |b, &machines| {
                    b.iter(|| {
                        black_box(replay_driver(
                            ClusterDriver::new(LitmusAware::new()),
                            // Pin the thread count: the mode comparison
                            // must exercise thread management even on
                            // hosts whose available_parallelism is 1.
                            config(machines).threads(4.min(machines)).stepping(mode),
                            &tables,
                            &model,
                            &trace,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

/// Overhead (and benefit) of the elasticity features at a fixed size:
/// plain replay vs work stealing vs stealing + autoscaling.
fn bench_elasticity_variants(c: &mut Criterion) {
    let (tables, model) = calibration();
    let trace =
        InvocationTrace::poisson(suite::benchmarks(), 320.0, 2_000, 47).expect("non-empty pool");
    let mut group = c.benchmark_group("cluster_elasticity");
    group.sample_size(10);
    group.bench_function("baseline_8machines", |b| {
        b.iter(|| {
            black_box(replay_driver(
                ClusterDriver::new(LitmusAware::new()),
                config(8),
                &tables,
                &model,
                &trace,
            ))
        })
    });
    group.bench_function("stealing_8machines", |b| {
        b.iter(|| {
            black_box(replay_driver(
                ClusterDriver::new(LitmusAware::new())
                    .stealing(StealingConfig::default().backlog_threshold(2)),
                config(8),
                &tables,
                &model,
                &trace,
            ))
        })
    });
    group.bench_function("stealing_autoscale_8machines", |b| {
        b.iter(|| {
            black_box(replay_driver(
                ClusterDriver::new(LitmusAware::new())
                    .stealing(StealingConfig::default().backlog_threshold(2))
                    .autoscale(
                        AutoscalerConfig::new(MachineConfig::new(8).warmup_ms(50))
                            .machine_bounds(8, 16),
                    ),
                config(8),
                &tables,
                &model,
                &trace,
            ))
        })
    });
    group.finish();
}

/// Invocations/sec vs machine count (fixed per-machine arrival rate, so
/// total work scales with the cluster) under litmus-aware placement.
fn bench_machine_scaling(c: &mut Criterion) {
    let (tables, model) = calibration();
    let mut group = c.benchmark_group("cluster_replay_scaling");
    group.sample_size(10);
    for machines in [1usize, 2, 4, 8] {
        // ~40 invocations/s per machine over 2 s.
        let trace =
            InvocationTrace::poisson(suite::benchmarks(), 40.0 * machines as f64, 2_000, 17)
                .expect("non-empty pool");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{machines}machines_{}invocations", trace.len())),
            &machines,
            |b, &machines| {
                b.iter(|| {
                    black_box(replay_once(
                        LitmusAware::new(),
                        machines,
                        &tables,
                        &model,
                        &trace,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Replay of the real-shape Azure fixture trace (compressed minutes)
/// under litmus-aware placement: the end-to-end cost of serving a
/// real-world arrival process, streamed vs materialized — the streams
/// are bit-identical, so any gap is pure expansion overhead.
fn bench_azure_replay(c: &mut Criterion) {
    let (tables, model) = calibration();
    let dataset = litmus_trace::fixture::dataset();
    let expand = litmus_trace::ExpandConfig::new(77).minute_ms(150);
    let trace = dataset.expand(expand).expect("fixture expands");
    let mut group = c.benchmark_group("cluster_azure_replay");
    group.sample_size(10);
    group.bench_function("materialized_4machines", |b| {
        b.iter(|| {
            black_box(replay_driver(
                ClusterDriver::new(LitmusAware::new()),
                config(4),
                &tables,
                &model,
                &trace,
            ))
        })
    });
    group.bench_function("streaming_4machines", |b| {
        b.iter(|| {
            let mut cluster =
                Cluster::build(config(4), tables.clone(), model.clone()).expect("cluster boots");
            let source = dataset.source(expand).expect("fixture streams");
            let report = ClusterDriver::new(LitmusAware::new())
                .replay_source(&mut cluster, source)
                .expect("replay succeeds");
            black_box(report.completed)
        })
    });
    group.finish();
}

/// Policy overhead comparison at a fixed cluster size.
fn bench_policies(c: &mut Criterion) {
    let (tables, model) = calibration();
    let trace =
        InvocationTrace::poisson(suite::benchmarks(), 160.0, 2_000, 23).expect("non-empty pool");
    let mut group = c.benchmark_group("cluster_replay_policies");
    group.sample_size(10);
    group.bench_function("round_robin_4machines", |b| {
        b.iter(|| black_box(replay_once(RoundRobin::new(), 4, &tables, &model, &trace)))
    });
    group.bench_function("least_loaded_4machines", |b| {
        b.iter(|| black_box(replay_once(LeastLoaded::new(), 4, &tables, &model, &trace)))
    });
    group.bench_function("litmus_aware_4machines", |b| {
        b.iter(|| black_box(replay_once(LitmusAware::new(), 4, &tables, &model, &trace)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stepping_modes,
    bench_machine_scaling,
    bench_policies,
    bench_elasticity_variants,
    bench_azure_replay,
);
criterion_main!(benches);
