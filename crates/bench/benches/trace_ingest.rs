//! Trace-ingestion throughput: parsing the Azure fixture CSVs,
//! expanding minute buckets into events (streamed vs materialized),
//! applying the transform pipeline, and one-pass characterization.
//!
//! Expansion is the number that matters at scale — a day of the full
//! dataset is hundreds of millions of invocations, so events/second
//! through `AzureReplaySource` bounds how fast any replay can start.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use litmus_platform::TraceSource;
use litmus_trace::{
    fixture, AzureDataset, ExpandConfig, IngestMode, IntraMinute, LossyIngest, TraceStats,
    TraceTransform,
};

fn config() -> ExpandConfig {
    ExpandConfig::new(31).minute_ms(60_000)
}

fn bench_parse(c: &mut Criterion) {
    // Note on the parse numbers: `Trigger::parse` matches with
    // `eq_ignore_ascii_case` instead of lowercasing into a fresh
    // `String` — the hot parse loop allocates nothing per row beyond
    // the retained hashes/counts, and this group is the regression
    // guard for keeping it that way.
    let mut group = c.benchmark_group("trace_parse");
    group.bench_function("fixture_three_csvs", |b| {
        b.iter(|| black_box(fixture::dataset()))
    });
    // The lossy path on incomplete data: every third function's
    // duration row removed, imputed back from app/trigger medians.
    let holey: String = {
        let mut lines = fixture::DURATIONS_CSV.lines();
        let header = lines.next().unwrap();
        let kept: Vec<&str> = lines
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, l)| l)
            .collect();
        format!("{header}\n{}\n", kept.join("\n"))
    };
    group.bench_function("fixture_lossy_impute", |b| {
        b.iter(|| {
            black_box(
                AzureDataset::from_csv_with(
                    fixture::INVOCATIONS_CSV,
                    &holey,
                    fixture::MEMORY_CSV,
                    IngestMode::Lossy(LossyIngest::ImputeMedians),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_expand(c: &mut Criterion) {
    let dataset = fixture::dataset();
    let mut group = c.benchmark_group("trace_expand");
    group.bench_function("materialize_fixture", |b| {
        b.iter(|| black_box(dataset.expand(config()).unwrap()))
    });
    group.bench_function("stream_fixture", |b| {
        b.iter(|| {
            let mut source = dataset.source(config()).unwrap();
            let mut events = 0usize;
            while let Some(event) = source.next_event() {
                black_box(&event);
                events += 1;
            }
            black_box(events)
        })
    });
    group.bench_function("stream_fixture_even_placement", |b| {
        b.iter(|| {
            let mut source = dataset
                .source(config().placement(IntraMinute::Even))
                .unwrap();
            let mut events = 0usize;
            while source.next_event().is_some() {
                events += 1;
            }
            black_box(events)
        })
    });
    group.finish();
}

fn bench_transform_and_stats(c: &mut Criterion) {
    let dataset = fixture::dataset();
    let trace = dataset.expand(config()).unwrap();
    let mut group = c.benchmark_group("trace_shape");
    group.bench_function("transform_pipeline", |b| {
        b.iter(|| {
            black_box(
                litmus_trace::apply(
                    &trace,
                    &[
                        TraceTransform::Window {
                            start_ms: 60_000,
                            end_ms: 840_000,
                        },
                        TraceTransform::ScaleRate {
                            keep_fraction: 0.5,
                            seed: 3,
                        },
                        TraceTransform::Compress { divisor: 100 },
                    ],
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("characterize", |b| {
        b.iter(|| black_box(TraceStats::from_trace(&trace, 60_000)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_expand,
    bench_transform_and_stats
);
criterion_main!(benches);
