//! Offline cost of the provider-side calibration: table construction
//! and model fitting. These run once per machine configuration, so they
//! may be orders of magnitude slower than the online path and still be
//! irrelevant to production overhead — this bench quantifies that
//! asymmetry.

use criterion::{criterion_group, criterion_main, Criterion};

use litmus_core::{DiscountModel, TableBuilder};
use litmus_sim::MachineSpec;
use litmus_workloads::Language;

fn bench_table_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_calibration");
    group.sample_size(10);
    group.bench_function("dedicated_tables_3_levels", |b| {
        b.iter(|| {
            TableBuilder::new(MachineSpec::cascade_lake())
                .levels([6, 14, 24])
                .languages([Language::Python])
                .reference_scale(0.02)
                .build()
                .unwrap()
        })
    });
    group.finish();
}

fn bench_model_fit(c: &mut Criterion) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([4, 10, 16, 22, 28])
        .reference_scale(0.02)
        .build()
        .unwrap();
    c.bench_function("discount_model_fit", |b| {
        b.iter(|| DiscountModel::fit(&tables).unwrap())
    });
}

criterion_group!(benches, bench_table_build, bench_model_fit);
criterion_main!(benches);
