//! The paper's central overhead claim: the Litmus test reuses work the
//! startup performs anyway, so the *online* pricing path is only the
//! arithmetic benchmarked here — reading derivation, model estimation
//! and the final price. Everything lands in nanoseconds, i.e. free next
//! to a multi-millisecond function invocation (contrast with POPPA,
//! which stalls all co-runners for entire sampling windows).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use litmus_core::{
    CommercialPricing, DiscountModel, IdealPricing, LitmusPricing, LitmusReading, StartupBaseline,
    TableBuilder,
};
use litmus_sim::{MachineSpec, PmuCounters, StartupReport};
use litmus_workloads::Language;

fn setup() -> (LitmusPricing, StartupBaseline, StartupReport, PmuCounters) {
    let spec = MachineSpec::cascade_lake();
    let tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 24])
        .languages([Language::Python])
        .reference_scale(0.03)
        .build()
        .expect("tables");
    let pricing = LitmusPricing::new(DiscountModel::fit(&tables).expect("model"));
    let baseline = *tables.baseline(Language::Python).expect("baseline");
    let startup = StartupReport {
        counters: PmuCounters {
            cycles: 6.0e7,
            instructions: 4.5e7,
            stall_l2_cycles: 2.5e7,
            l2_misses: 5.0e5,
            l3_misses: 2.0e5,
            context_switches: 0.0,
        },
        wall_ms: 21.0,
        machine_l3_miss_rate: 80_000.0,
    };
    let counters = PmuCounters {
        cycles: 9.0e8,
        instructions: 7.5e8,
        stall_l2_cycles: 1.2e8,
        l2_misses: 6.0e5,
        l3_misses: 2.4e5,
        context_switches: 3.0,
    };
    (pricing, baseline, startup, counters)
}

fn bench_online_path(c: &mut Criterion) {
    let (pricing, baseline, startup, counters) = setup();
    let reading = LitmusReading::from_startup(&baseline, &startup).unwrap();

    c.bench_function("litmus_reading_from_startup", |b| {
        b.iter(|| LitmusReading::from_startup(black_box(&baseline), black_box(&startup)).unwrap())
    });
    c.bench_function("discount_estimate", |b| {
        b.iter(|| pricing.estimate(black_box(&reading)).unwrap())
    });
    c.bench_function("litmus_price_invocation", |b| {
        b.iter(|| {
            pricing
                .price(black_box(&reading), black_box(&counters))
                .unwrap()
        })
    });
    c.bench_function("commercial_price_invocation", |b| {
        let scheme = CommercialPricing::new();
        b.iter(|| scheme.price(black_box(&counters)))
    });
    c.bench_function("ideal_price_invocation", |b| {
        let scheme = IdealPricing::new();
        let solo = PmuCounters {
            cycles: 8.0e8,
            instructions: 7.5e8,
            stall_l2_cycles: 6.0e7,
            ..Default::default()
        };
        b.iter(|| scheme.price(black_box(&counters), black_box(&solo)))
    });
}

criterion_group!(benches, bench_online_path);
criterion_main!(benches);
