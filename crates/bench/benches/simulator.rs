//! Simulator throughput: cost of one scheduling quantum at the
//! occupancy levels the experiments use (27 one-per-core, 160 and 320
//! time-shared), and end-to-end function execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use litmus_sim::{MachineSpec, Placement, Simulator};
use litmus_workloads::{suite, BackfillPool};

fn populated_sim(functions: usize, cores: usize) -> (Simulator, BackfillPool) {
    let mut sim = Simulator::new(MachineSpec::cascade_lake());
    let mut pool = BackfillPool::new(suite::benchmarks(), 42, Placement::pool_range(0, cores))
        .expect("non-empty pool");
    pool.fill(&mut sim, functions).expect("fill");
    pool.run(&mut sim, 50).expect("warmup");
    (sim, pool)
}

fn bench_quantum(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantum_step");
    for (functions, cores) in [(27usize, 27usize), (160, 16), (320, 16)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{functions}fns_{cores}cores")),
            &(functions, cores),
            |b, &(functions, cores)| {
                let (mut sim, mut pool) = populated_sim(functions, cores);
                b.iter(|| {
                    let events = sim.step();
                    pool.backfill(&mut sim, black_box(&events)).unwrap();
                })
            },
        );
    }
    group.finish();
}

fn bench_function_execution(c: &mut Criterion) {
    c.bench_function("solo_function_to_completion", |b| {
        let profile = suite::by_name("auth-go")
            .unwrap()
            .profile()
            .scaled(0.1)
            .unwrap();
        b.iter(|| {
            let mut sim = Simulator::new(MachineSpec::cascade_lake());
            let id = sim
                .launch(black_box(profile.clone()), Placement::pinned(0))
                .unwrap();
            sim.run_to_completion(id).unwrap()
        })
    });
}

criterion_group!(benches, bench_quantum, bench_function_execution);
criterion_main!(benches);
