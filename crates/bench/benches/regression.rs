//! Statistics-substrate micro-benchmarks: the regression and
//! interpolation primitives on the input sizes the pricing pipeline
//! uses (a handful of table rows per fit, one blend per invocation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use litmus_stats::{log_blend, ExpFit, LevelTable, LinearFit};

fn bench_fits(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=8).map(|i| 1.0 + 0.2 * i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 0.4 + 0.9 * x).collect();
    let expo: Vec<f64> = xs.iter().map(|x| (6.0 + 2.0 * x).exp()).collect();

    c.bench_function("linear_fit_8pts", |b| {
        b.iter(|| LinearFit::fit(black_box(&xs), black_box(&ys)).unwrap())
    });
    c.bench_function("exp_fit_8pts", |b| {
        b.iter(|| ExpFit::fit(black_box(&xs), black_box(&expo)).unwrap())
    });

    let lin = LinearFit::fit(&xs, &ys).unwrap();
    c.bench_function("linear_predict", |b| b.iter(|| lin.predict(black_box(1.7))));

    c.bench_function("log_blend", |b| {
        b.iter(|| {
            log_blend(
                black_box(100.0),
                black_box(10.0),
                black_box(1000.0),
                black_box(0.01),
                black_box(0.06),
            )
            .unwrap()
        })
    });
}

fn bench_level_table(c: &mut Criterion) {
    let rows: Vec<(f64, f64)> = (1..=16)
        .map(|i| (i as f64, 1.0 + 0.05 * i as f64))
        .collect();
    let table = LevelTable::new(rows).unwrap();
    c.bench_function("level_table_lookup", |b| {
        b.iter(|| table.value_at(black_box(7.3)).unwrap())
    });
    c.bench_function("level_table_inverse", |b| {
        b.iter(|| table.level_for(black_box(1.31)).unwrap())
    });
}

criterion_group!(benches, bench_fits, bench_level_table);
criterion_main!(benches);
