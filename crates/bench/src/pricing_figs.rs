//! Pricing-evaluation figures: Figs. 11–13 (one function per core) and
//! Figs. 15–21 (temporal sharing and §8 sensitivity studies).

use std::error::Error;

use litmus_core::{Method, PricingTables};
use litmus_platform::{CoRunEnv, ExperimentResults, HarnessConfig, PricingExperiment};
use litmus_sim::{FrequencyGovernor, MachineSpec};
use litmus_workloads::{suite, Benchmark};

use crate::context::ReproConfig;
use crate::render::{f4, pct, sf4, TextTable};

type Result<T> = std::result::Result<T, Box<dyn Error>>;

/// One §7/§8 pricing experiment, fully described.
struct PricingFigure {
    title: &'static str,
    paper_note: &'static str,
    spec: MachineSpec,
    governor: FrequencyGovernor,
    env: CoRunEnv,
    method: Method,
    mix_pool: Vec<Benchmark>,
}

impl PricingFigure {
    fn run(&self, config: &ReproConfig, tables: &PricingTables) -> Result<ExperimentResults> {
        let pricing = config.pricing(tables)?.with_method(self.method);
        let harness = HarnessConfig::new(self.spec.clone())
            .governor(self.governor)
            .env(self.env)
            .mix_pool(self.mix_pool.clone())
            .mix_scale(config.scale)
            .warmup_ms(config.warmup_ms);
        Ok(PricingExperiment::new(harness)
            .reps(config.reps)
            .test_scale(config.scale)
            .run(&pricing, tables, &suite::test_benchmarks())?)
    }

    fn render(&self, results: &ExperimentResults) -> String {
        let mut table = TextTable::new(self.title, &["function", "litmus price", "ideal price"]);
        for invoice in results.invoices() {
            table.row(&[
                invoice.function.clone(),
                f4(invoice.litmus_normalized()),
                f4(invoice.ideal_normalized()),
            ]);
        }
        table.row(&[
            "gmean".into(),
            f4(results.gmean_litmus_price()),
            f4(results.gmean_ideal_price()),
        ]);
        let mut out = table.render();
        out.push_str(&format!(
            "litmus discount {} vs ideal {} (gap {:.2}%)\n{}\n",
            pct(results.mean_litmus_discount()),
            pct(results.mean_ideal_discount()),
            results.discount_gap() * 100.0,
            self.paper_note
        ));
        out
    }
}

fn cascade() -> MachineSpec {
    MachineSpec::cascade_lake()
}

fn fixed(spec: &MachineSpec) -> FrequencyGovernor {
    FrequencyGovernor::fixed(spec.frequency_ghz)
}

/// The paper's 160-functions-on-16-cores environment.
fn shared_160() -> CoRunEnv {
    CoRunEnv::Shared {
        co_runners: 159,
        cores: 16,
    }
}

/// Runs the §7.1 experiment once (shared by Figs. 11–13).
fn one_per_core_results(config: &ReproConfig) -> Result<(ExperimentResults, PricingFigure)> {
    let spec = cascade();
    let fig = PricingFigure {
        title: "Fig. 11: prices with 26 co-runners (normalised to commercial)",
        paper_note: "paper: litmus discount 10.7%, ideal 10.3%, gap 0.4%",
        governor: fixed(&spec),
        env: CoRunEnv::OnePerCore { co_runners: 26 },
        method: Method::TableDriven,
        mix_pool: suite::benchmarks(),
        spec,
    };
    let tables = config.dedicated_tables(&fig.spec)?;
    let results = fig.run(config, &tables)?;
    Ok((results, fig))
}

/// Fig. 11: Litmus vs ideal prices, one function per core.
pub fn fig11(config: &ReproConfig) -> Result<String> {
    let (results, fig) = one_per_core_results(config)?;
    Ok(fig.render(&results))
}

/// Fig. 12: weighted price errors of the same experiment.
pub fn fig12(config: &ReproConfig) -> Result<String> {
    let (results, _) = one_per_core_results(config)?;
    let mut table = TextTable::new(
        "Fig. 12: weighted price errors vs ideal",
        &["function", "P_private", "P_shared", "P_total"],
    );
    let mut abs_errors = Vec::new();
    for invoice in results.invoices() {
        abs_errors.push(invoice.total_error().abs().max(1e-6));
        table.row(&[
            invoice.function.clone(),
            sf4(invoice.private_error()),
            sf4(invoice.shared_error()),
            sf4(invoice.total_error()),
        ]);
    }
    table.row(&[
        "abs geomean".into(),
        String::new(),
        String::new(),
        f4(crate::render::gmean(&abs_errors)),
    ]);
    let mut out = table.render();
    out.push_str(
        "paper: abs geomean ≈0.023, max ≈0.072 (rate-go), min ≈0.004 (mst-py);\n\
         errors carry both signs — litmus matches the average, not each function\n",
    );
    Ok(out)
}

/// Fig. 13: component slowdowns vs the Litmus discount lines.
pub fn fig13(config: &ReproConfig) -> Result<String> {
    let (results, _) = one_per_core_results(config)?;
    let mut table = TextTable::new(
        "Fig. 13: T_private & T_shared slowdowns vs Litmus estimates",
        &[
            "function",
            "T_priv x",
            "T_shared x",
            "est priv x",
            "est shared x",
        ],
    );
    for invoice in results.invoices() {
        // Solo per-instruction components are recoverable from the ideal
        // price: ideal = instructions × solo_per_instruction.
        let instr = invoice.counters.instructions;
        let solo_priv = invoice.ideal.private / instr;
        let solo_shared = (invoice.ideal.shared / instr).max(1e-12);
        let t_priv = invoice.counters.t_private_per_instruction() / solo_priv;
        let t_shared = invoice.counters.t_shared_per_instruction() / solo_shared;
        // The discount lines: estimated slowdowns implied by the rates.
        let est_priv = invoice.counters.t_private_cycles() / invoice.litmus.private;
        let est_shared = if invoice.litmus.shared > 0.0 {
            invoice.counters.t_shared_cycles() / invoice.litmus.shared
        } else {
            1.0
        };
        table.row(&[
            invoice.function.clone(),
            f4(t_priv),
            f4(t_shared),
            f4(est_priv),
            f4(est_shared),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "paper: T_private ≈+5.3% with little dispersion (estimated almost\n\
         exactly); T_shared varies widely and is under-estimated for\n\
         shared-heavy functions — the acceptable-error argument of §7.1\n",
    );
    Ok(out)
}

/// Fig. 15: Method 1 (dedicated tables + switch-factor calibration),
/// 160 functions on 16 cores.
pub fn fig15(config: &ReproConfig) -> Result<String> {
    let spec = cascade();
    let factor = spec.switch_factor(10.0);
    let fig = PricingFigure {
        title: "Fig. 15: Method 1 prices, 160 functions / 16 cores",
        paper_note: "paper: litmus discount 14.5% vs ideal 17.4% (2.9% short)",
        governor: fixed(&spec),
        env: shared_160(),
        method: Method::CalibratedSharing { factor },
        mix_pool: suite::benchmarks(),
        spec,
    };
    let tables = config.dedicated_tables(&fig.spec)?;
    let results = fig.run(config, &tables)?;
    Ok(fig.render(&results))
}

/// Fig. 16: Method 2 (tables rebuilt under sharing), 160 functions.
pub fn fig16(config: &ReproConfig) -> Result<String> {
    let spec = cascade();
    let fig = PricingFigure {
        title: "Fig. 16: Method 2 prices, 160 functions / 16 cores",
        paper_note: "paper: litmus discount 17.2% vs ideal 17.4% (gap 0.2%)",
        governor: fixed(&spec),
        env: shared_160(),
        method: Method::TableDriven,
        mix_pool: suite::benchmarks(),
        spec,
    };
    let tables = config.shared_tables(&fig.spec)?;
    let results = fig.run(config, &tables)?;
    Ok(fig.render(&results))
}

/// Fig. 17: heavy congestion — 320 functions with the eight
/// memory-intensive picks over-represented in the mix.
pub fn fig17(config: &ReproConfig) -> Result<String> {
    let spec = cascade();
    let mut mix = suite::benchmarks();
    for _ in 0..2 {
        mix.extend(suite::heavy_congestion_picks());
    }
    let fig = PricingFigure {
        title: "Fig. 17: heavy congestion, 320 functions / 16 cores",
        paper_note: "paper: litmus discount 20.0% vs ideal 21.5% (gap 1.5%);\n\
                     dyn-py takes the largest discount (26.0%)",
        governor: fixed(&spec),
        env: CoRunEnv::Shared {
            co_runners: 319,
            cores: 16,
        },
        method: Method::TableDriven,
        mix_pool: mix,
        spec,
    };
    let tables = config.shared_tables(&fig.spec)?;
    let results = fig.run(config, &tables)?;
    Ok(fig.render(&results))
}

/// Fig. 18: unfixed CPU frequency (turbo governor), 160 functions.
pub fn fig18(config: &ReproConfig) -> Result<String> {
    let spec = cascade();
    let fig = PricingFigure {
        title: "Fig. 18: unfixed CPU frequency (turbo), 160 functions / 16 cores",
        paper_note: "paper: litmus discount 16.8% vs ideal 17.3% (gap 0.5%) —\n\
                     frequency variation barely moves the result",
        governor: FrequencyGovernor::turbo(spec.frequency_ghz, 3.9, 8),
        env: shared_160(),
        method: Method::TableDriven,
        mix_pool: suite::benchmarks(),
        spec,
    };
    let tables = config.shared_tables(&fig.spec)?;
    let results = fig.run(config, &tables)?;
    Ok(fig.render(&results))
}

/// Fig. 19: Ice Lake (Xeon Silver 4314), 70 functions on 7 cores.
pub fn fig19(config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::ice_lake();
    let fig = PricingFigure {
        title: "Fig. 19: Ice Lake (Xeon Silver 4314), 70 functions / 7 cores",
        paper_note: "paper: tenants pay 82.5% of commercial, 0.7% from ideal",
        governor: fixed(&spec),
        env: CoRunEnv::Shared {
            co_runners: 69,
            cores: 7,
        },
        method: Method::TableDriven,
        mix_pool: suite::benchmarks(),
        spec,
    };
    let tables = config.shared_tables(&fig.spec)?;
    let results = fig.run(config, &tables)?;
    Ok(fig.render(&results))
}

/// Fig. 20: 240 functions (15 per core) while *reusing* the tables built
/// for 10 per core — the table-staleness robustness check.
pub fn fig20(config: &ReproConfig) -> Result<String> {
    let spec = cascade();
    let fig = PricingFigure {
        title: "Fig. 20: 240 functions / 16 cores, reusing 10-per-core tables",
        paper_note: "paper: litmus discount 16.7% vs ideal 17.9% (gap 1.2%) —\n\
                     stale tables stay usable past the Fig. 14 saturation knee",
        governor: fixed(&spec),
        env: CoRunEnv::Shared {
            co_runners: 239,
            cores: 16,
        },
        method: Method::TableDriven,
        mix_pool: suite::benchmarks(),
        spec,
    };
    let tables = config.shared_tables(&fig.spec)?;
    let results = fig.run(config, &tables)?;
    Ok(fig.render(&results))
}

/// Fig. 21: SMT enabled — sibling hardware threads share each core.
pub fn fig21(config: &ReproConfig) -> Result<String> {
    let mut spec = cascade();
    spec.smt_ways = 2;
    let fig = PricingFigure {
        title: "Fig. 21: SMT enabled, 160 functions / 16 cores",
        paper_note: "paper: ideal price 0.473, litmus discount 45.4% (1.9% short) —\n\
                     sibling interference roughly doubles execution times",
        governor: fixed(&spec),
        env: shared_160(),
        method: Method::TableDriven,
        mix_pool: suite::benchmarks(),
        spec,
    };
    let tables = config.shared_tables(&fig.spec)?;
    let results = fig.run(config, &tables)?;
    Ok(fig.render(&results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_fast_reports_gmean_and_gap() {
        let out = fig11(&ReproConfig::fast()).unwrap();
        assert!(out.contains("gmean"));
        assert!(out.contains("litmus discount"));
        assert!(out.contains("float-py"));
    }
}
