use litmus_core::{CalibrationEnv, DiscountModel, LitmusPricing, PricingTables, TableBuilder};
use litmus_sim::MachineSpec;

/// Global knobs for the reproduction harness.
///
/// `full()` runs at the fidelity used for `EXPERIMENTS.md`;
/// `fast()` shrinks workloads and repetition counts for smoke runs and
/// CI (`litmus-repro --fast …`).
#[derive(Debug, Clone)]
pub struct ReproConfig {
    /// Scale applied to workload bodies (1.0 = paper-length functions).
    pub scale: f64,
    /// Scale applied to reference bodies during table construction.
    pub table_scale: f64,
    /// Repetitions per test function in pricing experiments
    /// (the paper uses 30).
    pub reps: usize,
    /// Generator stress levels for table construction.
    pub levels: Vec<usize>,
    /// Warm-up before measurements, ms.
    pub warmup_ms: u64,
}

impl ReproConfig {
    /// Full-fidelity configuration (minutes of runtime for `all`).
    pub fn full() -> Self {
        ReproConfig {
            scale: 0.2,
            table_scale: 0.1,
            reps: 10,
            levels: vec![4, 8, 14, 20, 26, 30],
            warmup_ms: 300,
        }
    }

    /// Smoke-test configuration (seconds of runtime for `all`).
    pub fn fast() -> Self {
        ReproConfig {
            scale: 0.05,
            table_scale: 0.03,
            reps: 2,
            levels: vec![6, 14, 24],
            warmup_ms: 120,
        }
    }

    /// Builds dedicated-environment tables (§7.1 protocol) on `spec`.
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures.
    pub fn dedicated_tables(
        &self,
        spec: &MachineSpec,
    ) -> Result<PricingTables, litmus_core::CoreError> {
        TableBuilder::new(spec.clone())
            .levels(self.levels.iter().copied())
            .reference_scale(self.table_scale)
            .build()
    }

    /// Builds sharing-enabled tables (§7.2 "Method 2": 50 functions
    /// across 5 cores) on `spec`.
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures.
    pub fn shared_tables(
        &self,
        spec: &MachineSpec,
    ) -> Result<PricingTables, litmus_core::CoreError> {
        // Leave room for the generator threads: levels are capped so
        // generators + the 5-core pool fit the machine. Smaller machines
        // (Ice Lake: 16 cores) would be left with too few ladder points,
        // so re-spread the ladder below the cap when needed.
        let max_level = spec.cores.saturating_sub(5);
        let mut levels: Vec<usize> = self
            .levels
            .iter()
            .copied()
            .filter(|&l| l <= max_level)
            .collect();
        if levels.len() < 3 {
            levels = vec![
                (max_level / 3).max(1),
                (2 * max_level / 3).max(2),
                max_level,
            ];
            levels.dedup();
        }
        TableBuilder::new(spec.clone())
            .levels(levels)
            .env(CalibrationEnv::Shared {
                fillers: 50,
                cores: 5,
            })
            .reference_scale((self.table_scale * 0.5).max(0.01))
            .build()
    }

    /// Fits a pricing engine from tables.
    ///
    /// # Errors
    ///
    /// Propagates model-fitting failures.
    pub fn pricing(&self, tables: &PricingTables) -> Result<LitmusPricing, litmus_core::CoreError> {
        Ok(LitmusPricing::new(DiscountModel::fit(tables)?))
    }
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_is_cheaper_than_full() {
        let fast = ReproConfig::fast();
        let full = ReproConfig::full();
        assert!(fast.scale < full.scale);
        assert!(fast.reps < full.reps);
        assert!(fast.levels.len() <= full.levels.len());
    }

    #[test]
    fn shared_tables_cap_levels() {
        let config = ReproConfig::fast();
        let spec = MachineSpec::ice_lake(); // 16 cores
        let tables = config.shared_tables(&spec).unwrap();
        // Levels ≤ 11 must fit generators + 5-core pool.
        for gen in litmus_workloads::TrafficGenerator::ALL {
            for row in tables
                .congestion(litmus_workloads::Language::Python, gen)
                .unwrap()
            {
                assert!(row.level + 5 <= spec.cores);
            }
        }
    }
}
