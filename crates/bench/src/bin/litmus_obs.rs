//! `litmus-obs` — query and diff telemetry JSONL exports.
//!
//! Replays (and the SLO engine) export their deterministic state as
//! JSONL (`ClusterReport::timeline_jsonl`, `SloReport::to_jsonl`).
//! This tool works on those files after the fact:
//!
//! ```text
//! litmus-obs summary <export.jsonl>
//!     Record counts by type and event name, counters, tenants seen.
//!
//! litmus-obs spans <export.jsonl> [--name PREFIX] [--tenant N]
//!                  [--machine N] [--slowest K]
//!     Filter timeline records, aggregate span durations per name,
//!     and print the K slowest matching spans as exemplars.
//!
//! litmus-obs diff <left.jsonl> <right.jsonl> [--context N]
//!     Byte-compare two exports line by line; on divergence print the
//!     first differing line with N lines of context and exit 1.
//!     Identical exports exit 0 — the determinism contract, checkable
//!     from the shell.
//!
//! litmus-obs tail <export.jsonl> [--follow-free]
//!     Replay a replay export's SLO signal incrementally: reconstruct
//!     the declared SLOs from the embedded `slo.spec`/`slo.rule`
//!     events, feed the `trace.*` completions through an
//!     `OnlineSloEngine` boundary by boundary, print fired/cleared
//!     alert lines and a burn-rate sparkline per SLO, and self-check
//!     the recomputed alert stream against the `slo.alert.*` events
//!     the replay embedded. `--follow-free` acknowledges the tail
//!     replays to end-of-file and exits (exports are finished sim
//!     artifacts — there is nothing to watch). Exit 0 when no page
//!     alert is still firing, 1 when one is, 2 on error or on a
//!     self-check mismatch.
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use litmus_observe::jsonl::{parse_export, FlatRecord};
use litmus_observe::{
    BurnRateRule, CompletionSample, OnlineSloEngine, SloAlert, SloSpec, SloTransition,
};
use litmus_telemetry::diff_report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("summary") => summary(&args[1..]),
        Some("spans") => spans(&args[1..]),
        Some("diff") => return diff(&args[1..]),
        Some("tail") => match tail(&args[1..]) {
            Ok(code) => return code,
            Err(message) => Err(message),
        },
        Some("--help" | "-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::from(if args.is_empty() { 2 } else { 0 });
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("litmus-obs: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: litmus-obs summary <export.jsonl>
       litmus-obs spans <export.jsonl> [--name PREFIX] [--tenant N] [--machine N] [--slowest K]
       litmus-obs diff <left.jsonl> <right.jsonl> [--context N]
       litmus-obs tail <export.jsonl> [--follow-free]
";

fn load(path: &str) -> Result<Vec<FlatRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    parse_export(&text).map_err(|(line, e)| format!("{path}:{line}: {e}"))
}

fn summary(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("summary takes exactly one export file".into());
    };
    let records = load(path)?;
    if let Some(meta) = records.iter().find(|r| r.record_type() == "meta") {
        let line = meta
            .fields
            .iter()
            .filter(|(k, _)| k != "type")
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("meta: {line}");
    }

    let mut by_type: BTreeMap<&str, usize> = BTreeMap::new();
    let mut by_name: BTreeMap<String, usize> = BTreeMap::new();
    let mut tenants: BTreeMap<i64, usize> = BTreeMap::new();
    for record in &records {
        *by_type.entry(record.record_type()).or_default() += 1;
        if matches!(record.record_type(), "event" | "span") {
            *by_name.entry(record.name().to_owned()).or_default() += 1;
            if let Some(tenant) = record.num("tenant") {
                *tenants.entry(tenant as i64).or_default() += 1;
            }
        }
    }
    println!("records: {}", records.len());
    for (kind, count) in &by_type {
        println!("  {kind:<10} {count}");
    }
    if !by_name.is_empty() {
        println!("timeline by name:");
        for (name, count) in &by_name {
            println!("  {name:<26} {count}");
        }
    }
    if !tenants.is_empty() {
        println!("tenants:");
        for (tenant, count) in &tenants {
            println!("  tenant {tenant:<4} {count} records");
        }
    }
    let counters: Vec<_> = records
        .iter()
        .filter(|r| r.record_type() == "counter")
        .collect();
    if !counters.is_empty() {
        println!("counters:");
        for counter in counters {
            println!(
                "  {:<26} {}",
                counter.name(),
                counter.num("value").unwrap_or(0.0) as u64
            );
        }
    }
    Ok(())
}

struct SpanFilter {
    name: Option<String>,
    tenant: Option<f64>,
    machine: Option<f64>,
}

impl SpanFilter {
    fn matches(&self, record: &FlatRecord) -> bool {
        if !matches!(record.record_type(), "event" | "span") {
            return false;
        }
        if let Some(prefix) = &self.name {
            if !record.name().starts_with(prefix.as_str()) {
                return false;
            }
        }
        if let Some(tenant) = self.tenant {
            if record.num("tenant") != Some(tenant) {
                return false;
            }
        }
        if let Some(machine) = self.machine {
            if record.num("machine") != Some(machine) {
                return false;
            }
        }
        true
    }
}

fn spans(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("spans needs an export file".into());
    };
    let mut filter = SpanFilter {
        name: None,
        tenant: None,
        machine: None,
    };
    let mut slowest = 10usize;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        let mut value = || rest.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--name" => filter.name = Some(value()?.clone()),
            "--tenant" => filter.tenant = Some(parse_num(value()?)?),
            "--machine" => filter.machine = Some(parse_num(value()?)?),
            "--slowest" => slowest = parse_num(value()?)? as usize,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    let records = load(path)?;
    let matching: Vec<&FlatRecord> = records.iter().filter(|r| filter.matches(r)).collect();
    println!("matched {} of {} records", matching.len(), records.len());

    // Per-name duration aggregates over closed spans.
    struct Agg {
        count: usize,
        spans: usize,
        total_ms: f64,
        max_ms: f64,
    }
    let mut by_name: BTreeMap<String, Agg> = BTreeMap::new();
    for record in &matching {
        let agg = by_name.entry(record.name().to_owned()).or_insert(Agg {
            count: 0,
            spans: 0,
            total_ms: 0.0,
            max_ms: 0.0,
        });
        agg.count += 1;
        if let Some(duration) = duration_ms(record) {
            agg.spans += 1;
            agg.total_ms += duration;
            agg.max_ms = agg.max_ms.max(duration);
        }
    }
    for (name, agg) in &by_name {
        if agg.spans > 0 {
            println!(
                "  {name:<20} n={:<6} spans={:<6} mean {:>8.1} ms  max {:>8.1} ms",
                agg.count,
                agg.spans,
                agg.total_ms / agg.spans as f64,
                agg.max_ms
            );
        } else {
            println!("  {name:<20} n={:<6} (point events)", agg.count);
        }
    }

    // Slowest exemplars: closed spans by descending duration, with an
    // explicit total-order tie-break (name, then trace id) — equal
    // durations are common (quantized sim time), and relying on input
    // line order would make the exemplar list depend on which export
    // variant produced the file.
    let mut closed: Vec<(&FlatRecord, f64)> = matching
        .iter()
        .filter_map(|r| duration_ms(r).map(|d| (*r, d)))
        .collect();
    closed.sort_by(slowest_order);
    if !closed.is_empty() && slowest > 0 {
        println!("slowest {}:", slowest.min(closed.len()));
        for (record, duration) in closed.iter().take(slowest) {
            let label = |key: &str| {
                record
                    .num(key)
                    .map(|v| format!("{}", v as i64))
                    .unwrap_or_else(|| "-".into())
            };
            println!(
                "  {:<16} {:>9.1} ms  at {:>8} ms  trace {:<6} tenant {:<4} machine {}",
                record.name(),
                duration,
                record.num("at_ms").unwrap_or(0.0) as u64,
                label("trace"),
                label("tenant"),
                label("machine"),
            );
        }
    }
    Ok(())
}

/// Total order for `--slowest`: descending duration, then span name,
/// then trace id (spans without one sort first). Every closed span in
/// an export carries a distinct (name, trace) pair per duration class,
/// so the exemplar list is independent of input line order — i.e. of
/// which export variant (streamed, materialized, re-merged) produced
/// the file.
fn slowest_order(a: &(&FlatRecord, f64), b: &(&FlatRecord, f64)) -> std::cmp::Ordering {
    let trace = |r: &FlatRecord| r.num("trace").unwrap_or(-1.0);
    b.1.total_cmp(&a.1)
        .then_with(|| a.0.name().cmp(b.0.name()))
        .then_with(|| trace(a.0).total_cmp(&trace(b.0)))
}

/// Replays a replay export's SLO signal incrementally (see module
/// docs). Returns the process exit code on success: 0 with no open
/// page alert, 1 with one still firing.
fn tail(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    for arg in args {
        match arg.as_str() {
            // Exports are finished sim artifacts: the tail always
            // replays to EOF and exits, it never watches the file. The
            // flag exists so scripts state that expectation explicitly.
            "--follow-free" => {}
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_owned()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let path = path.ok_or("tail needs an export file")?;
    let records = load(&path)?;

    let meta = records
        .iter()
        .find(|r| r.record_type() == "meta")
        .ok_or("export has no meta line")?;
    let slice_ms = meta
        .str_field("slice_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .or_else(|| meta.num("slice_ms").map(|v| v as u64))
        .ok_or("meta line has no slice_ms (not a replay export)")?
        .max(1);

    let specs = reconstruct_specs(&records)?;
    if specs.is_empty() {
        println!("no SLOs declared in '{path}' — nothing to tail");
        return Ok(ExitCode::SUCCESS);
    }

    let samples = join_completions(&records);
    let horizon = records
        .iter()
        .map(|r| {
            let at = r.num("at_ms").unwrap_or(0.0) as u64;
            at.max(r.num("end_ms").unwrap_or(0.0) as u64)
        })
        .max()
        .unwrap_or(0);
    println!(
        "tailing {path}: {} records, {} SLOs, {} completions, horizon {horizon} ms (slice {slice_ms} ms)",
        records.len(),
        specs.len(),
        samples.len()
    );

    // Drive the online engine exactly as the replay driver did: feed
    // completions as their boundary passes, advance slice by slice.
    let mut engine = OnlineSloEngine::new(specs, slice_ms);
    let mut recomputed: Vec<SloAlert> = Vec::new();
    let mut fed = 0;
    let mut now = 0;
    while now < horizon {
        now = (now + slice_ms).min(horizon);
        while fed < samples.len() && samples[fed].completed_ms <= now {
            engine.record(&samples[fed]);
            fed += 1;
        }
        recomputed.extend(engine.observe_boundary(now));
    }
    while fed < samples.len() {
        engine.record(&samples[fed]);
        fed += 1;
    }
    recomputed.extend(engine.finish(horizon));

    for alert in &recomputed {
        match alert.transition {
            SloTransition::Fired => println!(
                "  @ {:>8} ms FIRED   [{}] {} (burn {:.1}x fast / {:.1}x slow)",
                alert.at_ms, alert.severity, alert.slo, alert.burn_fast, alert.burn_slow
            ),
            SloTransition::Cleared => println!(
                "  @ {:>8} ms cleared [{}] {} (peak burn {:.1}x)",
                alert.at_ms, alert.severity, alert.slo, alert.peak_burn
            ),
        }
    }
    if recomputed.is_empty() {
        println!("  no alert transitions over the horizon");
    }

    println!("burn rate (fast window, first rule; full height = peak):");
    for series in engine.series() {
        let tenant = match series.tenant {
            Some(t) => format!("tenant {t}"),
            None => "all".to_owned(),
        };
        let peak = series
            .points
            .iter()
            .map(|(_, burn)| *burn)
            .fold(0.0f64, f64::max);
        println!(
            "  {:<20} {:<9} peak {peak:>6.1}x  |{}|",
            series.slo,
            tenant,
            sparkline(&series.points, 60)
        );
    }

    // Self-check: the recomputed transition stream must match the
    // `slo.alert.*` events the replay itself embedded, event for event.
    let embedded: Vec<(u64, String, String, bool)> = records
        .iter()
        .filter(|r| r.record_type() == "event")
        .filter(|r| matches!(r.name(), "slo.alert.fired" | "slo.alert.cleared"))
        .map(|r| {
            (
                r.num("at_ms").unwrap_or(0.0) as u64,
                r.str_field("slo").unwrap_or("").to_owned(),
                r.str_field("severity").unwrap_or("").to_owned(),
                r.name() == "slo.alert.fired",
            )
        })
        .collect();
    let ours: Vec<(u64, String, String, bool)> = recomputed
        .iter()
        .map(|alert| {
            (
                alert.at_ms,
                alert.slo.clone(),
                alert.severity.to_owned(),
                alert.transition == SloTransition::Fired,
            )
        })
        .collect();
    if ours != embedded {
        eprintln!(
            "litmus-obs: self-check FAILED: recomputed {} transitions, export embeds {} — \
             the export was not produced by this SLO configuration",
            ours.len(),
            embedded.len()
        );
        for (i, (mine, theirs)) in ours.iter().zip(&embedded).enumerate() {
            if mine != theirs {
                eprintln!("  first divergence at transition {i}: {mine:?} != {theirs:?}");
                break;
            }
        }
        return Ok(ExitCode::from(2));
    }
    println!(
        "self-check: recomputed alert stream matches the embedded events ({} transitions)",
        ours.len()
    );

    let open_pages = engine
        .active_alerts()
        .iter()
        .filter(|alert| alert.severity == "page")
        .count();
    if open_pages > 0 {
        println!("{open_pages} page alert(s) still firing at horizon");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Rebuilds the replay's `SloSpec` list from the `slo.spec` /
/// `slo.rule` config events the driver mirrors onto the timeline head.
fn reconstruct_specs(records: &[FlatRecord]) -> Result<Vec<SloSpec>, String> {
    let mut specs: Vec<SloSpec> = Vec::new();
    for record in records.iter().filter(|r| r.name() == "slo.spec") {
        let name = record
            .str_field("slo")
            .ok_or("slo.spec event without a name")?;
        let threshold = record.num("threshold").unwrap_or(0.0);
        let mut spec = match record.str_field("kind") {
            Some("slowdown") => SloSpec::slowdown(name, threshold),
            Some("queue-wait") => SloSpec::queue_wait(name, threshold as u64),
            Some("billing-rate") => SloSpec::billing_rate(name, threshold),
            other => return Err(format!("unknown SLO kind {other:?}")),
        }
        .objective(record.num("objective").unwrap_or(0.0))
        .rules(Vec::new());
        if let Some(tenant) = record.num("tenant") {
            spec = spec.tenant(tenant as u32);
        }
        specs.push(spec);
    }
    for record in records.iter().filter(|r| r.name() == "slo.rule") {
        let spec_idx = record.num("spec").unwrap_or(-1.0);
        let spec = (spec_idx >= 0.0)
            .then(|| specs.get_mut(spec_idx as usize))
            .flatten()
            .ok_or_else(|| format!("slo.rule event for unknown spec {spec_idx}"))?;
        // Rule severities are static strings in the engine; a CLI
        // reconstructing finitely many rules leaks one tiny allocation
        // per rule for the life of the process.
        let severity: &'static str = Box::leak(
            record
                .str_field("severity")
                .unwrap_or("alert")
                .to_owned()
                .into_boxed_str(),
        );
        spec.rules.push(BurnRateRule::new(
            severity,
            record.num("fast_ms").unwrap_or(0.0) as u64,
            record.num("slow_ms").unwrap_or(0.0) as u64,
            record.num("factor").unwrap_or(0.0),
        ));
    }
    Ok(specs)
}

/// Joins `trace.queue` spans and `trace.billed` events by trace id
/// into completion samples, ascending by (completion, trace) — the
/// feed order the online engine consumes.
fn join_completions(records: &[FlatRecord]) -> Vec<CompletionSample> {
    #[derive(Default)]
    struct Partial {
        queue: Option<(u64, u64, u64, u64)>,
        billed: Option<(u64, u64, f64, f64)>,
    }
    let mut by_trace: BTreeMap<u64, Partial> = BTreeMap::new();
    for record in records {
        match record.name() {
            "trace.queue" => {
                let (Some(trace), Some(end)) = (record.num("trace"), record.num("end_ms")) else {
                    continue;
                };
                by_trace.entry(trace as u64).or_default().queue = Some((
                    record.num("at_ms").unwrap_or(0.0) as u64,
                    end as u64,
                    record.num("machine").unwrap_or(0.0) as u64,
                    record.num("moves").unwrap_or(0.0) as u64,
                ));
            }
            "trace.billed" => {
                let Some(trace) = record.num("trace") else {
                    continue;
                };
                by_trace.entry(trace as u64).or_default().billed = Some((
                    record.num("at_ms").unwrap_or(0.0) as u64,
                    record.num("tenant").unwrap_or(0.0) as u64,
                    record.num("cost").unwrap_or(0.0),
                    record.num("predicted").unwrap_or(0.0),
                ));
            }
            _ => {}
        }
    }
    let mut samples: Vec<CompletionSample> = by_trace
        .into_iter()
        .filter_map(|(trace, partial)| {
            let (arrived_ms, launched_ms, machine, moves) = partial.queue?;
            let (completed_ms, tenant, cost, predicted) = partial.billed?;
            Some(CompletionSample {
                trace,
                tenant: tenant as u32,
                machine,
                arrived_ms,
                launched_ms,
                completed_ms,
                wait_ms: launched_ms.saturating_sub(arrived_ms),
                moves,
                cost,
                predicted,
            })
        })
        .collect();
    samples.sort_by(|a, b| {
        a.completed_ms
            .cmp(&b.completed_ms)
            .then(a.trace.cmp(&b.trace))
    });
    samples
}

/// Compresses a burn-rate series into `width` columns (max within each
/// column), glyph height relative to the series peak.
fn sparkline(points: &[(u64, f64)], width: usize) -> String {
    const GLYPHS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if points.is_empty() || width == 0 {
        return String::new();
    }
    let peak = points
        .iter()
        .map(|(_, burn)| *burn)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let columns = width.min(points.len());
    let mut out = String::with_capacity(columns * 3);
    for column in 0..columns {
        let lo = column * points.len() / columns;
        let hi = ((column + 1) * points.len() / columns).max(lo + 1);
        let burn = points[lo..hi]
            .iter()
            .map(|(_, b)| *b)
            .fold(0.0f64, f64::max);
        let level = ((burn / peak) * 8.0).ceil().clamp(0.0, 8.0) as usize;
        out.push(GLYPHS[level]);
    }
    out
}

fn duration_ms(record: &FlatRecord) -> Option<f64> {
    if record.record_type() != "span" {
        return None;
    }
    Some(record.num("end_ms")? - record.num("at_ms")?)
}

fn parse_num(text: &str) -> Result<f64, String> {
    text.parse::<f64>()
        .map_err(|_| format!("'{text}' is not a number"))
}

fn diff(args: &[String]) -> ExitCode {
    let (paths, mut context) = (
        args.iter()
            .filter(|a| !a.starts_with("--"))
            .collect::<Vec<_>>(),
        3usize,
    );
    if let Some(i) = args.iter().position(|a| a == "--context") {
        match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) => context = n,
            None => {
                eprintln!("litmus-obs: --context needs a number");
                return ExitCode::from(2);
            }
        }
    }
    let [left_path, right_path] = paths[..] else {
        eprintln!("litmus-obs: diff takes exactly two export files");
        return ExitCode::from(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))
    };
    let (left, right) = match (read(left_path), read(right_path)) {
        (Ok(l), Ok(r)) => (l, r),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("litmus-obs: {e}");
            return ExitCode::from(2);
        }
    };
    match diff_report(left_path, &left, right_path, &right, context) {
        None => {
            println!("identical ({} lines)", left.lines().count());
            ExitCode::SUCCESS
        }
        Some(report) => {
            println!("{report}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: `--slowest` ordering must be a total order that is
    /// independent of input line order. Equal durations tie-break on
    /// span name, equal names on trace id — so sorting a reversed
    /// input yields the identical exemplar sequence.
    #[test]
    fn slowest_order_breaks_duration_ties_deterministically() {
        let export = "\
{\"type\":\"span\",\"at_ms\":0,\"end_ms\":30,\"name\":\"trace.run\",\"trace\":7}\n\
{\"type\":\"span\",\"at_ms\":0,\"end_ms\":30,\"name\":\"trace.queue\",\"trace\":9}\n\
{\"type\":\"span\",\"at_ms\":0,\"end_ms\":30,\"name\":\"trace.queue\",\"trace\":2}\n\
{\"type\":\"span\",\"at_ms\":10,\"end_ms\":50,\"name\":\"trace.queue\",\"trace\":5}\n\
{\"type\":\"span\",\"at_ms\":0,\"end_ms\":30,\"name\":\"replay\"}\n";
        let records = parse_export(export).expect("fixture parses");
        let mut rows: Vec<(&FlatRecord, f64)> = records
            .iter()
            .map(|r| {
                let d = r.num("end_ms").unwrap() - r.num("at_ms").unwrap();
                (r, d)
            })
            .collect();

        let key = |rows: &[(&FlatRecord, f64)]| -> Vec<(String, i64)> {
            rows.iter()
                .map(|(r, _)| (r.name().to_owned(), r.num("trace").unwrap_or(-1.0) as i64))
                .collect()
        };
        rows.sort_by(slowest_order);
        let sorted = key(&rows);
        assert_eq!(
            sorted,
            vec![
                ("trace.queue".to_owned(), 5), // 40 ms beats every 30 ms tie
                ("replay".to_owned(), -1),     // 30 ms ties: name asc, no trace first
                ("trace.queue".to_owned(), 2), // same name: trace id asc
                ("trace.queue".to_owned(), 9),
                ("trace.run".to_owned(), 7),
            ]
        );

        // Line order cannot matter: reversing the input re-sorts to
        // the same sequence.
        let mut reversed: Vec<(&FlatRecord, f64)> = rows.iter().rev().cloned().collect();
        reversed.sort_by(slowest_order);
        assert_eq!(key(&reversed), sorted);
    }
}
