//! `litmus-obs` — query and diff telemetry JSONL exports.
//!
//! Replays (and the SLO engine) export their deterministic state as
//! JSONL (`ClusterReport::timeline_jsonl`, `SloReport::to_jsonl`).
//! This tool works on those files after the fact:
//!
//! ```text
//! litmus-obs summary <export.jsonl>
//!     Record counts by type and event name, counters, tenants seen.
//!
//! litmus-obs spans <export.jsonl> [--name PREFIX] [--tenant N]
//!                  [--machine N] [--slowest K]
//!     Filter timeline records, aggregate span durations per name,
//!     and print the K slowest matching spans as exemplars.
//!
//! litmus-obs diff <left.jsonl> <right.jsonl> [--context N]
//!     Byte-compare two exports line by line; on divergence print the
//!     first differing line with N lines of context and exit 1.
//!     Identical exports exit 0 — the determinism contract, checkable
//!     from the shell.
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use litmus_observe::jsonl::{parse_export, FlatRecord};
use litmus_telemetry::diff_report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("summary") => summary(&args[1..]),
        Some("spans") => spans(&args[1..]),
        Some("diff") => return diff(&args[1..]),
        Some("--help" | "-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::from(if args.is_empty() { 2 } else { 0 });
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("litmus-obs: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: litmus-obs summary <export.jsonl>
       litmus-obs spans <export.jsonl> [--name PREFIX] [--tenant N] [--machine N] [--slowest K]
       litmus-obs diff <left.jsonl> <right.jsonl> [--context N]
";

fn load(path: &str) -> Result<Vec<FlatRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    parse_export(&text).map_err(|(line, e)| format!("{path}:{line}: {e}"))
}

fn summary(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("summary takes exactly one export file".into());
    };
    let records = load(path)?;
    if let Some(meta) = records.iter().find(|r| r.record_type() == "meta") {
        let line = meta
            .fields
            .iter()
            .filter(|(k, _)| k != "type")
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("meta: {line}");
    }

    let mut by_type: BTreeMap<&str, usize> = BTreeMap::new();
    let mut by_name: BTreeMap<String, usize> = BTreeMap::new();
    let mut tenants: BTreeMap<i64, usize> = BTreeMap::new();
    for record in &records {
        *by_type.entry(record.record_type()).or_default() += 1;
        if matches!(record.record_type(), "event" | "span") {
            *by_name.entry(record.name().to_owned()).or_default() += 1;
            if let Some(tenant) = record.num("tenant") {
                *tenants.entry(tenant as i64).or_default() += 1;
            }
        }
    }
    println!("records: {}", records.len());
    for (kind, count) in &by_type {
        println!("  {kind:<10} {count}");
    }
    if !by_name.is_empty() {
        println!("timeline by name:");
        for (name, count) in &by_name {
            println!("  {name:<26} {count}");
        }
    }
    if !tenants.is_empty() {
        println!("tenants:");
        for (tenant, count) in &tenants {
            println!("  tenant {tenant:<4} {count} records");
        }
    }
    let counters: Vec<_> = records
        .iter()
        .filter(|r| r.record_type() == "counter")
        .collect();
    if !counters.is_empty() {
        println!("counters:");
        for counter in counters {
            println!(
                "  {:<26} {}",
                counter.name(),
                counter.num("value").unwrap_or(0.0) as u64
            );
        }
    }
    Ok(())
}

struct SpanFilter {
    name: Option<String>,
    tenant: Option<f64>,
    machine: Option<f64>,
}

impl SpanFilter {
    fn matches(&self, record: &FlatRecord) -> bool {
        if !matches!(record.record_type(), "event" | "span") {
            return false;
        }
        if let Some(prefix) = &self.name {
            if !record.name().starts_with(prefix.as_str()) {
                return false;
            }
        }
        if let Some(tenant) = self.tenant {
            if record.num("tenant") != Some(tenant) {
                return false;
            }
        }
        if let Some(machine) = self.machine {
            if record.num("machine") != Some(machine) {
                return false;
            }
        }
        true
    }
}

fn spans(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("spans needs an export file".into());
    };
    let mut filter = SpanFilter {
        name: None,
        tenant: None,
        machine: None,
    };
    let mut slowest = 10usize;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        let mut value = || rest.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--name" => filter.name = Some(value()?.clone()),
            "--tenant" => filter.tenant = Some(parse_num(value()?)?),
            "--machine" => filter.machine = Some(parse_num(value()?)?),
            "--slowest" => slowest = parse_num(value()?)? as usize,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    let records = load(path)?;
    let matching: Vec<&FlatRecord> = records.iter().filter(|r| filter.matches(r)).collect();
    println!("matched {} of {} records", matching.len(), records.len());

    // Per-name duration aggregates over closed spans.
    struct Agg {
        count: usize,
        spans: usize,
        total_ms: f64,
        max_ms: f64,
    }
    let mut by_name: BTreeMap<String, Agg> = BTreeMap::new();
    for record in &matching {
        let agg = by_name.entry(record.name().to_owned()).or_insert(Agg {
            count: 0,
            spans: 0,
            total_ms: 0.0,
            max_ms: 0.0,
        });
        agg.count += 1;
        if let Some(duration) = duration_ms(record) {
            agg.spans += 1;
            agg.total_ms += duration;
            agg.max_ms = agg.max_ms.max(duration);
        }
    }
    for (name, agg) in &by_name {
        if agg.spans > 0 {
            println!(
                "  {name:<20} n={:<6} spans={:<6} mean {:>8.1} ms  max {:>8.1} ms",
                agg.count,
                agg.spans,
                agg.total_ms / agg.spans as f64,
                agg.max_ms
            );
        } else {
            println!("  {name:<20} n={:<6} (point events)", agg.count);
        }
    }

    // Slowest exemplars: closed spans by descending duration, ties by
    // line order (stable sort) so output is deterministic.
    let mut closed: Vec<(&&FlatRecord, f64)> = matching
        .iter()
        .filter_map(|r| duration_ms(r).map(|d| (r, d)))
        .collect();
    closed.sort_by(|a, b| b.1.total_cmp(&a.1));
    if !closed.is_empty() && slowest > 0 {
        println!("slowest {}:", slowest.min(closed.len()));
        for (record, duration) in closed.iter().take(slowest) {
            let label = |key: &str| {
                record
                    .num(key)
                    .map(|v| format!("{}", v as i64))
                    .unwrap_or_else(|| "-".into())
            };
            println!(
                "  {:<16} {:>9.1} ms  at {:>8} ms  trace {:<6} tenant {:<4} machine {}",
                record.name(),
                duration,
                record.num("at_ms").unwrap_or(0.0) as u64,
                label("trace"),
                label("tenant"),
                label("machine"),
            );
        }
    }
    Ok(())
}

fn duration_ms(record: &FlatRecord) -> Option<f64> {
    if record.record_type() != "span" {
        return None;
    }
    Some(record.num("end_ms")? - record.num("at_ms")?)
}

fn parse_num(text: &str) -> Result<f64, String> {
    text.parse::<f64>()
        .map_err(|_| format!("'{text}' is not a number"))
}

fn diff(args: &[String]) -> ExitCode {
    let (paths, mut context) = (
        args.iter()
            .filter(|a| !a.starts_with("--"))
            .collect::<Vec<_>>(),
        3usize,
    );
    if let Some(i) = args.iter().position(|a| a == "--context") {
        match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) => context = n,
            None => {
                eprintln!("litmus-obs: --context needs a number");
                return ExitCode::from(2);
            }
        }
    }
    let [left_path, right_path] = paths[..] else {
        eprintln!("litmus-obs: diff takes exactly two export files");
        return ExitCode::from(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))
    };
    let (left, right) = match (read(left_path), read(right_path)) {
        (Ok(l), Ok(r)) => (l, r),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("litmus-obs: {e}");
            return ExitCode::from(2);
        }
    };
    match diff_report(left_path, &left, right_path, &right, context) {
        None => {
            println!("identical ({} lines)", left.lines().count());
            ExitCode::SUCCESS
        }
        Some(report) => {
            println!("{report}");
            ExitCode::FAILURE
        }
    }
}
