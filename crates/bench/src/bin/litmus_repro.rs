//! `litmus-repro` — regenerate every table and figure of the Litmus
//! paper from the simulator-based reproduction.
//!
//! ```text
//! litmus-repro [--fast] all            # every experiment, paper order
//! litmus-repro [--fast] fig11 fig12    # selected experiments
//! litmus-repro list                    # available experiment ids
//! ```
//!
//! `--fast` shrinks workloads and repetition counts for smoke runs;
//! the `EXPERIMENTS.md` numbers come from the default (full) fidelity.

use std::process::ExitCode;

use litmus_bench::{run_experiment, ReproConfig, EXPERIMENTS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut targets: Vec<String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--fast" => fast = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            "list" => {
                for id in EXPERIMENTS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    if targets.iter().any(|t| t == "all") {
        targets = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let config = if fast {
        ReproConfig::fast()
    } else {
        ReproConfig::full()
    };
    for target in &targets {
        let started = std::time::Instant::now();
        match run_experiment(target, &config) {
            Ok(report) => {
                println!("{report}");
                eprintln!("[{target} done in {:.1?}]", started.elapsed());
            }
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    eprintln!(
        "usage: litmus-repro [--fast] <experiment>…\n\
         experiments: all, list, {}",
        EXPERIMENTS.join(", ")
    );
}
