//! Perf-trajectory runner: replay the bundled Azure fixture end to end
//! and write `BENCH_cluster.json` — the committed baseline CI's
//! bench-gate checks regressions against.
//!
//! Two arms, each run under BOTH replay engines (slice stepping — the
//! oracle — and the discrete-event engine), at 1 and 4 worker-pool
//! threads:
//!
//! * **dense** — one fixture day with stealing + predictive
//!   autoscaling on: every slice boundary is a decision round, so this
//!   measures the full dispatch → simulate → probe → price → shard
//!   path and the per-stage breakdown (dispatch / scale / steal /
//!   step / barrier / queue);
//! * **sparse** — a two-day fixture chain stretched to real-time
//!   minutes and thinned hard, so almost every slice is empty: the
//!   workload the event engine collapses. The file records the
//!   slice-vs-event speedup per thread count.
//!
//! The binary is also the CI perf-regression gate: it exits non-zero
//! if the event-driven replay is not bit-identical to the slice oracle
//! (full `ClusterReport` AND telemetry JSONL), or if event-driven
//! throughput on the sparse arm falls below slice-mode.
//!
//! Usage: `bench-trajectory [--smoke] [--out PATH]`
//! `--smoke` shrinks both arms for CI (and is NOT a number to commit:
//! the checked-in baseline is a full-mode run). `--out` defaults to
//! `BENCH_cluster.json` in the current directory — run from the repo
//! root, or let `scripts/bench_trajectory` do it for you.

use std::time::Instant;

use litmus_cluster::{
    AutoscalerConfig, Cluster, ClusterConfig, ClusterDriver, ClusterReport, LitmusAware,
    MachineConfig, PredictiveConfig, StealingConfig, SteppingMode,
};
use litmus_core::{DiscountModel, PricingTables, TableBuilder};
use litmus_forecast::ForecasterSpec;
use litmus_platform::TraceSource;
use litmus_sim::MachineSpec;
use litmus_telemetry::json::{array, JsonObject};
use litmus_trace::{
    fixture, multi_day_source, ExpandConfig, IntraMinute, TraceTransform, TransformedSource,
};

const MACHINES: usize = 6;
const SPARSE_MACHINES: usize = 4;
const CORES_PER_MACHINE: usize = 8;
const SEED: u64 = 2024;

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Slice,
    Event,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Slice => "slice",
            Engine::Event => "event-driven",
        }
    }

    fn stepping(self) -> SteppingMode {
        match self {
            Engine::Slice => SteppingMode::Pooled,
            Engine::Event => SteppingMode::EventDriven,
        }
    }
}

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 22])
        .reference_scale(0.05)
        .build()
        .expect("tables build");
    let model = DiscountModel::fit(&tables).expect("model fit");
    (tables, model)
}

fn cluster_config(threads: usize) -> ClusterConfig {
    let machines: Vec<_> = (0..MACHINES)
        .map(|i| {
            let background = if i < MACHINES / 2 { 20 } else { 0 };
            MachineConfig::new(CORES_PER_MACHINE)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(80)
                .max_inflight(4)
                .seed(0xA27E + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), MACHINES, CORES_PER_MACHINE)
        .machines(machines)
        .serving_scale(0.05)
        .slice_ms(20)
        .threads(threads)
}

/// The sparse arm's fleet: idle machines only (background fillers are
/// never idle and would defeat the skip), no elasticity — the
/// multi-day-replay shape from the ROADMAP.
fn sparse_config(threads: usize) -> ClusterConfig {
    let machines: Vec<_> = (0..SPARSE_MACHINES)
        .map(|i| {
            MachineConfig::new(CORES_PER_MACHINE)
                .warmup_ms(80)
                .max_inflight(4)
                .seed(0xA27E + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(
        MachineSpec::cascade_lake(),
        SPARSE_MACHINES,
        CORES_PER_MACHINE,
    )
    .machines(machines)
    .serving_scale(0.05)
    .slice_ms(20)
    .threads(threads)
}

/// The same every-feature-on driver as `replay_inspect`: stealing +
/// predictive autoscaling + profiling, so the stage breakdown covers
/// every stage the replay loop has.
fn driver() -> ClusterDriver<LitmusAware> {
    ClusterDriver::new(LitmusAware::new())
        .stealing(StealingConfig::default().backlog_threshold(3))
        .autoscale(
            AutoscalerConfig::new(
                MachineConfig::new(CORES_PER_MACHINE)
                    .background_scale(0.05)
                    .warmup_ms(80)
                    .max_inflight(4)
                    .seed(0xB007),
            )
            .high_water(1.8)
            .low_water(1.05)
            .machine_bounds(MACHINES, 12)
            .cooldown_ms(200)
            .predictive(PredictiveConfig::new(
                ForecasterSpec::Ewma { alpha: 0.35 },
                120.0,
            )),
        )
        .profiling(true)
}

/// Plain Litmus-aware routing for the sparse arm: with elastic control
/// off, the event engine may bulk-skip quiet boundaries instead of
/// degrading to per-boundary probe ticks.
fn sparse_driver() -> ClusterDriver<LitmusAware> {
    ClusterDriver::new(LitmusAware::new()).profiling(true)
}

struct RunResult {
    engine: Engine,
    threads: usize,
    reps: usize,
    wall_ms: Vec<f64>,
    best: ClusterReport,
}

impl RunResult {
    fn best_ms(&self) -> f64 {
        self.wall_ms.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

fn run<S: TraceSource>(
    config: &ClusterConfig,
    driver: &ClusterDriver<LitmusAware>,
    source: impl Fn() -> S,
    engine: Engine,
    reps: usize,
) -> RunResult {
    let (tables, model) = calibration();
    let config = config.clone().stepping(engine.stepping());
    let mut wall_ms = Vec::with_capacity(reps);
    let mut best: Option<(f64, ClusterReport)> = None;
    for _ in 0..reps {
        let mut cluster =
            Cluster::build(config.clone(), tables.clone(), model.clone()).expect("cluster boots");
        let mut driver = driver.clone();
        let source = source();
        let started = Instant::now();
        let report = driver
            .replay_source(&mut cluster, source)
            .expect("replay succeeds");
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        wall_ms.push(elapsed);
        if best.as_ref().is_none_or(|(t, _)| elapsed < *t) {
            best = Some((elapsed, report));
        }
    }
    let (_, best) = best.expect("at least one rep");
    RunResult {
        engine,
        threads: config.threads,
        reps,
        wall_ms,
        best,
    }
}

/// The oracle gate: event-driven must be bit-identical to slice
/// stepping — report AND telemetry JSONL. Divergence fails the bench
/// (and therefore CI's bench-gate job).
fn assert_oracle_equal(slice: &RunResult, event: &RunResult, arm: &str) {
    if slice.best != event.best || slice.best.timeline_jsonl() != event.best.timeline_jsonl() {
        eprintln!(
            "BENCH GATE FAIL ({arm}, threads={}): event-driven replay diverged from the \
             slice oracle",
            slice.threads
        );
        std::process::exit(1);
    }
    println!(
        "  threads={}: event-driven bit-identical to slice oracle",
        slice.threads
    );
}

fn run_json(result: &RunResult, invocations: usize) -> String {
    let best_ms = result.best_ms();
    let mean_ms = result.wall_ms.iter().sum::<f64>() / result.wall_ms.len() as f64;
    let mut obj = JsonObject::new();
    obj.str_field("engine", result.engine.name());
    obj.u64_field("threads", result.threads as u64);
    obj.u64_field("reps", result.reps as u64);
    obj.u64_field("invocations", invocations as u64);
    obj.u64_field("completed", result.best.completed as u64);
    obj.f64_field("best_wall_ms", best_ms);
    obj.f64_field("mean_wall_ms", mean_ms);
    obj.f64_field("throughput_inv_per_s", invocations as f64 / (best_ms / 1e3));
    obj.u64_field("peak_machines", result.best.peak_machines as u64);
    // Wall-clock stage breakdown from the fastest rep — slice-vs-event
    // lives here ("barrier" and "queue"/"skip" especially).
    obj.raw_field("stages", &result.best.telemetry().profile().to_json());
    obj.finish()
}

fn print_run(result: &RunResult, invocations: usize) {
    let best_ms = result.best_ms();
    println!(
        "  threads={} engine={}: best {best_ms:.1} ms, {:.0} inv/s",
        result.threads,
        result.engine.name(),
        invocations as f64 / (best_ms / 1e3),
    );
    print!("{}", result.best.telemetry().profile().summary());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_cluster.json".to_string());

    // One trace minute compressed to this many sim ms; smoke shrinks
    // the day so CI finishes in seconds.
    let minute_ms: u64 = if smoke { 150 } else { 600 };
    // The sparse arm stretches minutes instead, so the two-day chain is
    // dominated by empty slices.
    let sparse_minute_ms: u64 = if smoke { 8_000 } else { 120_000 };
    let reps: usize = if smoke { 1 } else { 3 };

    let dataset = fixture::dataset();
    let trace = dataset
        .expand(
            ExpandConfig::new(SEED)
                .minute_ms(minute_ms)
                .placement(IntraMinute::Poisson),
        )
        .expect("fixture expands");
    println!(
        "bench-trajectory ({}): dense arm {} invocations over {} fixture minutes, \
         {} reps per engine/thread combination",
        if smoke { "smoke" } else { "full" },
        trace.len(),
        dataset.minutes(),
        reps,
    );

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let config = cluster_config(threads);
        let bench_driver = driver();
        let slice = run(
            &config,
            &bench_driver,
            || trace.source(),
            Engine::Slice,
            reps,
        );
        let event = run(
            &config,
            &bench_driver,
            || trace.source(),
            Engine::Event,
            reps,
        );
        assert_oracle_equal(&slice, &event, "dense");
        print_run(&slice, trace.len());
        print_run(&event, trace.len());
        runs.push(run_json(&slice, trace.len()));
        runs.push(run_json(&event, trace.len()));
    }

    // Sparse arm: two fixture days chained on a shared tenant map,
    // stretched to `sparse_minute_ms` per trace minute and thinned to
    // a trickle — the replay is almost entirely idle gaps.
    let days = [fixture::dataset(), fixture::dataset()];
    let sparse_expand = ExpandConfig::new(SEED)
        .minute_ms(sparse_minute_ms)
        .placement(IntraMinute::Poisson);
    let sparse_source = || {
        let source = multi_day_source(&days, sparse_expand).expect("two-day chain builds");
        TransformedSource::new(
            source,
            vec![TraceTransform::ScaleRate {
                keep_fraction: 0.04,
                seed: 9,
            }],
        )
        .expect("thinning transform builds")
    };
    let sparse_invocations = {
        let mut source = sparse_source();
        let mut n = 0usize;
        while source.next_event().is_some() {
            n += 1;
        }
        n
    };
    println!(
        "sparse arm: {} invocations over 2 fixture days at {} ms/minute",
        sparse_invocations, sparse_minute_ms,
    );

    let mut sparse_runs = Vec::new();
    let mut speedups = Vec::new();
    for threads in [1usize, 4] {
        let config = sparse_config(threads);
        let bench_driver = sparse_driver();
        let slice = run(&config, &bench_driver, sparse_source, Engine::Slice, reps);
        let event = run(&config, &bench_driver, sparse_source, Engine::Event, reps);
        assert_oracle_equal(&slice, &event, "sparse");
        print_run(&slice, sparse_invocations);
        print_run(&event, sparse_invocations);
        let speedup = slice.best_ms() / event.best_ms();
        println!("  threads={threads}: event-driven speedup {speedup:.1}x");
        sparse_runs.push(run_json(&slice, sparse_invocations));
        sparse_runs.push(run_json(&event, sparse_invocations));
        speedups.push((threads, speedup));
    }

    // The perf-regression gate: the event engine must not be slower
    // than the oracle on its home-turf workload, at any thread count.
    for &(threads, speedup) in &speedups {
        if speedup < 1.0 {
            eprintln!(
                "BENCH GATE FAIL (sparse, threads={threads}): event-driven replay is \
                 {speedup:.2}x slice-mode — throughput regressed below the oracle"
            );
            std::process::exit(1);
        }
    }

    let mut sparse_doc = JsonObject::new();
    sparse_doc.u64_field("minute_ms", sparse_minute_ms);
    sparse_doc.u64_field("days", days.len() as u64);
    sparse_doc.u64_field("machines", SPARSE_MACHINES as u64);
    sparse_doc.u64_field("invocations", sparse_invocations as u64);
    for &(threads, speedup) in &speedups {
        match threads {
            1 => sparse_doc.f64_field("speedup_threads_1", speedup),
            _ => sparse_doc.f64_field("speedup_threads_4", speedup),
        }
    }
    sparse_doc.raw_field("runs", &array(sparse_runs));

    let mut doc = JsonObject::new();
    doc.str_field("bench", "cluster_trajectory");
    doc.str_field("mode", if smoke { "smoke" } else { "full" });
    doc.u64_field("minute_ms", minute_ms);
    doc.u64_field("machines", MACHINES as u64);
    doc.u64_field("cores_per_machine", CORES_PER_MACHINE as u64);
    doc.u64_field("fixture_minutes", dataset.minutes() as u64);
    doc.u64_field("invocations", trace.len() as u64);
    doc.raw_field("runs", &array(runs));
    doc.raw_field("sparse", &sparse_doc.finish());
    let json = format!("{}\n", doc.finish());
    std::fs::write(&out_path, &json).expect("write bench trajectory file");
    println!("wrote {out_path}");
}
