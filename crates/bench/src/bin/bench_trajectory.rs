//! Perf-trajectory runner: replay the bundled Azure fixture day end to
//! end and write `BENCH_cluster.json` — the committed baseline later
//! PRs (the ROADMAP's slice-free engine in particular) must show
//! deltas against.
//!
//! Two numbers matter and both land in the file:
//!
//! * **replay throughput** — invocations/second through the full
//!   dispatch → simulate → probe → price → shard path, at 1 and 4
//!   worker-pool threads (best-of-N wall time, so the baseline is a
//!   floor, not an average over scheduler noise);
//! * **worker-pool stage timings** — the opt-in wall-clock profiler's
//!   per-stage breakdown (dispatch / scale / steal / step / barrier),
//!   taken from the fastest rep. `barrier` is the per-slice convoy
//!   cost a slice-free engine would remove, which is why it must be in
//!   the committed baseline.
//!
//! Usage: `bench-trajectory [--smoke] [--out PATH]`
//! `--smoke` shrinks the replay for CI (and is NOT a number to commit:
//! the checked-in baseline is a full-mode run). `--out` defaults to
//! `BENCH_cluster.json` in the current directory — run from the repo
//! root, or let `scripts/bench_trajectory` do it for you.

use std::time::Instant;

use litmus_cluster::{
    AutoscalerConfig, Cluster, ClusterConfig, ClusterDriver, ClusterReport, LitmusAware,
    MachineConfig, PredictiveConfig, StealingConfig,
};
use litmus_core::{DiscountModel, PricingTables, TableBuilder};
use litmus_forecast::ForecasterSpec;
use litmus_platform::InvocationTrace;
use litmus_sim::MachineSpec;
use litmus_telemetry::json::{array, JsonObject};
use litmus_trace::{fixture, ExpandConfig, IntraMinute};

const MACHINES: usize = 6;
const CORES_PER_MACHINE: usize = 8;
const SEED: u64 = 2024;

fn calibration() -> (PricingTables, DiscountModel) {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 22])
        .reference_scale(0.05)
        .build()
        .expect("tables build");
    let model = DiscountModel::fit(&tables).expect("model fit");
    (tables, model)
}

fn cluster_config(threads: usize) -> ClusterConfig {
    let machines: Vec<_> = (0..MACHINES)
        .map(|i| {
            let background = if i < MACHINES / 2 { 20 } else { 0 };
            MachineConfig::new(CORES_PER_MACHINE)
                .background(background)
                .background_scale(0.05)
                .warmup_ms(80)
                .max_inflight(4)
                .seed(0xA27E + i as u64)
        })
        .collect();
    ClusterConfig::homogeneous(MachineSpec::cascade_lake(), MACHINES, CORES_PER_MACHINE)
        .machines(machines)
        .serving_scale(0.05)
        .slice_ms(20)
        .threads(threads)
}

/// The same every-feature-on driver as `replay_inspect`: stealing +
/// predictive autoscaling + profiling, so the stage breakdown covers
/// every stage the replay loop has.
fn driver() -> ClusterDriver<LitmusAware> {
    ClusterDriver::new(LitmusAware::new())
        .stealing(StealingConfig::default().backlog_threshold(3))
        .autoscale(
            AutoscalerConfig::new(
                MachineConfig::new(CORES_PER_MACHINE)
                    .background_scale(0.05)
                    .warmup_ms(80)
                    .max_inflight(4)
                    .seed(0xB007),
            )
            .high_water(1.8)
            .low_water(1.05)
            .machine_bounds(MACHINES, 12)
            .cooldown_ms(200)
            .predictive(PredictiveConfig::new(
                ForecasterSpec::Ewma { alpha: 0.35 },
                120.0,
            )),
        )
        .profiling(true)
}

struct RunResult {
    threads: usize,
    reps: usize,
    wall_ms: Vec<f64>,
    best: ClusterReport,
}

fn run(trace: &InvocationTrace, threads: usize, reps: usize) -> RunResult {
    let (tables, model) = calibration();
    let mut wall_ms = Vec::with_capacity(reps);
    let mut best: Option<(f64, ClusterReport)> = None;
    for _ in 0..reps {
        let mut cluster = Cluster::build(cluster_config(threads), tables.clone(), model.clone())
            .expect("cluster boots");
        let started = Instant::now();
        let report = driver().replay(&mut cluster, trace).expect("replay");
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        wall_ms.push(elapsed);
        if best.as_ref().is_none_or(|(t, _)| elapsed < *t) {
            best = Some((elapsed, report));
        }
    }
    let (_, best) = best.expect("at least one rep");
    RunResult {
        threads,
        reps,
        wall_ms,
        best,
    }
}

fn run_json(result: &RunResult, invocations: usize) -> String {
    let best_ms = result.wall_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let mean_ms = result.wall_ms.iter().sum::<f64>() / result.wall_ms.len() as f64;
    let mut obj = JsonObject::new();
    obj.u64_field("threads", result.threads as u64);
    obj.u64_field("reps", result.reps as u64);
    obj.u64_field("invocations", invocations as u64);
    obj.u64_field("completed", result.best.completed as u64);
    obj.f64_field("best_wall_ms", best_ms);
    obj.f64_field("mean_wall_ms", mean_ms);
    obj.f64_field("throughput_inv_per_s", invocations as f64 / (best_ms / 1e3));
    obj.u64_field("peak_machines", result.best.peak_machines as u64);
    // Wall-clock stage breakdown from the fastest rep — the slice-free
    // engine's before/after lives here ("barrier" especially).
    obj.raw_field("stages", &result.best.telemetry().profile().to_json());
    obj.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_cluster.json".to_string());

    // One trace minute compressed to this many sim ms; smoke shrinks
    // the day so CI finishes in seconds.
    let minute_ms: u64 = if smoke { 150 } else { 600 };
    let reps: usize = if smoke { 1 } else { 3 };

    let dataset = fixture::dataset();
    let trace = dataset
        .expand(
            ExpandConfig::new(SEED)
                .minute_ms(minute_ms)
                .placement(IntraMinute::Poisson),
        )
        .expect("fixture expands");
    println!(
        "bench-trajectory ({}): {} invocations over {} fixture minutes, \
         {} reps per thread count",
        if smoke { "smoke" } else { "full" },
        trace.len(),
        dataset.minutes(),
        reps,
    );

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let result = run(&trace, threads, reps);
        let best_ms = result.wall_ms.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "  threads={threads}: best {best_ms:.1} ms, {:.0} inv/s",
            trace.len() as f64 / (best_ms / 1e3),
        );
        print!("{}", result.best.telemetry().profile().summary());
        runs.push(run_json(&result, trace.len()));
    }

    let mut doc = JsonObject::new();
    doc.str_field("bench", "cluster_trajectory");
    doc.str_field("mode", if smoke { "smoke" } else { "full" });
    doc.u64_field("minute_ms", minute_ms);
    doc.u64_field("machines", MACHINES as u64);
    doc.u64_field("cores_per_machine", CORES_PER_MACHINE as u64);
    doc.u64_field("fixture_minutes", dataset.minutes() as u64);
    doc.u64_field("invocations", trace.len() as u64);
    doc.raw_field("runs", &array(runs));
    let json = format!("{}\n", doc.finish());
    std::fs::write(&out_path, &json).expect("write bench trajectory file");
    println!("wrote {out_path}");
}
