//! Topology extension: socket-local vs cross-socket interference on
//! the dual-socket Cascade Lake model.

use std::error::Error;

use litmus_sim::{MachineSpec, Placement, Simulator};
use litmus_workloads::{suite, TrafficGenerator};

use crate::context::ReproConfig;
use crate::render::{f3, TextTable};

type Result<T> = std::result::Result<T, Box<dyn Error>>;

/// Measures a victim function's slowdown with MB-Gen stress placed on
/// its own socket vs the remote one, for both the merged-domain preset
/// (the paper-faithful default) and the physically-split dual-socket
/// model.
pub fn topology(config: &ReproConfig) -> Result<String> {
    let scale = config.table_scale;
    let victim = suite::by_name("bfs-py")
        .ok_or("bfs-py missing from suite")?
        .profile()
        .scaled(scale)?;

    let run = |spec: MachineSpec, hog_cores: Vec<usize>| -> Result<f64> {
        let mut sim = Simulator::new(spec);
        for core in hog_cores {
            sim.launch(
                TrafficGenerator::MbGen.thread_profile(1.0e7),
                Placement::pinned(core),
            )?;
        }
        sim.run_for_ms(5);
        let id = sim.launch(victim.clone(), Placement::pinned(0))?;
        let report = sim.run_to_completion(id)?;
        Ok(report.counters.cycles / report.counters.instructions)
    };

    let mut table = TextTable::new(
        "Topology extension: bfs-py slowdown vs MB-Gen placement (8 threads)",
        &["machine model", "stress placement", "slowdown"],
    );
    for (label, spec) in [
        ("merged domain", MachineSpec::cascade_lake()),
        ("dual socket", MachineSpec::cascade_lake_dual()),
    ] {
        let solo = run(spec.clone(), Vec::new())?;
        let local = run(spec.clone(), (1..9).collect())? / solo;
        let remote = run(spec.clone(), (16..24).collect())? / solo;
        table.row(&[label.into(), "same socket".into(), f3(local)]);
        table.row(&[label.into(), "remote socket".into(), f3(remote)]);
    }
    let mut out = table.render();
    out.push_str(
        "extension (not a paper figure): with physically-split sockets,\n\
         remote-socket stress leaves the victim untouched — placement is a\n\
         free isolation lever the merged model cannot express\n",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_report_shows_isolation() {
        let out = topology(&ReproConfig::fast()).unwrap();
        assert!(out.contains("dual socket"));
        assert!(out.contains("remote socket"));
    }
}
