//! Workload-characterisation experiments: Table 1 and Figs. 1–4, 6.

use std::error::Error;

use litmus_platform::{CoRunEnv, CoRunHarness, HarnessConfig};
use litmus_sim::{MachineSpec, Placement, Simulator};
use litmus_workloads::{suite, Language, TrafficGenerator};

use crate::context::ReproConfig;
use crate::render::{f3, gmean, pct, TextTable};

type Result<T> = std::result::Result<T, Box<dyn Error>>;

/// Table 1: the 27 benchmarks and the reference set.
pub fn table1() -> String {
    let mut table = TextTable::new(
        "Table 1: serverless benchmarks & language runtimes (py, nj, go)",
        &["abbr", "function", "language", "suite", "reference"],
    );
    for b in suite::benchmarks() {
        table.row(&[
            b.name().to_string(),
            b.function().to_string(),
            b.language().to_string(),
            b.origin().to_string(),
            if b.is_reference() { "*" } else { "" }.to_string(),
        ]);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "total {} functions, {} references (paper: 27 / 13)\n",
        suite::benchmarks().len(),
        suite::reference_benchmarks().len()
    ));
    out
}

/// Fig. 1: generator L2/L3 misses vs thread count, normalised to the
/// average misses of the serverless applications.
pub fn fig1(config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();

    // Per-ms miss rates of the application fleet (normalisation base).
    let mut app_l2 = Vec::new();
    let mut app_l3 = Vec::new();
    for b in suite::benchmarks() {
        let mut sim = Simulator::new(spec.clone());
        let id = sim.launch(b.profile().scaled(config.scale)?, Placement::pinned(0))?;
        let r = sim.run_to_completion(id)?;
        app_l2.push(r.counters.l2_misses / r.wall_ms());
        app_l3.push(r.counters.l3_misses / r.wall_ms());
    }
    let base_l2 = app_l2.iter().sum::<f64>() / app_l2.len() as f64;
    let base_l3 = app_l3.iter().sum::<f64>() / app_l3.len() as f64;

    let mut table = TextTable::new(
        "Fig. 1: normalised L2/L3 misses of traffic generators",
        &["threads", "CT-L2", "CT-L3", "MB-L2", "MB-L3"],
    );
    let duration = 40.0;
    for level in [1usize, 4, 7, 10, 13, 16, 19, 22, 25, 28, 31] {
        let mut cells = vec![level.to_string()];
        for gen in TrafficGenerator::ALL {
            let mut sim = Simulator::new(spec.clone());
            let ids: Vec<_> = (0..level)
                .map(|core| sim.launch(gen.thread_profile(duration), Placement::pinned(core)))
                .collect::<std::result::Result<_, _>>()?;
            sim.run_until_idle()?;
            let mut l2 = 0.0;
            let mut l3 = 0.0;
            let mut wall: f64 = 0.0;
            for id in ids {
                let r = sim.report(id)?;
                l2 += r.counters.l2_misses;
                l3 += r.counters.l3_misses;
                wall = wall.max(r.wall_ms());
            }
            cells.push(f3(l2 / wall / base_l2));
            cells.push(f3(l3 / wall / base_l3));
        }
        table.row(&cells);
    }
    let mut out = table.render();
    out.push_str("shape targets: CT-L2 >> MB-L2 at every level; MB-L3 >> CT-L3 (paper Fig. 1)\n");
    Ok(out)
}

/// Shared measurement for Figs. 2/3: every benchmark solo and with 26
/// co-runners (one per core, backfilled).
struct CoRunRow {
    name: String,
    wall_slowdown: f64,
    priv_slowdown: f64,
    shared_slowdown: f64,
}

fn corun_rows(config: &ReproConfig) -> Result<Vec<CoRunRow>> {
    let spec = MachineSpec::cascade_lake();
    let mut rows = Vec::new();
    for b in suite::benchmarks() {
        let profile = b.profile().scaled(config.scale)?;
        let mut sim = Simulator::new(spec.clone());
        let id = sim.launch(profile.clone(), Placement::pinned(0))?;
        let solo = sim.run_to_completion(id)?;

        let harness_config = HarnessConfig::new(spec.clone())
            .env(CoRunEnv::OnePerCore { co_runners: 26 })
            .mix_scale(config.scale)
            .warmup_ms(config.warmup_ms);
        let mut harness = CoRunHarness::start(harness_config)?;
        let congested = harness.measure(profile)?;

        rows.push(CoRunRow {
            name: b.name().to_string(),
            wall_slowdown: congested.wall_ms() / solo.wall_ms(),
            priv_slowdown: congested.counters.t_private_per_instruction()
                / solo.counters.t_private_per_instruction(),
            shared_slowdown: congested.counters.t_shared_per_instruction()
                / solo.counters.t_shared_per_instruction(),
        });
    }
    Ok(rows)
}

/// Fig. 2: execution-time slowdown with 26 co-runners.
pub fn fig2(config: &ReproConfig) -> Result<String> {
    let rows = corun_rows(config)?;
    let mut table = TextTable::new(
        "Fig. 2: normalised execution time with 26 co-runners",
        &["function", "slowdown"],
    );
    for r in &rows {
        table.row(&[r.name.clone(), f3(r.wall_slowdown)]);
    }
    let g = gmean(&rows.iter().map(|r| r.wall_slowdown).collect::<Vec<_>>());
    table.row(&["gmean".into(), f3(g)]);
    let mut out = table.render();
    out.push_str(&format!(
        "gmean slowdown {:.3} (paper ≈1.115, max ≈1.35)\n",
        g
    ));
    Ok(out)
}

/// Fig. 3: per-component slowdowns with 26 co-runners.
pub fn fig3(config: &ReproConfig) -> Result<String> {
    let rows = corun_rows(config)?;
    let mut table = TextTable::new(
        "Fig. 3: normalised T_private & T_shared with 26 co-runners",
        &["function", "T_private", "T_shared"],
    );
    for r in &rows {
        table.row(&[r.name.clone(), f3(r.priv_slowdown), f3(r.shared_slowdown)]);
    }
    let gp = gmean(&rows.iter().map(|r| r.priv_slowdown).collect::<Vec<_>>());
    let gs = gmean(&rows.iter().map(|r| r.shared_slowdown).collect::<Vec<_>>());
    table.row(&["gmean".into(), f3(gp), f3(gs)]);
    let mut out = table.render();
    out.push_str(&format!(
        "T_private +{:.1}% (paper ≈+4%), T_shared ×{:.2} (paper ≈×2.81, max ×5.9)\n",
        (gp - 1.0) * 100.0,
        gs
    ));
    Ok(out)
}

/// Fig. 4: solo T_private/T_shared distribution of execution time.
pub fn fig4(config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();
    let mut table = TextTable::new(
        "Fig. 4: execution-time distribution (solo)",
        &["function", "T_private", "T_shared"],
    );
    let mut shared_fracs = Vec::new();
    for b in suite::benchmarks() {
        let mut sim = Simulator::new(spec.clone());
        let id = sim.launch(b.profile().scaled(config.scale)?, Placement::pinned(0))?;
        let r = sim.run_to_completion(id)?;
        let shared = r.counters.t_shared_cycles() / r.counters.cycles;
        shared_fracs.push(shared);
        table.row(&[b.name().to_string(), pct(1.0 - shared), pct(shared)]);
    }
    let mean = shared_fracs.iter().sum::<f64>() / shared_fracs.len() as f64;
    table.row(&["mean".into(), pct(1.0 - mean), pct(mean)]);
    let mut out = table.render();
    out.push_str(
        "shape targets: T_private dominates most functions; float-py ≈ all\n\
         private; graph/disk workloads carry the largest shared shares\n",
    );
    Ok(out)
}

/// Fig. 6: per-ms IPC of each language's startup phase (solo).
pub fn fig6(_config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();
    let mut out = String::new();
    for lang in Language::ALL {
        let mut builder = litmus_sim::ExecutionProfile::builder(format!("{}-startup", lang.abbr()));
        for phase in lang.startup_phases() {
            builder = builder.startup_phase(phase);
        }
        let mut sim = Simulator::new(spec.clone());
        let id = sim.launch_sampled(builder.build()?, Placement::pinned(0))?;
        let report = sim.run_to_completion(id)?;
        let mut table = TextTable::new(
            format!("Fig. 6: startup IPC timeline — {lang}"),
            &["ms", "ipc"],
        );
        // Node.js is long: subsample it to keep the report readable.
        let stride = if report.samples.len() > 30 { 5 } else { 1 };
        for (i, sample) in report.samples.iter().enumerate() {
            if i % stride == 0 && sample.cycles > 0.0 {
                table.row(&[i.to_string(), f3(sample.ipc())]);
            }
        }
        out.push_str(&table.render());
        out.push_str(&format!(
            "{} startup: {:.1} ms solo (paper: Py ≈19 ms, NJ ≈100 ms, Go ≈6 ms)\n\n",
            lang,
            report.wall_ms()
        ));
    }
    out.push_str(
        "shape target: same-language functions share one startup signature,\n\
         so any one trace per language characterises the probe\n",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_everything() {
        let t = table1();
        assert!(t.contains("pager-py"));
        assert!(t.contains("27 functions, 13 references"));
    }

    #[test]
    fn fig4_runs_fast_config() {
        let out = fig4(&ReproConfig::fast()).unwrap();
        assert!(out.contains("float-py"));
        assert!(out.contains("mean"));
    }

    #[test]
    fn fig6_shows_three_languages() {
        let out = fig6(&ReproConfig::fast()).unwrap();
        assert!(out.contains("Python"));
        assert!(out.contains("Node.js"));
        assert!(out.contains("Go"));
    }
}
