//! Extension studies beyond the paper's evaluation: warm-start probe
//! coverage and calibration-ladder resolution.

use std::error::Error;

use litmus_core::{
    CommercialPricing, DiscountModel, IdealPricing, LitmusPricing, LitmusReading, TableBuilder,
};
use litmus_platform::{CoRunEnv, CoRunHarness, HarnessConfig};
use litmus_sim::{MachineSpec, Placement, Simulator};
use litmus_workloads::suite;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::context::ReproConfig;
use crate::render::{f3, gmean, pct, TextTable};

type Result<T> = std::result::Result<T, Box<dyn Error>>;

/// Warm-start study: warm containers reuse an initialised runtime, so
/// their invocations carry **no Litmus probe** and must be priced with
/// the machine's most recent reading. The paper implicitly assumes
/// cold starts everywhere (startups are "a major source of latency
/// issues" it exploits); this study quantifies how pricing accuracy
/// decays as the warm-start ratio grows and probes become stale.
pub fn warmstart(config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();
    let tables = config.dedicated_tables(&spec)?;
    let pricing = LitmusPricing::new(DiscountModel::fit(&tables)?);

    let tests: Vec<_> = suite::test_benchmarks();
    // Solo oracles per function.
    let mut solos = Vec::new();
    for bench in &tests {
        let mut sim = Simulator::new(spec.clone());
        let id = sim.launch(bench.profile().scaled(config.scale)?, Placement::pinned(0))?;
        solos.push(sim.run_to_completion(id)?.counters);
    }

    let mut table = TextTable::new(
        "Warm-start study: pricing error vs probe coverage",
        &["warm ratio", "probed", "warm-priced", "abs gmean err"],
    );
    for warm_ratio in [0.0f64, 0.3, 0.6, 0.9] {
        let harness_config = HarnessConfig::new(spec.clone())
            .env(CoRunEnv::OnePerCore { co_runners: 26 })
            .mix_scale(config.scale)
            .warmup_ms(config.warmup_ms);
        let mut harness = CoRunHarness::start(harness_config)?;
        let mut rng = StdRng::seed_from_u64(0xAA + (warm_ratio * 100.0) as u64);
        let mut last_reading: Option<LitmusReading> = None;
        let mut errors = Vec::new();
        let mut probed = 0usize;
        let mut warm_priced = 0usize;

        for (bench, solo) in tests.iter().zip(&solos) {
            let reps = config.reps.max(2);
            for _ in 0..reps {
                let warm = rng.gen_bool(warm_ratio) && last_reading.is_some();
                let profile = bench.profile().scaled(config.scale)?;
                let (report, reading) = if warm {
                    let report = harness.measure(profile.body_only()?)?;
                    warm_priced += 1;
                    // Stale reading, re-labelled for this language so
                    // the model accepts it.
                    let mut reading = last_reading.expect("checked above"); // lint:allow(panic-in-lib): loop entry guarantees at least one reading was recorded
                    reading.language = bench.language();
                    (report, reading)
                } else {
                    let report = harness.measure(profile)?;
                    let baseline = tables.baseline(bench.language())?;
                    let startup = report
                        .startup
                        .as_ref()
                        .ok_or(litmus_core::CoreError::NoStartup)?;
                    let reading = LitmusReading::from_startup(baseline, startup)?;
                    probed += 1;
                    last_reading = Some(reading);
                    (report, reading)
                };
                let counters = report.counters;
                let litmus = pricing.price(&reading, &counters)?.total();
                // Warm runs execute fewer instructions (no startup), so
                // the ideal oracle must compare like for like.
                let ideal = if warm {
                    let mut warm_solo_sim = Simulator::new(spec.clone());
                    let id = warm_solo_sim.launch(
                        bench.profile().scaled(config.scale)?.body_only()?,
                        Placement::pinned(0),
                    )?;
                    let warm_solo = warm_solo_sim.run_to_completion(id)?.counters;
                    IdealPricing::new().price(&counters, &warm_solo).total()
                } else {
                    IdealPricing::new().price(&counters, solo).total()
                };
                let _ = CommercialPricing::new().price(&counters);
                errors.push(((litmus - ideal) / ideal).abs().max(1e-6));
            }
        }
        table.row(&[
            f3(warm_ratio),
            probed.to_string(),
            warm_priced.to_string(),
            pct(gmean(&errors)),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "extension (not a paper figure): warm starts carry no probe, so\n\
         their bills rely on the machine's last reading; accuracy decays\n\
         gracefully with coverage because congestion is temporally\n\
         correlated — but a probe-free platform would be flying blind\n",
    );
    Ok(out)
}

/// Ladder-resolution study: pricing accuracy (the Fig. 11 discount gap)
/// as a function of how many stress levels the provider calibrates.
pub fn ladder(config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();
    let ladders: [&[usize]; 4] = [
        &[6, 26],
        &[6, 16, 26],
        &[4, 8, 14, 20, 26, 30],
        &[2, 4, 6, 10, 14, 18, 20, 22, 24, 26, 28, 30],
    ];
    let mut table = TextTable::new(
        "Ladder study: discount gap vs calibration levels",
        &["levels", "litmus disc", "ideal disc", "gap"],
    );
    for levels in ladders {
        let tables = TableBuilder::new(spec.clone())
            .levels(levels.iter().copied())
            .reference_scale(config.table_scale)
            .build()?;
        let pricing = LitmusPricing::new(DiscountModel::fit(&tables)?);
        let harness_config = HarnessConfig::new(spec.clone())
            .env(CoRunEnv::OnePerCore { co_runners: 26 })
            .mix_scale(config.scale)
            .warmup_ms(config.warmup_ms);
        let results = litmus_platform::PricingExperiment::new(harness_config)
            .reps(config.reps.max(2))
            .test_scale(config.scale)
            .run(&pricing, &tables, &suite::test_benchmarks())?;
        table.row(&[
            levels.len().to_string(),
            pct(results.mean_litmus_discount()),
            pct(results.mean_ideal_discount()),
            pct(results.discount_gap()),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "extension (not a paper figure): a handful of levels already\n\
         saturates accuracy — calibration cost is a one-off, small expense\n",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmstart_reports_all_ratios() {
        let out = warmstart(&ReproConfig::fast()).unwrap();
        assert!(out.contains("0.900"));
        assert!(out.contains("warm-priced"));
    }
}
