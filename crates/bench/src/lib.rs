//! Reproduction harness for every table and figure in the Litmus paper
//! (Pei, Wang, Shin — ASPLOS '24).
//!
//! The `litmus-repro` binary exposes one subcommand per experiment
//! (`table1`, `fig1` … `fig21`, `all`); each prints the same rows or
//! series the paper reports. `EXPERIMENTS.md` in the repository root
//! records paper-vs-measured numbers produced by this harness.
//!
//! Absolute values differ from the paper (our substrate is an analytic
//! simulator, not a Cascade Lake testbed); the *shapes* — who wins, by
//! what rough factor, where the crossovers sit — are the reproduction
//! target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablations;
mod characterization;
mod context;
mod pricing_figs;
mod probes;
mod render;
mod studies;
mod topology;

pub use context::ReproConfig;

use std::fmt::Write as _;

/// All experiment identifiers: the paper's tables/figures in order,
/// plus the extension studies (`ablation`, `topology`, `warmstart`,
/// `ladder`).
pub const EXPERIMENTS: [&str; 26] = [
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "ablation",
    "topology",
    "warmstart",
    "ladder",
];

/// Runs one experiment by id and returns its report text.
///
/// # Errors
///
/// Returns a human-readable error string for unknown ids or failed
/// underlying experiments.
pub fn run_experiment(id: &str, config: &ReproConfig) -> Result<String, String> {
    let run = || -> Result<String, Box<dyn std::error::Error>> {
        Ok(match id {
            "table1" => characterization::table1(),
            "fig1" => characterization::fig1(config)?,
            "fig2" => characterization::fig2(config)?,
            "fig3" => characterization::fig3(config)?,
            "fig4" => characterization::fig4(config)?,
            "fig5" => probes::fig5(config)?,
            "fig6" => characterization::fig6(config)?,
            "fig7" => probes::fig7(config)?,
            "fig8" => probes::fig8(config)?,
            "fig9" => probes::fig9(config)?,
            "fig10" => probes::fig10(config)?,
            "fig11" => pricing_figs::fig11(config)?,
            "fig12" => pricing_figs::fig12(config)?,
            "fig13" => pricing_figs::fig13(config)?,
            "fig14" => probes::fig14(config)?,
            "fig15" => pricing_figs::fig15(config)?,
            "fig16" => pricing_figs::fig16(config)?,
            "fig17" => pricing_figs::fig17(config)?,
            "fig18" => pricing_figs::fig18(config)?,
            "fig19" => pricing_figs::fig19(config)?,
            "fig20" => pricing_figs::fig20(config)?,
            "fig21" => pricing_figs::fig21(config)?,
            "ablation" => ablations::ablation(config)?,
            "topology" => topology::topology(config)?,
            "warmstart" => studies::warmstart(config)?,
            "ladder" => studies::ladder(config)?,
            other => return Err(format!("unknown experiment id {other:?}").into()),
        })
    };
    run().map_err(|e| format!("{id}: {e}"))
}

/// Runs every experiment, concatenating the reports.
///
/// # Errors
///
/// Returns the first failing experiment's error.
pub fn run_all(config: &ReproConfig) -> Result<String, String> {
    let mut out = String::new();
    for id in EXPERIMENTS {
        let report = run_experiment(id, config)?;
        let _ = writeln!(out, "{report}");
    }
    Ok(out)
}
