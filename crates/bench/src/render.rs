//! Small text-rendering helpers shared by the figure reproductions.

use std::fmt::Write;

/// A simple fixed-width text table builder.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "── {} ──", self.title);
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.header) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a signed float with 4 decimals.
pub fn sf4(v: f64) -> String {
    format!("{v:+.4}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Geometric mean helper (infallible for in-harness positive series).
pub fn gmean(values: &[f64]) -> f64 {
    litmus_stats::geometric_mean(values).unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.row(&["a".into(), f3(1.5)]);
        t.row(&["longer-name".into(), f3(2.0)]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("longer-name"));
        assert!(s.contains("1.500"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_enforced() {
        let mut t = TextTable::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f4(0.12345), "0.1235");
        assert_eq!(pct(0.107), "10.7%");
        assert_eq!(sf4(-0.056), "-0.0560");
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}
