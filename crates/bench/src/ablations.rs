//! Design-choice ablations (extension beyond the paper's figures):
//! what happens to pricing accuracy when either of Litmus's two key
//! mechanisms is removed.

use std::error::Error;

use litmus_core::{
    AblationPricing, AblationScheme, CommercialPricing, IdealPricing, LitmusPricing, LitmusReading,
};
use litmus_platform::{CoRunEnv, CoRunHarness, HarnessConfig};
use litmus_sim::{MachineSpec, Placement, Simulator};
use litmus_workloads::{suite, TrafficGenerator};

use crate::context::ReproConfig;
use crate::render::{gmean, pct, sf4, TextTable};

type Result<T> = std::result::Result<T, Box<dyn Error>>;

/// Ablation study: Litmus vs no-split vs single-generator pricing, by
/// per-function price error against the ideal oracle.
pub fn ablation(config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();
    let tables = config.dedicated_tables(&spec)?;
    let model = litmus_core::DiscountModel::fit(&tables)?;
    let litmus = LitmusPricing::new(model.clone());
    let no_split = AblationPricing::new(model.clone(), AblationScheme::NoSplit);
    let ct_only = AblationPricing::new(
        model.clone(),
        AblationScheme::SingleGenerator(TrafficGenerator::CtGen),
    );
    let mb_only = AblationPricing::new(
        model,
        AblationScheme::SingleGenerator(TrafficGenerator::MbGen),
    );

    let harness_config = HarnessConfig::new(spec.clone())
        .env(CoRunEnv::OnePerCore { co_runners: 26 })
        .mix_scale(config.scale)
        .warmup_ms(config.warmup_ms);
    let mut harness = CoRunHarness::start(harness_config)?;

    let mut table = TextTable::new(
        "Ablation: signed price error vs ideal (26 co-runners)",
        &["function", "litmus", "no-split", "CT-only", "MB-only"],
    );
    let mut abs_errors: [Vec<f64>; 4] = Default::default();
    for bench in suite::test_benchmarks() {
        let profile = bench.profile().scaled(config.scale)?;
        let mut solo_sim = Simulator::new(spec.clone());
        let id = solo_sim.launch(profile.clone(), Placement::pinned(0))?;
        let solo = solo_sim.run_to_completion(id)?.counters;

        let report = harness.measure(profile)?;
        let baseline = tables.baseline(bench.language())?;
        let startup = report.startup.as_ref().expect("startup present"); // lint:allow(panic-in-lib): probe config requests startup measurement; absence is a bench-harness bug
        let reading = LitmusReading::from_startup(baseline, startup)?;
        let counters = report.counters;

        let ideal = IdealPricing::new().price(&counters, &solo).total();
        let commercial = CommercialPricing::new().price(&counters).total();
        let _ = commercial;
        let prices = [
            litmus.price(&reading, &counters)?.total(),
            no_split.price(&reading, &counters)?.total(),
            ct_only.price(&reading, &counters)?.total(),
            mb_only.price(&reading, &counters)?.total(),
        ];
        let mut cells = vec![bench.name().to_string()];
        for (i, price) in prices.iter().enumerate() {
            let err = (price - ideal) / ideal;
            abs_errors[i].push(err.abs().max(1e-6));
            cells.push(sf4(err));
        }
        table.row(&cells);
    }
    table.row(&[
        "abs gmean".into(),
        pct(gmean(&abs_errors[0])),
        pct(gmean(&abs_errors[1])),
        pct(gmean(&abs_errors[2])),
        pct(gmean(&abs_errors[3])),
    ]);
    let mut out = table.render();
    out.push_str(
        "extension (not a paper figure): removing the private/shared split\n\
         (no-split) or the Fig. 10 L3 interpolation (CT-only / MB-only)\n\
         degrades per-function accuracy vs full Litmus pricing\n",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_reports_all_schemes() {
        let out = ablation(&ReproConfig::fast()).unwrap();
        assert!(out.contains("no-split"));
        assert!(out.contains("CT-only"));
        assert!(out.contains("abs gmean"));
    }
}
