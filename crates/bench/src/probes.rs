//! Probe and table experiments: Figs. 5, 7–10, 14.

use std::error::Error;

use litmus_core::{DiscountModel, LitmusReading, StartupBaseline};
use litmus_sim::{ExecPhase, ExecutionProfile, MachineSpec, Placement, Simulator};
use litmus_workloads::{suite, BackfillPool, Language, TrafficGenerator};

use crate::context::ReproConfig;
use crate::render::{f3, gmean, pct, TextTable};

type Result<T> = std::result::Result<T, Box<dyn Error>>;

/// Fig. 5: the congestion and performance tables themselves.
pub fn fig5(config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();
    let tables = config.dedicated_tables(&spec)?;
    let mut out = String::new();
    for lang in Language::ALL {
        let mut table = TextTable::new(
            format!("Fig. 5 congestion table — {lang} startup"),
            &["level", "CT Tpriv", "CT Tshared", "MB Tpriv", "MB Tshared"],
        );
        let ct = tables.congestion(lang, TrafficGenerator::CtGen)?;
        let mb = tables.congestion(lang, TrafficGenerator::MbGen)?;
        for (c, m) in ct.iter().zip(mb) {
            table.row(&[
                c.level.to_string(),
                f3(c.private_slowdown),
                f3(c.shared_slowdown),
                f3(m.private_slowdown),
                f3(m.shared_slowdown),
            ]);
        }
        out.push_str(&table.render());
    }
    let mut table = TextTable::new(
        "Fig. 5 performance table — reference functions (gmean)",
        &["level", "CT Tpriv", "CT Tshared", "MB Tpriv", "MB Tshared"],
    );
    let ct = tables.performance(TrafficGenerator::CtGen)?;
    let mb = tables.performance(TrafficGenerator::MbGen)?;
    for (c, m) in ct.iter().zip(mb) {
        table.row(&[
            c.level.to_string(),
            f3(c.private_slowdown),
            f3(c.shared_slowdown),
            f3(m.private_slowdown),
            f3(m.shared_slowdown),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "shape targets (paper Fig. 5): Tshared rows ≫ Tpriv rows; every\n\
         column grows monotonically with the stress level\n",
    );
    Ok(out)
}

/// Fig. 7: Litmus tests observing congestion rise and fall over time on
/// a four-core machine.
pub fn fig7(_config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();
    let baseline = StartupBaseline::measure(&spec, Language::Python)?;
    let mut sim = Simulator::new(spec);

    // Function #1: memory-intensive (≈450 ms on core 1 once its own
    // congestion is priced in — effective CPI ≈4 with this profile).
    let hog = ExecutionProfile::builder("function-1")
        .phase(ExecPhase::new(3.0e8, 0.6, 18.0, 0.75, 0.9, 120.0))
        .build()?;
    sim.launch(hog, Placement::pinned(1))?;
    // A light tenant on core 2.
    let light = suite::by_name("fib-go")
        .ok_or("fib-go missing from suite")?
        .profile()
        .scaled(2.0)?;
    sim.launch(light, Placement::pinned(2))?;
    // A second memory burst arriving later (the paper's Function #2).
    let second = ExecutionProfile::builder("function-2")
        .phase(ExecPhase::new(2.0e8, 0.6, 20.0, 0.8, 0.9, 110.0))
        .build()?;
    let mut second = Some(second);

    let probe = suite::by_name("auth-py")
        .ok_or("auth-py missing from suite")?
        .profile()
        .startup_only()?;
    let mut table = TextTable::new(
        "Fig. 7: Litmus tests tracking machine congestion",
        &["t(ms)", "probe Tshared x", "L3/ms", "level"],
    );
    while sim.now_ms() < 1200 {
        if sim.now_ms() >= 800 {
            if let Some(profile) = second.take() {
                sim.launch(profile, Placement::pinned(1))?;
            }
        }
        let id = sim.launch(probe.clone(), Placement::pinned(3))?;
        while sim.state(id)? == litmus_sim::InstanceState::Active {
            sim.step();
        }
        let report = sim.report(id)?;
        let startup = report.startup.as_ref().expect("probe startup"); // lint:allow(panic-in-lib): probe config requests startup measurement; absence is a bench-harness bug
        let reading = LitmusReading::from_startup(&baseline, startup)?;
        let level = (reading.shared_slowdown - 1.0) * 8.0 + reading.l3_miss_rate / 50_000.0;
        table.row(&[
            report.launched_ms.to_string(),
            f3(reading.shared_slowdown),
            format!("{:.0}", reading.l3_miss_rate),
            format!("{level:.2}"),
        ]);
        let resume = sim.now_ms() + 120;
        while sim.now_ms() < resume {
            sim.step();
        }
    }
    let mut out = table.render();
    out.push_str(
        "shape target (paper Fig. 7): high congestion while function #1\n\
         runs, a sharp drop once it completes, and a fresh spike when\n\
         function #2 arrives\n",
    );
    Ok(out)
}

/// Fig. 8: reference-function slowdowns under MB-Gen at stress level 14.
pub fn fig8(config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();
    let level = 14usize;
    let mut table = TextTable::new(
        "Fig. 8: reference slowdowns with MB-Gen at level 14",
        &["function", "T_private", "T_shared", "T_total"],
    );
    let mut privs = Vec::new();
    let mut shareds = Vec::new();
    let mut totals = Vec::new();
    let scale = config.table_scale;

    let run_with_generator = |profile: ExecutionProfile| -> Result<_> {
        let mut sim = Simulator::new(spec.clone());
        for i in 0..level {
            let core = spec.cores - 1 - i;
            sim.launch(
                TrafficGenerator::MbGen.thread_profile(1.0e7),
                Placement::pinned(core),
            )?;
        }
        sim.run_for_ms(5);
        let id = sim.launch(profile, Placement::pinned(0))?;
        Ok(sim.run_to_completion(id)?)
    };

    for bench in suite::reference_benchmarks() {
        let profile = bench.profile().scaled(scale)?;
        let mut solo_sim = Simulator::new(spec.clone());
        let id = solo_sim.launch(profile.clone(), Placement::pinned(0))?;
        let solo = solo_sim.run_to_completion(id)?;
        let congested = run_with_generator(profile)?;
        let p = congested.counters.t_private_per_instruction()
            / solo.counters.t_private_per_instruction();
        let s = congested.counters.t_shared_per_instruction()
            / solo.counters.t_shared_per_instruction();
        let t = (congested.counters.cycles / congested.counters.instructions)
            / (solo.counters.cycles / solo.counters.instructions);
        privs.push(p);
        shareds.push(s);
        totals.push(t);
        table.row(&[bench.name().to_string(), f3(p), f3(s), f3(t)]);
    }
    table.row(&[
        "gmean".into(),
        f3(gmean(&privs)),
        f3(gmean(&shareds)),
        f3(gmean(&totals)),
    ]);

    // The paper appends the Python startup itself ("start-py").
    let startup_profile = suite::by_name("fib-py")
        .ok_or("fib-py missing from suite")?
        .profile()
        .startup_only()?;
    let mut solo_sim = Simulator::new(spec.clone());
    let id = solo_sim.launch(startup_profile.clone(), Placement::pinned(0))?;
    let solo = solo_sim.run_to_completion(id)?;
    let congested = run_with_generator(startup_profile)?;
    table.row(&[
        "start-py".into(),
        f3(congested.counters.t_private_per_instruction()
            / solo.counters.t_private_per_instruction()),
        f3(congested.counters.t_shared_per_instruction()
            / solo.counters.t_shared_per_instruction()),
        f3(
            (congested.counters.cycles / congested.counters.instructions)
                / (solo.counters.cycles / solo.counters.instructions),
        ),
    ]);
    let mut out = table.render();
    out.push_str(
        "shape targets (paper Fig. 8): varying slowdowns under one stress\n\
         level; T_shared ≫ T_private for every function; start-py tracks\n\
         the reference gmean\n",
    );
    Ok(out)
}

/// Fig. 9: startup-vs-reference regression lines and their R².
pub fn fig9(config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();
    let tables = config.dedicated_tables(&spec)?;
    let model = DiscountModel::fit(&tables)?;
    let mut out = String::new();
    let mut table = TextTable::new(
        "Fig. 9: startup→reference regressions (Python probe)",
        &["generator", "component", "slope", "intercept", "R^2"],
    );
    let (ct, mb) = model.generator_models(Language::Python)?;
    for gm in [ct, mb] {
        for (component, fit) in [
            ("T_private", gm.private_fit()),
            ("T_shared", gm.shared_fit()),
            ("T_total", gm.total_fit()),
        ] {
            table.row(&[
                gm.generator().to_string(),
                component.to_string(),
                f3(fit.slope()),
                f3(fit.intercept()),
                f3(fit.r_squared()),
            ]);
        }
    }
    out.push_str(&table.render());

    // The underlying points, for eyeballing the lines.
    for gen in TrafficGenerator::ALL {
        let congestion = tables.congestion(Language::Python, gen)?;
        let performance = tables.performance(gen)?;
        let mut pts = TextTable::new(
            format!("Fig. 9 points — {gen}"),
            &["level", "startup Tshared", "reference Tshared"],
        );
        for (c, p) in congestion.iter().zip(performance) {
            pts.row(&[
                c.level.to_string(),
                f3(c.shared_slowdown),
                f3(p.shared_slowdown),
            ]);
        }
        out.push_str(&pts.render());
    }
    out.push_str("shape target (paper Fig. 9): R² between 0.836 and 0.989\n");
    Ok(out)
}

/// Fig. 10: the L3-miss logarithmic interpolation walkthrough.
pub fn fig10(config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();
    let tables = config.dedicated_tables(&spec)?;
    let model = DiscountModel::fit(&tables)?;
    let (ct, mb) = model.generator_models(Language::Python)?;

    let mut out = String::new();
    let mut curves = TextTable::new(
        "Fig. 10(a): L3-miss curves per generator (log-linear fits)",
        &["startup Tshared x", "CT-Gen L3/ms", "MB-Gen L3/ms"],
    );
    for slow in [1.2, 1.4, 1.6, 1.8, 2.0, 2.2] {
        curves.row(&[
            f3(slow),
            format!("{:.0}", ct.l3_fit().predict(slow)),
            format!("{:.0}", mb.l3_fit().predict(slow)),
        ]);
    }
    out.push_str(&curves.render());

    // The worked ①②③ example: same slowdown, three L3 readings.
    let slow = 1.6;
    let l3_ct = ct.l3_fit().predict(slow);
    let l3_mb = mb.l3_fit().predict(slow);
    let mid = (l3_ct * l3_mb).sqrt(); // log-space midpoint
    let mut example = TextTable::new(
        "Fig. 10(b): interpolated discounts at startup Tshared ×1.6",
        &[
            "observed L3/ms",
            "weight",
            "presumed shared slowdown",
            "discount",
        ],
    );
    for (label, l3) in [("CT-like", l3_ct), ("midpoint", mid), ("MB-like", l3_mb)] {
        let reading = LitmusReading {
            language: Language::Python,
            private_slowdown: 1.02,
            shared_slowdown: slow,
            total_slowdown: 0.4 * 1.02 + 0.6 * slow,
            l3_miss_rate: l3,
        };
        let est = model.estimate(&reading)?;
        example.row(&[
            format!("{label} ({l3:.0})"),
            f3(est.weight),
            f3(est.shared_slowdown),
            pct(1.0 - est.r_shared()),
        ]);
    }
    out.push_str(&example.render());
    out.push_str(
        "shape target (paper Fig. 10): weight 0 at the CT curve, 1 at the MB\n\
         curve, ≈0.5 at the log-space midpoint; discounts interpolate between\n\
         the two generator extremes\n",
    );
    Ok(out)
}

/// Fig. 14: `T_private` inflation vs co-resident functions on one core.
pub fn fig14(config: &ReproConfig) -> Result<String> {
    let spec = MachineSpec::cascade_lake();
    let scale = (config.scale * 0.5).max(0.02);
    let profile = suite::by_name("aes-py")
        .ok_or("aes-py missing from suite")?
        .profile()
        .scaled(scale)?;

    let t_priv_at = |count: usize| -> Result<f64> {
        let mut sim = Simulator::new(spec.clone());
        let mut pool = BackfillPool::new(suite::benchmarks(), 11, Placement::pinned(0))
            .expect("non-empty pool"); // lint:allow(panic-in-lib): pool built two lines up from a non-empty literal
        if count > 1 {
            pool.fill(&mut sim, count - 1)?;
            pool.run(&mut sim, 50)?;
        }
        let id = sim.launch(profile.clone(), Placement::pinned(0))?;
        let report = pool.run_until(&mut sim, id)?;
        Ok(report.counters.t_private_per_instruction())
    };

    let solo = t_priv_at(1)?;
    let mut table = TextTable::new(
        "Fig. 14: T_private vs co-resident count on one core",
        &["functions/core", "normalised T_private"],
    );
    for count in [1usize, 2, 3, 5, 7, 10, 13, 16, 20, 25] {
        table.row(&[
            count.to_string(),
            format!("{:.4}", t_priv_at(count)? / solo),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "shape targets (paper Fig. 14): logarithmic growth, ≈1.025 at 10\n\
         functions/core, flat past ≈20\n",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_walkthrough_weights_span_the_bracket() {
        let out = fig10(&ReproConfig::fast()).unwrap();
        assert!(out.contains("CT-like"));
        assert!(out.contains("MB-like"));
        assert!(out.contains("midpoint"));
    }

    #[test]
    fn fig14_reports_saturating_growth() {
        let out = fig14(&ReproConfig::fast()).unwrap();
        assert!(out.contains("functions/core"));
        assert!(out.contains("25"));
    }
}
