use std::fmt;

use litmus_sim::PmuCounters;

use crate::pricing::Price;

/// A fully-priced invocation record: the three prices the evaluation
/// compares (commercial, Litmus, ideal) plus the error decomposition of
/// paper Fig. 12.
#[derive(Debug, Clone, PartialEq)]
pub struct Invoice {
    /// Function name.
    pub function: String,
    /// PMU counters of the billed (congested) execution.
    pub counters: PmuCounters,
    /// Commercial price (no discount).
    pub commercial: Price,
    /// Litmus price.
    pub litmus: Price,
    /// Ideal (oracle) price.
    pub ideal: Price,
}

impl Invoice {
    /// Litmus price normalised to commercial (the y-axis of Figs. 11,
    /// 15–21).
    pub fn litmus_normalized(&self) -> f64 {
        self.litmus.normalized_to(&self.commercial)
    }

    /// Ideal price normalised to commercial.
    pub fn ideal_normalized(&self) -> f64 {
        self.ideal.normalized_to(&self.commercial)
    }

    /// Litmus discount (1 − normalised price).
    pub fn litmus_discount(&self) -> f64 {
        1.0 - self.litmus_normalized()
    }

    /// Ideal discount.
    pub fn ideal_discount(&self) -> f64 {
        1.0 - self.ideal_normalized()
    }

    /// Signed weighted error of the private component (Fig. 12): the
    /// relative price error, weighted by the component's share of
    /// execution time. Positive = Litmus under-compensated.
    pub fn private_error(&self) -> f64 {
        let weight = self.counters.t_private_cycles() / self.counters.cycles.max(1.0);
        if self.ideal.private <= 0.0 {
            return 0.0;
        }
        (self.litmus.private - self.ideal.private) / self.ideal.private * weight
    }

    /// Signed weighted error of the shared component (Fig. 12).
    pub fn shared_error(&self) -> f64 {
        let weight = self.counters.t_shared_cycles() / self.counters.cycles.max(1.0);
        if self.ideal.shared <= 0.0 {
            return 0.0;
        }
        (self.litmus.shared - self.ideal.shared) / self.ideal.shared * weight
    }

    /// Signed total price error relative to ideal (Fig. 12's last bar).
    pub fn total_error(&self) -> f64 {
        if self.ideal.total() <= 0.0 {
            return 0.0;
        }
        (self.litmus.total() - self.ideal.total()) / self.ideal.total()
    }
}

impl fmt::Display for Invoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: litmus {:.4} (ideal {:.4}, error {:+.4})",
            self.function,
            self.litmus_normalized(),
            self.ideal_normalized(),
            self.total_error()
        )
    }
}

/// Aggregated billing over many invocations — what a provider's
/// metering pipeline accumulates per accounting period.
///
/// # Examples
///
/// ```
/// use litmus_core::BillingLedger;
///
/// let ledger = BillingLedger::new();
/// assert_eq!(ledger.len(), 0);
/// assert!(ledger.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BillingLedger {
    invoices: Vec<Invoice>,
}

impl BillingLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        BillingLedger::default()
    }

    /// Records one invoice.
    pub fn record(&mut self, invoice: Invoice) {
        self.invoices.push(invoice);
    }

    /// All recorded invoices, in arrival order.
    pub fn invoices(&self) -> &[Invoice] {
        &self.invoices
    }

    /// Number of recorded invoices.
    pub fn len(&self) -> usize {
        self.invoices.len()
    }

    /// Whether no invoices have been recorded.
    pub fn is_empty(&self) -> bool {
        self.invoices.is_empty()
    }

    /// Total revenue billed under Litmus pricing (charged cycles).
    pub fn litmus_revenue(&self) -> f64 {
        self.invoices.iter().map(|i| i.litmus.total()).sum()
    }

    /// Total revenue commercial pricing would have billed.
    pub fn commercial_revenue(&self) -> f64 {
        self.invoices.iter().map(|i| i.commercial.total()).sum()
    }

    /// Total compensation handed back to tenants
    /// (commercial − litmus revenue).
    pub fn total_compensation(&self) -> f64 {
        self.commercial_revenue() - self.litmus_revenue()
    }

    /// Revenue-weighted average discount across the period.
    pub fn average_discount(&self) -> f64 {
        let commercial = self.commercial_revenue();
        if commercial <= 0.0 {
            return 0.0;
        }
        self.total_compensation() / commercial
    }

    /// Appends every invoice of `other`, preserving order — the
    /// fold step of sharded metering: per-machine ledgers accumulate
    /// independently and merge into the accounting-period ledger.
    pub fn merge(&mut self, other: BillingLedger) {
        self.invoices.extend(other.invoices);
    }

    /// Streaming summary of this ledger (equivalent to folding every
    /// invoice into a fresh [`BillingSummary`]).
    pub fn summary(&self) -> BillingSummary {
        let mut summary = BillingSummary::new();
        for invoice in &self.invoices {
            summary.fold(invoice);
        }
        summary
    }

    /// Invoices for one function name.
    pub fn for_function<'a>(&'a self, function: &'a str) -> impl Iterator<Item = &'a Invoice> + 'a {
        self.invoices.iter().filter(move |i| i.function == function)
    }
}

impl Extend<Invoice> for BillingLedger {
    fn extend<T: IntoIterator<Item = Invoice>>(&mut self, iter: T) {
        self.invoices.extend(iter);
    }
}

impl FromIterator<Invoice> for BillingLedger {
    fn from_iter<T: IntoIterator<Item = Invoice>>(iter: T) -> Self {
        BillingLedger {
            invoices: iter.into_iter().collect(),
        }
    }
}

/// Constant-space aggregate of a stream of invoices — what a sharded
/// metering plane keeps per tenant instead of the full invoice list.
///
/// Summaries are a commutative monoid under [`BillingSummary::merge`]:
/// folding invoices shard by shard and merging the shards yields exactly
/// the same totals as folding everything into one summary (up to
/// floating-point addition order).
///
/// # Examples
///
/// ```
/// use litmus_core::BillingSummary;
///
/// let summary = BillingSummary::new();
/// assert!(summary.is_empty());
/// assert_eq!(summary.average_discount(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BillingSummary {
    invoices: usize,
    commercial: f64,
    litmus: f64,
    ideal: f64,
}

impl BillingSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        BillingSummary::default()
    }

    /// Folds one invoice into the running totals.
    pub fn fold(&mut self, invoice: &Invoice) {
        self.invoices += 1;
        self.commercial += invoice.commercial.total();
        self.litmus += invoice.litmus.total();
        self.ideal += invoice.ideal.total();
    }

    /// Merges another summary (e.g. a machine shard) into this one.
    pub fn merge(&mut self, other: &BillingSummary) {
        self.invoices += other.invoices;
        self.commercial += other.commercial;
        self.litmus += other.litmus;
        self.ideal += other.ideal;
    }

    /// Number of invoices folded in.
    pub fn len(&self) -> usize {
        self.invoices
    }

    /// Whether no invoices have been folded in.
    pub fn is_empty(&self) -> bool {
        self.invoices == 0
    }

    /// Total revenue billed under Litmus pricing.
    pub fn litmus_revenue(&self) -> f64 {
        self.litmus
    }

    /// Total revenue commercial pricing would have billed.
    pub fn commercial_revenue(&self) -> f64 {
        self.commercial
    }

    /// Total revenue the oracle would have billed.
    pub fn ideal_revenue(&self) -> f64 {
        self.ideal
    }

    /// Compensation handed back to tenants (commercial − litmus).
    pub fn total_compensation(&self) -> f64 {
        self.commercial - self.litmus
    }

    /// Revenue-weighted average Litmus discount.
    pub fn average_discount(&self) -> f64 {
        if self.commercial <= 0.0 {
            return 0.0;
        }
        self.total_compensation() / self.commercial
    }

    /// Revenue-weighted average ideal (oracle) discount.
    pub fn ideal_discount(&self) -> f64 {
        if self.commercial <= 0.0 {
            return 0.0;
        }
        (self.commercial - self.ideal) / self.commercial
    }
}

impl From<&BillingLedger> for BillingSummary {
    fn from(ledger: &BillingLedger) -> Self {
        ledger.summary()
    }
}

impl Extend<Invoice> for BillingSummary {
    fn extend<T: IntoIterator<Item = Invoice>>(&mut self, iter: T) {
        for invoice in iter {
            self.fold(&invoice);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invoice() -> Invoice {
        Invoice {
            function: "pager-py".into(),
            counters: PmuCounters {
                cycles: 1000.0,
                instructions: 900.0,
                stall_l2_cycles: 200.0,
                ..Default::default()
            },
            commercial: Price {
                private: 800.0,
                shared: 200.0,
            },
            litmus: Price {
                private: 760.0,
                shared: 150.0,
            },
            ideal: Price {
                private: 770.0,
                shared: 140.0,
            },
        }
    }

    #[test]
    fn normalisations() {
        let inv = invoice();
        assert!((inv.litmus_normalized() - 0.91).abs() < 1e-12);
        assert!((inv.ideal_normalized() - 0.91).abs() < 1e-12);
        assert!((inv.litmus_discount() - 0.09).abs() < 1e-12);
    }

    #[test]
    fn weighted_errors_follow_fig12_definition() {
        let inv = invoice();
        // Private: (760-770)/770 weighted by 0.8.
        let expected_priv = (760.0 - 770.0) / 770.0 * 0.8;
        assert!((inv.private_error() - expected_priv).abs() < 1e-12);
        // Shared: (150-140)/140 weighted by 0.2.
        let expected_shared = (150.0 - 140.0) / 140.0 * 0.2;
        assert!((inv.shared_error() - expected_shared).abs() < 1e-12);
        // Total: (910-910)/910 = 0.
        assert!(inv.total_error().abs() < 1e-12);
    }

    #[test]
    fn positive_error_means_under_compensation() {
        let mut inv = invoice();
        inv.litmus.shared = 200.0; // charged more than ideal
        assert!(inv.shared_error() > 0.0);
    }

    #[test]
    fn zero_ideal_components_do_not_divide_by_zero() {
        let mut inv = invoice();
        inv.ideal = Price::default();
        assert_eq!(inv.private_error(), 0.0);
        assert_eq!(inv.shared_error(), 0.0);
        assert_eq!(inv.total_error(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let s = invoice().to_string();
        assert!(s.contains("pager-py"));
        assert!(s.contains("0.91"));
    }

    #[test]
    fn ledger_accumulates_revenue_and_compensation() {
        let mut ledger = BillingLedger::new();
        ledger.record(invoice());
        ledger.record(invoice());
        assert_eq!(ledger.len(), 2);
        assert!(!ledger.is_empty());
        assert_eq!(ledger.commercial_revenue(), 2000.0);
        assert_eq!(ledger.litmus_revenue(), 1820.0);
        assert_eq!(ledger.total_compensation(), 180.0);
        assert!((ledger.average_discount() - 0.09).abs() < 1e-12);
        assert_eq!(ledger.for_function("pager-py").count(), 2);
        assert_eq!(ledger.for_function("nope").count(), 0);
    }

    #[test]
    fn ledger_collects_from_iterators() {
        let ledger: BillingLedger = vec![invoice(), invoice(), invoice()].into_iter().collect();
        assert_eq!(ledger.len(), 3);
        let mut extended = ledger.clone();
        extended.extend(vec![invoice()]);
        assert_eq!(extended.len(), 4);
    }

    #[test]
    fn empty_ledger_has_zero_discount() {
        assert_eq!(BillingLedger::new().average_discount(), 0.0);
    }
}
