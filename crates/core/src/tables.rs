use std::collections::BTreeMap;

use litmus_sim::{ExecutionReport, MachineSpec, Placement, Simulator};
use litmus_stats::geometric_mean;
use litmus_workloads::{suite, BackfillPool, Benchmark, Language, TrafficGenerator};

use crate::error::CoreError;
use crate::probe::StartupBaseline;
use crate::Result;

/// One row of a congestion or performance table (paper Fig. 5): the
/// slowdowns observed at a given generator stress level, plus the
/// machine L3 miss rate that accompanied them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableRow {
    /// Generator stress level (number of generator threads).
    pub level: usize,
    /// `T_private`-per-instruction slowdown vs solo.
    pub private_slowdown: f64,
    /// `T_shared`-per-instruction slowdown vs solo.
    pub shared_slowdown: f64,
    /// Total cycles-per-instruction slowdown vs solo (the Fig. 9(c)
    /// series; also feeds the no-split ablation).
    pub total_slowdown: f64,
    /// Machine L3 misses per ms during the measurement.
    pub l3_miss_rate: f64,
}

/// Execution environment used while building tables.
///
/// * [`CalibrationEnv::Dedicated`] — §7.1 protocol: the measured
///   function owns a core exclusively.
/// * [`CalibrationEnv::Shared`] — §7.2 "Method 2" protocol: the measured
///   function joins a pool of cores time-shared with filler functions
///   (the paper runs 50 functions across 5 dedicated cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationEnv {
    /// Measured function pinned alone to core 0.
    Dedicated,
    /// Measured function runs in a pool of `cores` cores shared with
    /// `fillers` backfilled random functions.
    Shared {
        /// Number of filler functions kept alive in the pool.
        fillers: usize,
        /// Number of cores in the shared pool.
        cores: usize,
    },
}

/// The provider's offline tables: startup-probe slowdowns
/// (**congestion**, per language) and reference-function slowdowns
/// (**performance**), each measured under both traffic generators at a
/// ladder of stress levels — the data structure sketched in paper
/// Fig. 5.
#[derive(Debug, Clone, PartialEq)]
pub struct PricingTables {
    spec: MachineSpec,
    env: CalibrationEnv,
    baselines: Vec<StartupBaseline>,
    congestion: BTreeMap<(Language, TrafficGenerator), Vec<TableRow>>,
    performance: BTreeMap<TrafficGenerator, Vec<TableRow>>,
}

impl PricingTables {
    /// Reassembles tables from their parts (the [`crate::persist`]
    /// decoder; also useful for hand-built tables in tests).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoLevels`] if no congestion rows were given.
    pub fn from_parts(
        spec: MachineSpec,
        env: CalibrationEnv,
        baselines: Vec<StartupBaseline>,
        congestion_rows: Vec<(Language, TrafficGenerator, TableRow)>,
        performance_rows: Vec<(TrafficGenerator, TableRow)>,
    ) -> Result<Self> {
        if congestion_rows.is_empty() || performance_rows.is_empty() {
            return Err(CoreError::NoLevels);
        }
        let mut congestion: BTreeMap<(Language, TrafficGenerator), Vec<TableRow>> = BTreeMap::new();
        for (lang, gen, row) in congestion_rows {
            congestion.entry((lang, gen)).or_default().push(row);
        }
        let mut performance: BTreeMap<TrafficGenerator, Vec<TableRow>> = BTreeMap::new();
        for (gen, row) in performance_rows {
            performance.entry(gen).or_default().push(row);
        }
        Ok(PricingTables {
            spec,
            env,
            baselines,
            congestion,
            performance,
        })
    }

    /// The machine the tables were built on.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The calibration environment the tables were built under.
    pub fn env(&self) -> CalibrationEnv {
        self.env
    }

    /// Solo startup baselines per language.
    pub fn baselines(&self) -> &[StartupBaseline] {
        &self.baselines
    }

    /// The solo startup baseline for `language`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingLanguage`] when the language was not
    /// calibrated.
    pub fn baseline(&self, language: Language) -> Result<&StartupBaseline> {
        self.baselines
            .iter()
            .find(|b| b.language == language)
            .ok_or(CoreError::MissingLanguage(language))
    }

    /// Congestion-table rows for a language/generator pair.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingLanguage`] when the pair was not
    /// calibrated.
    pub fn congestion(
        &self,
        language: Language,
        generator: TrafficGenerator,
    ) -> Result<&[TableRow]> {
        self.congestion
            .get(&(language, generator))
            .map(Vec::as_slice)
            .ok_or(CoreError::MissingLanguage(language))
    }

    /// Performance-table rows (reference-function gmean slowdowns) for a
    /// generator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoLevels`] when the generator has no rows
    /// (cannot happen for tables produced by [`TableBuilder::build`]).
    pub fn performance(&self, generator: TrafficGenerator) -> Result<&[TableRow]> {
        self.performance
            .get(&generator)
            .map(Vec::as_slice)
            .ok_or(CoreError::NoLevels)
    }
}

/// Builds [`PricingTables`] by running the paper's offline calibration
/// protocol on the simulator (§6 steps 1–2).
///
/// # Examples
///
/// ```no_run
/// use litmus_core::TableBuilder;
/// use litmus_sim::MachineSpec;
///
/// # fn main() -> Result<(), litmus_core::CoreError> {
/// let tables = TableBuilder::new(MachineSpec::cascade_lake())
///     .levels([4, 8, 14, 22, 30])
///     .build()?;
/// # let _ = tables;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    spec: MachineSpec,
    levels: Vec<usize>,
    env: CalibrationEnv,
    references: Vec<Benchmark>,
    languages: Vec<Language>,
    reference_scale: f64,
    seed: u64,
}

impl TableBuilder {
    /// Starts a builder on the given machine with the paper's defaults:
    /// dedicated-core calibration, the 13 Table-1 reference functions,
    /// all three languages, and a five-point level ladder.
    pub fn new(spec: MachineSpec) -> Self {
        TableBuilder {
            spec,
            levels: vec![4, 8, 14, 22, 30],
            env: CalibrationEnv::Dedicated,
            references: suite::reference_benchmarks(),
            languages: Language::ALL.to_vec(),
            reference_scale: 0.25,
            seed: 0x11735,
        }
    }

    /// Sets the generator stress levels to calibrate at.
    pub fn levels(mut self, levels: impl IntoIterator<Item = usize>) -> Self {
        self.levels = levels.into_iter().collect();
        self
    }

    /// Sets the calibration environment (Method 2 passes
    /// [`CalibrationEnv::Shared`]).
    pub fn env(mut self, env: CalibrationEnv) -> Self {
        self.env = env;
        self
    }

    /// Restricts probed languages (the defaults probe all three).
    pub fn languages(mut self, languages: impl IntoIterator<Item = Language>) -> Self {
        self.languages = languages.into_iter().collect();
        self
    }

    /// Overrides the reference-function set.
    pub fn references(mut self, references: Vec<Benchmark>) -> Self {
        self.references = references;
        self
    }

    /// Scales reference bodies to shorten calibration runs. Slowdowns
    /// are per-instruction steady-state ratios, so a scaled body
    /// measures the same quantity faster; 0.25 is accurate to well
    /// under a percent, tests use smaller values.
    pub fn reference_scale(mut self, scale: f64) -> Self {
        self.reference_scale = scale;
        self
    }

    /// Seed for the filler mix in shared calibration environments.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the calibration protocol and assembles the tables.
    ///
    /// For every generator and level: spin up `level` generator threads
    /// on the top cores, then measure (a) each language's startup-probe
    /// slowdown → congestion rows, and (b) each reference function's
    /// slowdown → the gmean performance row.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoLevels`] if the level ladder is empty.
    /// * [`CoreError::LevelTooHigh`] if a level leaves no measurement
    ///   cores.
    /// * [`CoreError::Sim`] / [`CoreError::Stats`] on failed runs.
    pub fn build(&self) -> Result<PricingTables> {
        if self.levels.is_empty() {
            return Err(CoreError::NoLevels);
        }
        let measurement_cores = match self.env {
            CalibrationEnv::Dedicated => 1,
            CalibrationEnv::Shared { cores, .. } => cores,
        };
        for &level in &self.levels {
            if level + measurement_cores > self.spec.cores {
                return Err(CoreError::LevelTooHigh {
                    level,
                    cores: self.spec.cores,
                });
            }
        }

        let baselines: Vec<StartupBaseline> = self
            .languages
            .iter()
            .map(|&lang| StartupBaseline::measure(&self.spec, lang))
            .collect::<Result<_>>()?;

        // Solo reference baselines (per-instruction components).
        let mut ref_solo = Vec::new();
        for bench in &self.references {
            let profile = bench.profile().scaled(self.reference_scale)?;
            let mut sim = Simulator::new(self.spec.clone());
            let id = sim.launch(profile, Placement::pinned(0))?;
            let report = sim.run_to_completion(id)?;
            ref_solo.push(report.counters);
        }

        let mut congestion: BTreeMap<(Language, TrafficGenerator), Vec<TableRow>> = BTreeMap::new();
        let mut performance: BTreeMap<TrafficGenerator, Vec<TableRow>> = BTreeMap::new();

        for generator in TrafficGenerator::ALL {
            for &level in &self.levels {
                let session = CalibrationSession::new(self, generator, level, measurement_cores);

                // Congestion rows: one probe per language.
                for (baseline, &language) in baselines.iter().zip(self.languages.iter()) {
                    let mut session = session.start(self.seed)?;
                    let mut builder =
                        litmus_sim::ExecutionProfile::builder(format!("{}-probe", language.abbr()));
                    for phase in language.startup_phases() {
                        builder = builder.startup_phase(phase);
                    }
                    let report = session.measure(builder.build()?)?;
                    let counters = report.counters;
                    let startup = report.startup.as_ref().ok_or(CoreError::NoStartup)?;
                    let baseline_total = baseline.t_private_pi + baseline.t_shared_pi;
                    congestion
                        .entry((language, generator))
                        .or_default()
                        .push(TableRow {
                            level,
                            private_slowdown: counters.t_private_per_instruction()
                                / baseline.t_private_pi,
                            shared_slowdown: counters.t_shared_per_instruction()
                                / baseline.t_shared_pi,
                            total_slowdown: (counters.cycles / counters.instructions)
                                / baseline_total,
                            l3_miss_rate: startup.machine_l3_miss_rate.max(1.0),
                        });
                }

                // Performance row: gmean of reference slowdowns.
                let mut priv_slow = Vec::new();
                let mut shared_slow = Vec::new();
                let mut total_slow = Vec::new();
                let mut l3_rates = Vec::new();
                for (bench, solo) in self.references.iter().zip(&ref_solo) {
                    let mut session = session.start(self.seed ^ 0x5eed)?;
                    let profile = bench.profile().scaled(self.reference_scale)?;
                    let report = session.measure(profile)?;
                    let c = report.counters;
                    priv_slow
                        .push(c.t_private_per_instruction() / solo.t_private_per_instruction());
                    shared_slow
                        .push(c.t_shared_per_instruction() / solo.t_shared_per_instruction());
                    total_slow
                        .push((c.cycles / c.instructions) / (solo.cycles / solo.instructions));
                    if let Some(startup) = report.startup.as_ref() {
                        l3_rates.push(startup.machine_l3_miss_rate.max(1.0));
                    }
                }
                performance.entry(generator).or_default().push(TableRow {
                    level,
                    private_slowdown: geometric_mean(&priv_slow)?,
                    shared_slowdown: geometric_mean(&shared_slow)?,
                    total_slowdown: geometric_mean(&total_slow)?,
                    l3_miss_rate: geometric_mean(&l3_rates)?,
                });
            }
        }

        Ok(PricingTables {
            spec: self.spec.clone(),
            env: self.env,
            baselines,
            congestion,
            performance,
        })
    }
}

/// One calibration measurement setup: generators on the top cores, an
/// optional filler pool, and a measured workload.
struct CalibrationSession<'a> {
    builder: &'a TableBuilder,
    generator: TrafficGenerator,
    level: usize,
    measurement_cores: usize,
}

/// A running calibration session ready to measure one workload.
struct RunningSession {
    sim: Simulator,
    pool: Option<BackfillPool>,
    placement: Placement,
}

impl<'a> CalibrationSession<'a> {
    fn new(
        builder: &'a TableBuilder,
        generator: TrafficGenerator,
        level: usize,
        measurement_cores: usize,
    ) -> Self {
        CalibrationSession {
            builder,
            generator,
            level,
            measurement_cores,
        }
    }

    /// Boots the simulator: generators spinning, fillers warmed up.
    fn start(&self, seed: u64) -> Result<RunningSession> {
        let spec = &self.builder.spec;
        let mut sim = Simulator::new(spec.clone());
        // Generators occupy the highest cores, far from the pool.
        for i in 0..self.level {
            let core = spec.cores - 1 - i;
            sim.launch(
                self.generator.thread_profile(1.0e7),
                Placement::pinned(core),
            )?;
        }
        let (pool, placement) = match self.builder.env {
            CalibrationEnv::Dedicated => (None, Placement::pinned(0)),
            CalibrationEnv::Shared { fillers, cores } => {
                let placement = Placement::pool_range(0, cores);
                let mut pool = BackfillPool::new(suite::benchmarks(), seed, placement.clone())
                    .ok_or(CoreError::DegenerateMeasurement("empty filler pool"))?;
                pool.fill(&mut sim, fillers)?;
                // Warm up so fillers reach steady state.
                pool.run(&mut sim, 300)?;
                (Some(pool), placement)
            }
        };
        Ok(RunningSession {
            sim,
            pool,
            placement,
        })
    }

    #[allow(dead_code)]
    fn generator(&self) -> TrafficGenerator {
        self.generator
    }

    #[allow(dead_code)]
    fn level(&self) -> usize {
        self.level
    }

    #[allow(dead_code)]
    fn measurement_cores(&self) -> usize {
        self.measurement_cores
    }
}

impl RunningSession {
    /// Launches `profile` in the measurement slot and runs it to
    /// completion, keeping fillers backfilled.
    fn measure(&mut self, profile: litmus_sim::ExecutionProfile) -> Result<ExecutionReport> {
        let id = self.sim.launch(profile, self.placement.clone())?;
        match &mut self.pool {
            None => Ok(self.sim.run_to_completion(id)?),
            Some(pool) => Ok(pool.run_until(&mut self.sim, id)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tables() -> PricingTables {
        TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14, 24])
            .languages([Language::Python])
            .reference_scale(0.04)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_empty_levels() {
        let err = TableBuilder::new(MachineSpec::cascade_lake())
            .levels(Vec::<usize>::new())
            .build()
            .unwrap_err();
        assert_eq!(err, CoreError::NoLevels);
    }

    #[test]
    fn builder_rejects_oversized_levels() {
        let err = TableBuilder::new(MachineSpec::cascade_lake())
            .levels([32])
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::LevelTooHigh { level: 32, .. }));
    }

    #[test]
    fn congestion_slowdowns_grow_with_level() {
        let tables = small_tables();
        for gen in TrafficGenerator::ALL {
            let rows = tables.congestion(Language::Python, gen).unwrap();
            assert_eq!(rows.len(), 3);
            for pair in rows.windows(2) {
                assert!(
                    pair[1].shared_slowdown > pair[0].shared_slowdown,
                    "{gen:?}: shared slowdown must grow with level"
                );
            }
            // All slowdowns are genuine slowdowns.
            for row in rows {
                assert!(row.shared_slowdown > 1.0);
                assert!(row.private_slowdown > 0.98);
            }
        }
    }

    #[test]
    fn mb_gen_produces_more_l3_misses_than_ct_gen() {
        let tables = small_tables();
        let ct = tables
            .congestion(Language::Python, TrafficGenerator::CtGen)
            .unwrap();
        let mb = tables
            .congestion(Language::Python, TrafficGenerator::MbGen)
            .unwrap();
        for (c, m) in ct.iter().zip(mb) {
            assert!(
                m.l3_miss_rate > c.l3_miss_rate * 3.0,
                "MB must dwarf CT L3 misses at level {}",
                c.level
            );
        }
    }

    #[test]
    fn performance_rows_track_congestion_rows() {
        let tables = small_tables();
        for gen in TrafficGenerator::ALL {
            let perf = tables.performance(gen).unwrap();
            assert_eq!(perf.len(), 3);
            for pair in perf.windows(2) {
                assert!(pair[1].shared_slowdown >= pair[0].shared_slowdown * 0.98);
            }
        }
    }

    #[test]
    fn missing_language_is_reported() {
        let tables = small_tables();
        assert!(matches!(
            tables.congestion(Language::Go, TrafficGenerator::CtGen),
            Err(CoreError::MissingLanguage(Language::Go))
        ));
        assert!(tables.baseline(Language::Python).is_ok());
        assert!(tables.baseline(Language::NodeJs).is_err());
    }
}
