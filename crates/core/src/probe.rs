use litmus_sim::{ExecutionProfile, MachineSpec, Placement, Simulator, StartupReport};
use litmus_workloads::Language;

use crate::error::CoreError;
use crate::Result;

/// Solo (uncontended) performance of one language's startup routine —
/// the yardstick every Litmus test compares against.
///
/// The provider measures this once per language on an idle machine; the
/// values are per-instruction so they are robust to partial windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartupBaseline {
    /// The probed language.
    pub language: Language,
    /// Solo `T_private` cycles per instruction of the startup.
    pub t_private_pi: f64,
    /// Solo `T_shared` cycles per instruction of the startup.
    pub t_shared_pi: f64,
    /// Solo machine L3 misses per ms while the startup runs alone.
    pub l3_miss_rate: f64,
    /// Solo wall-clock duration of the startup in ms.
    pub wall_ms: f64,
}

impl StartupBaseline {
    /// Measures the baseline by running the startup alone on an
    /// otherwise idle machine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Sim`] if the run fails and
    /// [`CoreError::DegenerateMeasurement`] if the startup retired no
    /// instructions.
    pub fn measure(spec: &MachineSpec, language: Language) -> Result<Self> {
        let mut builder = ExecutionProfile::builder(format!("{}-startup-probe", language.abbr()));
        for phase in language.startup_phases() {
            builder = builder.startup_phase(phase);
        }
        let profile = builder.build()?;
        let mut sim = Simulator::new(spec.clone());
        let id = sim.launch(profile, Placement::pinned(0))?;
        let report = sim.run_to_completion(id)?;
        let counters = report.counters;
        if counters.instructions <= 0.0 {
            return Err(CoreError::DegenerateMeasurement(
                "startup retired no instructions",
            ));
        }
        let startup = report.startup.as_ref().ok_or(CoreError::NoStartup)?;
        Ok(StartupBaseline {
            language,
            t_private_pi: counters.t_private_per_instruction(),
            t_shared_pi: counters.t_shared_per_instruction(),
            l3_miss_rate: startup.machine_l3_miss_rate,
            wall_ms: report.wall_ms(),
        })
    }

    /// Measures baselines for all three languages.
    ///
    /// # Errors
    ///
    /// Propagates the first failing [`StartupBaseline::measure`].
    pub fn measure_all(spec: &MachineSpec) -> Result<Vec<StartupBaseline>> {
        Language::ALL
            .iter()
            .map(|&lang| StartupBaseline::measure(spec, lang))
            .collect()
    }
}

/// The outcome of one Litmus test: how much slower the startup ran than
/// its solo baseline, split by resource type, plus the machine's L3 miss
/// traffic during the window (paper Fig. 10's supplementary metric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LitmusReading {
    /// Language whose startup served as the probe.
    pub language: Language,
    /// `T_private`-per-instruction slowdown vs the solo baseline (≥ 0;
    /// ≈1 on a quiet machine).
    pub private_slowdown: f64,
    /// `T_shared`-per-instruction slowdown vs the solo baseline.
    pub shared_slowdown: f64,
    /// Total cycles-per-instruction slowdown vs the solo baseline.
    pub total_slowdown: f64,
    /// Machine-wide L3 misses per ms observed during the probe window.
    pub l3_miss_rate: f64,
}

impl LitmusReading {
    /// Derives a reading from a function's startup-window report.
    ///
    /// # Errors
    ///
    /// * [`CoreError::DegenerateMeasurement`] if the baseline or window
    ///   is empty.
    pub fn from_startup(baseline: &StartupBaseline, startup: &StartupReport) -> Result<Self> {
        let counters = &startup.counters;
        if counters.instructions <= 0.0 {
            return Err(CoreError::DegenerateMeasurement(
                "probe window retired no instructions",
            ));
        }
        if baseline.t_private_pi <= 0.0 || baseline.t_shared_pi <= 0.0 {
            return Err(CoreError::DegenerateMeasurement(
                "startup baseline has empty time components",
            ));
        }
        Ok(LitmusReading {
            language: baseline.language,
            private_slowdown: counters.t_private_per_instruction() / baseline.t_private_pi,
            shared_slowdown: counters.t_shared_per_instruction() / baseline.t_shared_pi,
            total_slowdown: (counters.cycles / counters.instructions)
                / (baseline.t_private_pi + baseline.t_shared_pi),
            l3_miss_rate: startup.machine_l3_miss_rate.max(1.0),
        })
    }

    /// Total cycles-per-instruction slowdown of the probe window.
    pub fn total_slowdown(&self) -> f64 {
        self.total_slowdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litmus_sim::PmuCounters;

    fn baseline() -> StartupBaseline {
        StartupBaseline::measure(&MachineSpec::cascade_lake(), Language::Python).unwrap()
    }

    #[test]
    fn python_baseline_matches_fig6_scale() {
        let b = baseline();
        assert!(
            (15.0..30.0).contains(&b.wall_ms),
            "python startup ≈19 ms solo, got {}",
            b.wall_ms
        );
        assert!(b.t_private_pi > 0.0);
        assert!(b.t_shared_pi > 0.0);
    }

    #[test]
    fn all_languages_have_baselines() {
        let all = StartupBaseline::measure_all(&MachineSpec::cascade_lake()).unwrap();
        assert_eq!(all.len(), 3);
        // Node.js startup is the longest, Go the shortest (Fig. 6).
        let by_lang = |l: Language| all.iter().find(|b| b.language == l).unwrap();
        assert!(by_lang(Language::NodeJs).wall_ms > by_lang(Language::Python).wall_ms);
        assert!(by_lang(Language::Python).wall_ms > by_lang(Language::Go).wall_ms);
    }

    #[test]
    fn quiet_machine_reads_near_unity() {
        let b = baseline();
        // Re-run the startup alone: reading must be ≈1 on both axes.
        let mut sim = Simulator::new(MachineSpec::cascade_lake());
        let profile = litmus_workloads::suite::by_name("fib-py")
            .unwrap()
            .profile();
        let id = sim.launch(profile, Placement::pinned(0)).unwrap();
        let report = sim.run_to_completion(id).unwrap();
        let reading = LitmusReading::from_startup(&b, report.startup.as_ref().unwrap()).unwrap();
        assert!((reading.private_slowdown - 1.0).abs() < 0.02);
        assert!((reading.shared_slowdown - 1.0).abs() < 0.05);
    }

    #[test]
    fn degenerate_windows_are_rejected() {
        let b = baseline();
        let startup = StartupReport {
            counters: PmuCounters::default(),
            wall_ms: 0.0,
            machine_l3_miss_rate: 0.0,
        };
        assert!(matches!(
            LitmusReading::from_startup(&b, &startup),
            Err(CoreError::DegenerateMeasurement(_))
        ));
    }
}
