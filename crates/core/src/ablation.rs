use litmus_sim::PmuCounters;
use litmus_workloads::TrafficGenerator;

use crate::model::DiscountModel;
use crate::pricing::Price;
use crate::probe::LitmusReading;
use crate::Result;

/// Design-choice ablations of Litmus pricing (not in the paper's
/// evaluation, but direct tests of its two key mechanisms).
///
/// * [`AblationScheme::NoSplit`] removes Eq. 1's private/shared
///   decomposition: one rate, derived from the total-time regression,
///   applied to the whole execution. Functions with unusual
///   compositions (a `float-py` that barely touches shared resources, a
///   `pager-py` that lives there) get priced as if they were average.
/// * [`AblationScheme::SingleGenerator`] removes the Fig. 10 L3-miss
///   interpolation: the machine state is always assumed to look like
///   one chosen generator, so mixed congestion states are mis-read.
///
/// # Examples
///
/// ```no_run
/// use litmus_core::{AblationPricing, AblationScheme, DiscountModel, TableBuilder};
/// use litmus_sim::MachineSpec;
///
/// # fn main() -> Result<(), litmus_core::CoreError> {
/// let tables = TableBuilder::new(MachineSpec::cascade_lake()).build()?;
/// let model = DiscountModel::fit(&tables)?;
/// let no_split = AblationPricing::new(model, AblationScheme::NoSplit);
/// # let _ = no_split;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationScheme {
    /// Single charging rate on total occupied time (no Eq. 1 split).
    NoSplit,
    /// Fixed generator model instead of L3-miss interpolation.
    SingleGenerator(TrafficGenerator),
}

/// A pricing engine with one Litmus mechanism removed — see
/// [`AblationScheme`].
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPricing {
    model: DiscountModel,
    scheme: AblationScheme,
}

impl AblationPricing {
    /// Creates the ablated engine.
    pub fn new(model: DiscountModel, scheme: AblationScheme) -> Self {
        AblationPricing { model, scheme }
    }

    /// The ablation applied.
    pub fn scheme(&self) -> AblationScheme {
        self.scheme
    }

    /// Prices an execution under the ablated scheme.
    ///
    /// # Errors
    ///
    /// Propagates [`DiscountModel::estimate_weighted`] failures.
    pub fn price(&self, reading: &LitmusReading, counters: &PmuCounters) -> Result<Price> {
        match self.scheme {
            AblationScheme::NoSplit => {
                let estimate = self.model.estimate(reading)?;
                let rate = estimate.r_total();
                Ok(Price {
                    private: rate * counters.t_private_cycles(),
                    shared: rate * counters.t_shared_cycles(),
                })
            }
            AblationScheme::SingleGenerator(generator) => {
                let weight = match generator {
                    TrafficGenerator::CtGen => 0.0,
                    TrafficGenerator::MbGen => 1.0,
                };
                let estimate = self.model.estimate_weighted(reading, Some(weight))?;
                Ok(Price {
                    private: estimate.r_private() * counters.t_private_cycles(),
                    shared: estimate.r_shared() * counters.t_shared_cycles(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::LitmusPricing;
    use crate::tables::TableBuilder;
    use litmus_sim::MachineSpec;
    use litmus_workloads::Language;

    fn model() -> DiscountModel {
        let tables = TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14, 24])
            .languages([Language::Python])
            .reference_scale(0.04)
            .build()
            .unwrap();
        DiscountModel::fit(&tables).unwrap()
    }

    fn reading() -> LitmusReading {
        LitmusReading {
            language: Language::Python,
            private_slowdown: 1.02,
            shared_slowdown: 1.7,
            total_slowdown: 1.45,
            l3_miss_rate: 70_000.0,
        }
    }

    fn counters() -> PmuCounters {
        PmuCounters {
            cycles: 1_000_000.0,
            instructions: 900_000.0,
            stall_l2_cycles: 150_000.0,
            ..Default::default()
        }
    }

    #[test]
    fn no_split_uses_one_rate() {
        let p = AblationPricing::new(model(), AblationScheme::NoSplit)
            .price(&reading(), &counters())
            .unwrap();
        let c = counters();
        let rate_priv = p.private / c.t_private_cycles();
        let rate_shared = p.shared / c.t_shared_cycles();
        assert!((rate_priv - rate_shared).abs() < 1e-12, "one rate");
        assert!(rate_priv < 1.0, "still a discount");
    }

    #[test]
    fn litmus_splits_rates_but_no_split_does_not() {
        let m = model();
        let litmus = LitmusPricing::new(m.clone())
            .price(&reading(), &counters())
            .unwrap();
        let c = counters();
        let rate_priv = litmus.private / c.t_private_cycles();
        let rate_shared = litmus.shared / c.t_shared_cycles();
        // Litmus proper discounts the shared component much harder.
        assert!(rate_shared < rate_priv - 0.05);
    }

    #[test]
    fn single_generator_brackets_the_interpolated_price() {
        let m = model();
        let full = LitmusPricing::new(m.clone())
            .price(&reading(), &counters())
            .unwrap();
        let ct = AblationPricing::new(
            m.clone(),
            AblationScheme::SingleGenerator(TrafficGenerator::CtGen),
        )
        .price(&reading(), &counters())
        .unwrap();
        let mb = AblationPricing::new(m, AblationScheme::SingleGenerator(TrafficGenerator::MbGen))
            .price(&reading(), &counters())
            .unwrap();
        let lo = ct.total().min(mb.total());
        let hi = ct.total().max(mb.total());
        assert!(
            full.total() >= lo - 1e-9 && full.total() <= hi + 1e-9,
            "interpolated price {} outside generator bracket [{lo}, {hi}]",
            full.total()
        );
    }

    #[test]
    fn scheme_accessor() {
        let a = AblationPricing::new(model(), AblationScheme::NoSplit);
        assert_eq!(a.scheme(), AblationScheme::NoSplit);
    }
}
