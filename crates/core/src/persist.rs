//! Plain-text persistence for calibration tables.
//!
//! Table construction takes real machine time (it stresses the platform
//! at a ladder of levels), so providers build tables once per machine
//! configuration and reuse them across restarts. The format is a simple
//! line-oriented text encoding — deliberately not a serialization
//! framework, so the files remain human-auditable (a provider's billing
//! inputs should be reviewable).

use std::fmt::Write as _;

use litmus_workloads::{Language, TrafficGenerator};

use crate::error::CoreError;
use crate::probe::StartupBaseline;
use crate::tables::{CalibrationEnv, PricingTables, TableRow};
use crate::Result;

const MAGIC: &str = "litmus-tables v1";

/// Encodes tables to the v1 text format.
///
/// # Examples
///
/// ```no_run
/// use litmus_core::{persist, TableBuilder};
/// use litmus_sim::MachineSpec;
///
/// # fn main() -> Result<(), litmus_core::CoreError> {
/// let spec = MachineSpec::cascade_lake();
/// let tables = TableBuilder::new(spec.clone()).build()?;
/// let text = persist::encode(&tables);
/// let restored = persist::decode(spec, &text)?;
/// assert_eq!(tables, restored);
/// # Ok(()) }
/// ```
pub fn encode(tables: &PricingTables) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "spec {}", tables.spec().name);
    match tables.env() {
        CalibrationEnv::Dedicated => {
            let _ = writeln!(out, "env dedicated");
        }
        CalibrationEnv::Shared { fillers, cores } => {
            let _ = writeln!(out, "env shared {fillers} {cores}");
        }
    }
    for b in tables.baselines() {
        let _ = writeln!(
            out,
            "baseline {} {} {} {} {}",
            b.language.abbr(),
            b.t_private_pi,
            b.t_shared_pi,
            b.l3_miss_rate,
            b.wall_ms
        );
    }
    for b in tables.baselines() {
        for gen in TrafficGenerator::ALL {
            if let Ok(rows) = tables.congestion(b.language, gen) {
                for r in rows {
                    let _ = writeln!(
                        out,
                        "congestion {} {} {}",
                        b.language.abbr(),
                        gen_tag(gen),
                        row_fields(r)
                    );
                }
            }
        }
    }
    for gen in TrafficGenerator::ALL {
        if let Ok(rows) = tables.performance(gen) {
            for r in rows {
                let _ = writeln!(out, "performance {} {}", gen_tag(gen), row_fields(r));
            }
        }
    }
    out
}

/// Decodes the v1 text format, re-attaching the machine `spec` the
/// tables were built on.
///
/// # Errors
///
/// * [`CoreError::Parse`] on malformed input or when the recorded spec
///   name does not match `spec.name` (tables are machine-specific —
///   pricing with another machine's tables is a provider bug).
pub fn decode(spec: litmus_sim::MachineSpec, text: &str) -> Result<PricingTables> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or_else(|| parse_err(0, "empty input"))?;
    if first.trim() != MAGIC {
        return Err(parse_err(1, "missing litmus-tables v1 header"));
    }

    let mut env = CalibrationEnv::Dedicated;
    let mut baselines: Vec<StartupBaseline> = Vec::new();
    let mut congestion: Vec<(Language, TrafficGenerator, TableRow)> = Vec::new();
    let mut performance: Vec<(TrafficGenerator, TableRow)> = Vec::new();
    let mut spec_name: Option<String> = None;

    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(tag) = parts.next() else {
            continue;
        };
        let rest: Vec<&str> = parts.collect();
        match tag {
            "spec" => {
                spec_name = Some(rest.join(" "));
            }
            "env" => match rest.first() {
                Some(&"dedicated") => env = CalibrationEnv::Dedicated,
                Some(&"shared") if rest.len() == 3 => {
                    env = CalibrationEnv::Shared {
                        fillers: parse_num(line_no, rest[1])? as usize,
                        cores: parse_num(line_no, rest[2])? as usize,
                    };
                }
                _ => return Err(parse_err(line_no, "bad env line")),
            },
            "baseline" => {
                if rest.len() != 5 {
                    return Err(parse_err(line_no, "baseline needs 5 fields"));
                }
                baselines.push(StartupBaseline {
                    language: parse_language(line_no, rest[0])?,
                    t_private_pi: parse_num(line_no, rest[1])?,
                    t_shared_pi: parse_num(line_no, rest[2])?,
                    l3_miss_rate: parse_num(line_no, rest[3])?,
                    wall_ms: parse_num(line_no, rest[4])?,
                });
            }
            "congestion" => {
                if rest.len() != 7 {
                    return Err(parse_err(line_no, "congestion needs 7 fields"));
                }
                congestion.push((
                    parse_language(line_no, rest[0])?,
                    parse_generator(line_no, rest[1])?,
                    parse_row(line_no, &rest[2..])?,
                ));
            }
            "performance" => {
                if rest.len() != 6 {
                    return Err(parse_err(line_no, "performance needs 6 fields"));
                }
                performance.push((
                    parse_generator(line_no, rest[0])?,
                    parse_row(line_no, &rest[1..])?,
                ));
            }
            other => {
                return Err(parse_err(line_no, format!("unknown tag {other:?}")));
            }
        }
    }

    match spec_name {
        Some(name) if name == spec.name => {}
        Some(name) => {
            return Err(CoreError::Parse {
                line: 2,
                message: format!("tables were built on {name:?}, not {:?}", spec.name),
            });
        }
        None => return Err(parse_err(2, "missing spec line")),
    }
    if baselines.is_empty() {
        return Err(parse_err(0, "no baselines in input"));
    }

    PricingTables::from_parts(spec, env, baselines, congestion, performance)
}

fn gen_tag(gen: TrafficGenerator) -> &'static str {
    match gen {
        TrafficGenerator::CtGen => "ct",
        TrafficGenerator::MbGen => "mb",
    }
}

fn row_fields(r: &TableRow) -> String {
    format!(
        "{} {} {} {} {}",
        r.level, r.private_slowdown, r.shared_slowdown, r.total_slowdown, r.l3_miss_rate
    )
}

fn parse_err(line: usize, message: impl Into<String>) -> CoreError {
    CoreError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_num(line: usize, token: &str) -> Result<f64> {
    token
        .parse::<f64>()
        .map_err(|_| parse_err(line, format!("bad number {token:?}")))
}

fn parse_language(line: usize, token: &str) -> Result<Language> {
    Language::ALL
        .into_iter()
        .find(|l| l.abbr() == token)
        .ok_or_else(|| parse_err(line, format!("unknown language {token:?}")))
}

fn parse_generator(line: usize, token: &str) -> Result<TrafficGenerator> {
    match token {
        "ct" => Ok(TrafficGenerator::CtGen),
        "mb" => Ok(TrafficGenerator::MbGen),
        other => Err(parse_err(line, format!("unknown generator {other:?}"))),
    }
}

fn parse_row(line: usize, fields: &[&str]) -> Result<TableRow> {
    Ok(TableRow {
        level: parse_num(line, fields[0])? as usize,
        private_slowdown: parse_num(line, fields[1])?,
        shared_slowdown: parse_num(line, fields[2])?,
        total_slowdown: parse_num(line, fields[3])?,
        l3_miss_rate: parse_num(line, fields[4])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::TableBuilder;
    use litmus_sim::MachineSpec;

    fn tables() -> PricingTables {
        TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14])
            .languages([Language::Python, Language::Go])
            .reference_scale(0.03)
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_tables() {
        let original = tables();
        let text = encode(&original);
        let restored = decode(MachineSpec::cascade_lake(), &text).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn header_is_required() {
        assert!(matches!(
            decode(MachineSpec::cascade_lake(), "not a table file"),
            Err(CoreError::Parse { .. })
        ));
        assert!(decode(MachineSpec::cascade_lake(), "").is_err());
    }

    #[test]
    fn wrong_machine_is_rejected() {
        let text = encode(&tables());
        let err = decode(MachineSpec::ice_lake(), &text).unwrap_err();
        match err {
            CoreError::Parse { message, .. } => {
                assert!(message.contains("ice-lake"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_rows_are_reported_with_line_numbers() {
        let mut text = encode(&tables());
        text.push_str("congestion py ct 6 bogus 1.5 1.4 100\n");
        let err = decode(MachineSpec::cascade_lake(), &text).unwrap_err();
        assert!(matches!(err, CoreError::Parse { .. }));
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut text = String::from("litmus-tables v1\n# a comment\n\n");
        text.push_str(
            &encode(&tables())
                .lines()
                .skip(1)
                .collect::<Vec<_>>()
                .join("\n"),
        );
        assert!(decode(MachineSpec::cascade_lake(), &text).is_ok());
    }

    #[test]
    fn decoded_tables_still_fit_a_model() {
        let text = encode(&tables());
        let restored = decode(MachineSpec::cascade_lake(), &text).unwrap();
        assert!(crate::model::DiscountModel::fit(&restored).is_ok());
    }
}
