use std::collections::BTreeMap;

use litmus_stats::{lerp, LevelTable};
use litmus_workloads::{Language, TrafficGenerator};

use crate::error::CoreError;
use crate::model::DiscountEstimate;
use crate::probe::LitmusReading;
use crate::tables::PricingTables;
use crate::Result;

/// Inverse congestion-table lookup: converts a Litmus reading into the
/// abstract **congestion level** of paper Figs. 5/7 — "which generator
/// stress level would slow this startup the same amount?".
///
/// The paper uses the level both as the index between congestion and
/// performance tables (§6 step 3) and as the scheduling signal sketched
/// in Fig. 7. [`crate::DiscountModel`] regresses the mapping directly;
/// this type exposes the level itself, for monitoring and admission
/// control.
///
/// # Examples
///
/// ```no_run
/// use litmus_core::{CongestionIndex, TableBuilder};
/// use litmus_sim::MachineSpec;
///
/// # fn main() -> Result<(), litmus_core::CoreError> {
/// let tables = TableBuilder::new(MachineSpec::cascade_lake()).build()?;
/// let index = CongestionIndex::from_tables(&tables)?;
/// # let _ = index;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionIndex {
    levels: BTreeMap<(Language, TrafficGenerator), LevelTable>,
}

impl CongestionIndex {
    /// Builds the index from calibration tables: one inverse-lookup
    /// table per (language, generator), keyed by the startup
    /// `T_shared` slowdown (the probe's most sensitive signal).
    ///
    /// # Errors
    ///
    /// * [`CoreError::Stats`] if a table's slowdowns are not strictly
    ///   monotone in the level (a degenerate calibration).
    pub fn from_tables(tables: &PricingTables) -> Result<Self> {
        let mut levels = BTreeMap::new();
        for baseline in tables.baselines() {
            let language = baseline.language;
            for generator in TrafficGenerator::ALL {
                let rows = tables.congestion(language, generator)?;
                let pairs: Vec<(f64, f64)> = rows
                    .iter()
                    .map(|r| (r.level as f64, r.shared_slowdown))
                    .collect();
                levels.insert((language, generator), LevelTable::new(pairs)?);
            }
        }
        if levels.is_empty() {
            return Err(CoreError::NoLevels);
        }
        Ok(CongestionIndex { levels })
    }

    /// Languages the index covers.
    pub fn languages(&self) -> impl Iterator<Item = Language> + '_ {
        let mut seen = Vec::new();
        self.levels.keys().filter_map(move |&(lang, _)| {
            if seen.contains(&lang) {
                None
            } else {
                seen.push(lang);
                Some(lang)
            }
        })
    }

    /// The congestion level a reading corresponds to under one
    /// generator's scenario (clamped to the calibrated level range).
    ///
    /// # Errors
    ///
    /// * [`CoreError::MissingLanguage`] for uncalibrated languages.
    /// * [`CoreError::Stats`] on degenerate table lookups.
    pub fn generator_level(
        &self,
        reading: &LitmusReading,
        generator: TrafficGenerator,
    ) -> Result<f64> {
        let table = self
            .levels
            .get(&(reading.language, generator))
            .ok_or(CoreError::MissingLanguage(reading.language))?;
        Ok(table.level_for(reading.shared_slowdown)?)
    }

    /// The blended congestion level, using a CT↔MB weight (typically
    /// [`DiscountEstimate::weight`] from the discount model).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CongestionIndex::generator_level`].
    pub fn level(&self, reading: &LitmusReading, weight: f64) -> Result<f64> {
        let ct = self.generator_level(reading, TrafficGenerator::CtGen)?;
        let mb = self.generator_level(reading, TrafficGenerator::MbGen)?;
        Ok(lerp(ct, mb, weight.clamp(0.0, 1.0)))
    }

    /// Convenience: the blended level using a full discount estimate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CongestionIndex::level`].
    pub fn level_for(&self, reading: &LitmusReading, estimate: &DiscountEstimate) -> Result<f64> {
        self.level(reading, estimate.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::TableBuilder;
    use litmus_sim::MachineSpec;

    fn index() -> CongestionIndex {
        let tables = TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14, 24])
            .languages([Language::Python])
            .reference_scale(0.04)
            .build()
            .unwrap();
        CongestionIndex::from_tables(&tables).unwrap()
    }

    fn reading(shared: f64) -> LitmusReading {
        LitmusReading {
            language: Language::Python,
            private_slowdown: 1.01,
            shared_slowdown: shared,
            total_slowdown: 1.0 + (shared - 1.0) * 0.6,
            l3_miss_rate: 40_000.0,
        }
    }

    #[test]
    fn heavier_readings_index_to_higher_levels() {
        let idx = index();
        let low = idx.level(&reading(1.2), 0.5).unwrap();
        let high = idx.level(&reading(1.9), 0.5).unwrap();
        assert!(high > low, "{high} vs {low}");
    }

    #[test]
    fn level_is_clamped_to_calibrated_range() {
        let idx = index();
        let below = idx.level(&reading(0.5), 0.5).unwrap();
        let above = idx.level(&reading(50.0), 0.5).unwrap();
        assert!(below >= 6.0 - 1e-9);
        assert!(above <= 24.0 + 1e-9);
    }

    #[test]
    fn generators_disagree_on_levels() {
        // The same startup slowdown requires far fewer MB-Gen threads
        // than CT-Gen threads, so the MB level estimate is lower.
        let idx = index();
        let ct = idx
            .generator_level(&reading(1.6), TrafficGenerator::CtGen)
            .unwrap();
        let mb = idx
            .generator_level(&reading(1.6), TrafficGenerator::MbGen)
            .unwrap();
        assert!(mb < ct, "MB {mb} vs CT {ct}");
    }

    #[test]
    fn weight_blends_between_generator_levels() {
        let idx = index();
        let r = reading(1.6);
        let ct = idx.generator_level(&r, TrafficGenerator::CtGen).unwrap();
        let mb = idx.generator_level(&r, TrafficGenerator::MbGen).unwrap();
        let mid = idx.level(&r, 0.5).unwrap();
        assert!((mid - (ct + mb) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn missing_language_is_reported() {
        let idx = index();
        let mut r = reading(1.3);
        r.language = Language::Go;
        assert!(matches!(
            idx.level(&r, 0.5),
            Err(CoreError::MissingLanguage(Language::Go))
        ));
        assert_eq!(idx.languages().count(), 1);
    }
}
