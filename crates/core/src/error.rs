use std::error::Error;
use std::fmt;

use litmus_sim::SimError;
use litmus_stats::StatsError;
use litmus_workloads::Language;

/// Errors produced by the Litmus pricing core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A statistics operation failed (regression, interpolation, …).
    Stats(StatsError),
    /// A simulation run failed (invalid placement, horizon, …).
    Sim(SimError),
    /// The tables do not contain data for the requested language.
    MissingLanguage(Language),
    /// Table construction was configured with no stress levels.
    NoLevels,
    /// A stress level exceeded what the machine can host (needs at least
    /// one core left for the measured function).
    LevelTooHigh {
        /// Requested generator thread count.
        level: usize,
        /// Cores on the machine.
        cores: usize,
    },
    /// A probe reading or measurement was degenerate (zero instructions,
    /// zero baseline, …).
    DegenerateMeasurement(&'static str),
    /// The workload's profile has no startup prefix, so no Litmus test
    /// can be performed on it.
    NoStartup,
    /// A persisted table file could not be parsed.
    Parse {
        /// 1-based line number of the offending input line (0 for
        /// whole-file problems).
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::MissingLanguage(lang) => {
                write!(f, "tables contain no data for language {lang}")
            }
            CoreError::NoLevels => write!(f, "table builder has no stress levels"),
            CoreError::LevelTooHigh { level, cores } => write!(
                f,
                "stress level {level} leaves no room on a {cores}-core machine"
            ),
            CoreError::DegenerateMeasurement(what) => {
                write!(f, "degenerate measurement: {what}")
            }
            CoreError::NoStartup => {
                write!(f, "workload profile has no startup prefix to probe")
            }
            CoreError::Parse { line, message } => {
                write!(f, "table file parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let e: CoreError = StatsError::EmptyInput.into();
        assert!(e.source().is_some());
        let e: CoreError = SimError::EmptyProfile.into();
        assert!(e.to_string().contains("simulation"));
    }

    #[test]
    fn messages_are_informative() {
        let e = CoreError::LevelTooHigh {
            level: 32,
            cores: 32,
        };
        assert!(e.to_string().contains("32"));
        assert!(CoreError::NoStartup.to_string().contains("startup"));
    }
}
