use litmus_stats::{lerp, log_weight, ExpFit, LinearFit};
use litmus_workloads::{Language, TrafficGenerator};

use crate::error::CoreError;
use crate::probe::LitmusReading;
use crate::tables::PricingTables;
use crate::Result;

/// The fitted regression bundle for one (language, generator) pair —
/// paper Fig. 9's regression lines plus the Fig. 10(a) L3-miss curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorModel {
    generator: TrafficGenerator,
    /// Startup `T_private` slowdown → reference `T_private` slowdown.
    private_fit: LinearFit,
    /// Startup `T_shared` slowdown → reference `T_shared` slowdown.
    shared_fit: LinearFit,
    /// Startup total slowdown → reference total slowdown (Fig. 9(c);
    /// used by the no-split ablation).
    total_fit: LinearFit,
    /// Startup `T_shared` slowdown → machine L3 miss rate (log-linear).
    l3_fit: ExpFit,
}

impl GeneratorModel {
    /// The generator this model captures.
    pub fn generator(&self) -> TrafficGenerator {
        self.generator
    }

    /// The Fig. 9(a) regression (private component).
    pub fn private_fit(&self) -> &LinearFit {
        &self.private_fit
    }

    /// The Fig. 9(b) regression (shared component).
    pub fn shared_fit(&self) -> &LinearFit {
        &self.shared_fit
    }

    /// The Fig. 9(c) regression (total time).
    pub fn total_fit(&self) -> &LinearFit {
        &self.total_fit
    }

    /// The Fig. 10(a) L3-miss curve.
    pub fn l3_fit(&self) -> &ExpFit {
        &self.l3_fit
    }
}

/// Per-language pair of generator models.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LanguageModel {
    language: Language,
    ct: GeneratorModel,
    mb: GeneratorModel,
}

/// The slowdown estimate a Litmus test produces once mapped through the
/// discount model: the presumed reference-function slowdown per pricing
/// component, and the CT↔MB interpolation weight that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscountEstimate {
    /// Presumed `T_private` slowdown of a typical function (≥ 1).
    pub private_slowdown: f64,
    /// Presumed `T_shared` slowdown of a typical function (≥ 1).
    pub shared_slowdown: f64,
    /// Presumed total slowdown of a typical function (≥ 1) — only used
    /// by the no-split ablation; Litmus proper prices the two
    /// components separately.
    pub total_slowdown: f64,
    /// Position between the CT-Gen (0) and MB-Gen (1) extremes from the
    /// L3-miss logarithmic interpolation (paper Fig. 10 step ③).
    pub weight: f64,
}

impl DiscountEstimate {
    /// Charging rate for the private component:
    /// `R = R_base·T_solo/T_congestion = 1/slowdown` (paper Eq. 3 with
    /// `R_base = 1`).
    pub fn r_private(&self) -> f64 {
        1.0 / self.private_slowdown
    }

    /// Charging rate for the shared component.
    pub fn r_shared(&self) -> f64 {
        1.0 / self.shared_slowdown
    }

    /// Single charging rate on total time (no-split ablation).
    pub fn r_total(&self) -> f64 {
        1.0 / self.total_slowdown
    }
}

/// Upper bound on presumed slowdowns: protects the pricing pipeline
/// from extrapolating a pathological discount off the end of the
/// regression lines.
const MAX_PRESUMED_SLOWDOWN: f64 = 20.0;

/// The complete Litmus discount model: per-language, per-generator
/// regressions fitted from [`PricingTables`] (paper §6 step 3).
///
/// # Examples
///
/// ```no_run
/// use litmus_core::{DiscountModel, TableBuilder};
/// use litmus_sim::MachineSpec;
///
/// # fn main() -> Result<(), litmus_core::CoreError> {
/// let tables = TableBuilder::new(MachineSpec::cascade_lake()).build()?;
/// let model = DiscountModel::fit(&tables)?;
/// # let _ = model;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiscountModel {
    languages: Vec<LanguageModel>,
}

impl DiscountModel {
    /// Fits the model from calibration tables.
    ///
    /// # Errors
    ///
    /// * [`CoreError::MissingLanguage`] if a calibrated language lacks a
    ///   generator table.
    /// * [`CoreError::Stats`] if a regression is degenerate (e.g. a
    ///   single-level ladder).
    pub fn fit(tables: &PricingTables) -> Result<Self> {
        let mut languages = Vec::new();
        for baseline in tables.baselines() {
            let language = baseline.language;
            let ct = Self::fit_generator(tables, language, TrafficGenerator::CtGen)?;
            let mb = Self::fit_generator(tables, language, TrafficGenerator::MbGen)?;
            languages.push(LanguageModel { language, ct, mb });
        }
        if languages.is_empty() {
            return Err(CoreError::NoLevels);
        }
        Ok(DiscountModel { languages })
    }

    fn fit_generator(
        tables: &PricingTables,
        language: Language,
        generator: TrafficGenerator,
    ) -> Result<GeneratorModel> {
        let congestion = tables.congestion(language, generator)?;
        let performance = tables.performance(generator)?;
        // 1-to-1 level mapping between the two tables (paper Fig. 5).
        let startup_priv: Vec<f64> = congestion.iter().map(|r| r.private_slowdown).collect();
        let startup_shared: Vec<f64> = congestion.iter().map(|r| r.shared_slowdown).collect();
        let startup_total: Vec<f64> = congestion.iter().map(|r| r.total_slowdown).collect();
        let ref_priv: Vec<f64> = performance.iter().map(|r| r.private_slowdown).collect();
        let ref_shared: Vec<f64> = performance.iter().map(|r| r.shared_slowdown).collect();
        let ref_total: Vec<f64> = performance.iter().map(|r| r.total_slowdown).collect();
        let l3: Vec<f64> = congestion.iter().map(|r| r.l3_miss_rate).collect();

        Ok(GeneratorModel {
            generator,
            private_fit: LinearFit::fit(&startup_priv, &ref_priv)?,
            shared_fit: LinearFit::fit(&startup_shared, &ref_shared)?,
            total_fit: LinearFit::fit(&startup_total, &ref_total)?,
            l3_fit: ExpFit::fit(&startup_shared, &l3)?,
        })
    }

    /// Languages this model covers.
    pub fn languages(&self) -> impl Iterator<Item = Language> + '_ {
        self.languages.iter().map(|m| m.language)
    }

    /// The fitted per-generator models for `language`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingLanguage`] for uncalibrated languages.
    pub fn generator_models(
        &self,
        language: Language,
    ) -> Result<(&GeneratorModel, &GeneratorModel)> {
        let m = self
            .languages
            .iter()
            .find(|m| m.language == language)
            .ok_or(CoreError::MissingLanguage(language))?;
        Ok((&m.ct, &m.mb))
    }

    /// Maps a Litmus reading to a slowdown estimate (paper Fig. 10):
    ///
    /// 1. evaluate both generators' L3-miss curves at the observed
    ///    startup slowdown to get the CT/MB bracket;
    /// 2. place the observed machine L3 rate between them in log space;
    /// 3. blend the two generators' regression predictions with that
    ///    weight, per pricing component.
    ///
    /// # Errors
    ///
    /// * [`CoreError::MissingLanguage`] for uncalibrated languages.
    /// * [`CoreError::Stats`] if the interpolation bracket is degenerate.
    pub fn estimate(&self, reading: &LitmusReading) -> Result<DiscountEstimate> {
        self.estimate_weighted(reading, None)
    }

    /// [`DiscountModel::estimate`] with an optional weight override —
    /// the single-generator ablation pins the weight to 0 (CT) or 1
    /// (MB) instead of interpolating on L3 misses.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DiscountModel::estimate`].
    pub fn estimate_weighted(
        &self,
        reading: &LitmusReading,
        weight_override: Option<f64>,
    ) -> Result<DiscountEstimate> {
        let (ct, mb) = self.generator_models(reading.language)?;

        let weight = match weight_override {
            Some(w) => w.clamp(0.0, 1.0),
            None => {
                let l3_ct = ct.l3_fit.predict(reading.shared_slowdown);
                let l3_mb = mb.l3_fit.predict(reading.shared_slowdown);
                // Pathological probes (absurd slowdowns) can push the
                // exponential curves to overflow, underflow or collide.
                // The online billing path must never fail on a weird
                // reading, so fall back to the midpoint there.
                let degenerate = !l3_ct.is_finite()
                    || !l3_mb.is_finite()
                    || l3_ct <= 0.0
                    || l3_mb <= 0.0
                    || !reading.l3_miss_rate.is_finite()
                    || reading.l3_miss_rate <= 0.0
                    || (l3_ct / l3_mb - 1.0).abs() < 1e-9;
                if degenerate {
                    0.5
                } else if l3_ct <= l3_mb {
                    log_weight(reading.l3_miss_rate, l3_ct, l3_mb)?
                } else {
                    1.0 - log_weight(reading.l3_miss_rate, l3_mb, l3_ct)?
                }
            }
        };

        let private = lerp(
            ct.private_fit.predict(reading.private_slowdown),
            mb.private_fit.predict(reading.private_slowdown),
            weight,
        );
        let shared = lerp(
            ct.shared_fit.predict(reading.shared_slowdown),
            mb.shared_fit.predict(reading.shared_slowdown),
            weight,
        );
        // The probe's own total slowdown indexes the total-time fits.
        let probe_total = reading.total_slowdown();
        let total = lerp(
            ct.total_fit.predict(probe_total),
            mb.total_fit.predict(probe_total),
            weight,
        );

        Ok(DiscountEstimate {
            private_slowdown: private.clamp(1.0, MAX_PRESUMED_SLOWDOWN),
            shared_slowdown: shared.clamp(1.0, MAX_PRESUMED_SLOWDOWN),
            total_slowdown: total.clamp(1.0, MAX_PRESUMED_SLOWDOWN),
            weight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::TableBuilder;
    use litmus_sim::MachineSpec;

    fn model() -> DiscountModel {
        let tables = TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14, 24])
            .languages([Language::Python])
            .reference_scale(0.04)
            .build()
            .unwrap();
        DiscountModel::fit(&tables).unwrap()
    }

    fn reading(private: f64, shared: f64, l3: f64) -> LitmusReading {
        LitmusReading {
            language: Language::Python,
            private_slowdown: private,
            shared_slowdown: shared,
            // Startup probes are memory-leaning, so the total tracks the
            // shared component more than the private one.
            total_slowdown: 0.4 * private + 0.6 * shared,
            l3_miss_rate: l3,
        }
    }

    #[test]
    fn fig9_regressions_have_high_r_squared() {
        let m = model();
        let (ct, mb) = m.generator_models(Language::Python).unwrap();
        for gm in [ct, mb] {
            assert!(
                gm.shared_fit().r_squared() > 0.8,
                "{:?} shared R² = {}",
                gm.generator(),
                gm.shared_fit().r_squared()
            );
            assert!(
                gm.l3_fit().r_squared() > 0.7,
                "{:?} l3 R² = {}",
                gm.generator(),
                gm.l3_fit().r_squared()
            );
        }
    }

    #[test]
    fn quiet_reading_gets_almost_no_discount() {
        let m = model();
        // A reading of ~1.0 slowdown with tiny L3 traffic.
        let est = m.estimate(&reading(1.0, 1.0, 100.0)).unwrap();
        assert!(est.private_slowdown < 1.05, "{est:?}");
        assert!(est.r_private() > 0.95);
    }

    #[test]
    fn heavier_readings_get_bigger_discounts() {
        let m = model();
        let light = m.estimate(&reading(1.005, 1.2, 5_000.0)).unwrap();
        let heavy = m.estimate(&reading(1.03, 1.9, 150_000.0)).unwrap();
        assert!(heavy.shared_slowdown > light.shared_slowdown);
        assert!(heavy.r_shared() < light.r_shared());
    }

    #[test]
    fn l3_misses_steer_the_ct_mb_weight() {
        let m = model();
        let ct_like = m.estimate(&reading(1.02, 1.5, 9_000.0)).unwrap();
        let mb_like = m.estimate(&reading(1.02, 1.5, 160_000.0)).unwrap();
        assert!(ct_like.weight < mb_like.weight);
        assert!((0.0..=1.0).contains(&ct_like.weight));
        assert!((0.0..=1.0).contains(&mb_like.weight));
    }

    #[test]
    fn estimates_are_clamped_to_sane_slowdowns() {
        let m = model();
        let est = m.estimate(&reading(50.0, 80.0, 1.0e9)).unwrap();
        assert!(est.private_slowdown <= MAX_PRESUMED_SLOWDOWN);
        assert!(est.shared_slowdown <= MAX_PRESUMED_SLOWDOWN);
        let est = m.estimate(&reading(0.1, 0.1, 1.0)).unwrap();
        assert!(est.private_slowdown >= 1.0);
        assert!(est.shared_slowdown >= 1.0);
    }

    #[test]
    fn unknown_language_is_rejected() {
        let m = model();
        let r = LitmusReading {
            language: Language::Go,
            private_slowdown: 1.0,
            shared_slowdown: 1.0,
            total_slowdown: 1.0,
            l3_miss_rate: 100.0,
        };
        assert!(matches!(
            m.estimate(&r),
            Err(CoreError::MissingLanguage(Language::Go))
        ));
    }
}
