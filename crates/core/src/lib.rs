//! Litmus pricing — the primary contribution of *Litmus: Fair Pricing
//! for Serverless Computing* (Pei, Wang, Shin — ASPLOS '24).
//!
//! Commercial serverless platforms charge `execution time × memory`,
//! which silently bills tenants *more* when the provider over-packs a
//! machine and their functions slow down. Litmus pricing compensates:
//! it probes the machine's congestion during every function's
//! language-runtime startup (a **Litmus test**) and discounts the bill
//! proportionally to the congestion-induced slowdown it presumes.
//!
//! The pipeline, mirroring paper §5–§6:
//!
//! 1. **Offline** ([`TableBuilder`]): the provider stresses the machine
//!    with the two traffic generators (CT-Gen, MB-Gen) at a ladder of
//!    levels, recording how each language's startup slows down
//!    (**congestion table**, [`PricingTables::congestion`]) and how a set
//!    of reference functions slows down (**performance table**,
//!    [`PricingTables::performance`]).
//! 2. **Model fitting** ([`DiscountModel`]): per generator, linear
//!    regressions map startup slowdown → reference slowdown (Fig. 9)
//!    and an exponential fit maps startup slowdown → machine L3 miss
//!    rate (Fig. 10(a)).
//! 3. **Online** ([`LitmusPricing`]): each invocation's startup yields a
//!    [`LitmusReading`] (its own `T_private`/`T_shared` slowdown plus
//!    the machine L3 miss rate). The L3 reading places the machine
//!    between the CT-Gen and MB-Gen extremes by logarithmic
//!    interpolation (Fig. 10); the blended regressions predict the
//!    slowdown a typical function suffers; charging rates
//!    `R = T_solo/T_congested` discount the two pricing components
//!    (Eq. 2–3).
//!
//! Baselines for evaluation: [`CommercialPricing`] (no discount),
//! [`IdealPricing`] (oracle: the function's true solo time) and
//! [`PoppaSampler`] (POPPA-style sampling with explicit overhead
//! accounting).
//!
//! # Examples
//!
//! Building tables and pricing one invocation end to end (small level
//! ladder for speed — production setups use more levels):
//!
//! ```
//! use litmus_core::{DiscountModel, LitmusPricing, TableBuilder};
//! use litmus_sim::MachineSpec;
//!
//! # fn main() -> Result<(), litmus_core::CoreError> {
//! let tables = TableBuilder::new(MachineSpec::cascade_lake())
//!     .levels([6, 14, 22])
//!     .reference_scale(0.05)
//!     .build()?;
//! let model = DiscountModel::fit(&tables)?;
//! let pricing = LitmusPricing::new(model);
//! # let _ = pricing;
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablation;
mod billing;
mod error;
mod index;
mod model;
pub mod persist;
mod poppa;
mod pricing;
mod probe;
mod tables;

pub use ablation::{AblationPricing, AblationScheme};
pub use billing::{BillingLedger, BillingSummary, Invoice};
pub use error::CoreError;
pub use index::CongestionIndex;
pub use model::{DiscountEstimate, DiscountModel, GeneratorModel};
pub use poppa::PoppaSampler;
pub use pricing::{CommercialPricing, IdealPricing, LitmusPricing, Method, Price};
pub use probe::{LitmusReading, StartupBaseline};
pub use tables::{CalibrationEnv, PricingTables, TableBuilder, TableRow};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
