use litmus_sim::PmuCounters;

use crate::pricing::Price;

/// Analytic model of POPPA-style sampling pricing (Breslow et al., the
/// prior work the paper positions against in §4).
///
/// POPPA measures a task's true solo progress rate by periodically
/// **stalling every co-running task** for a sampling window. That gives
/// near-ideal discounts, but the machine loses all co-runner throughput
/// during each window — the overhead that makes the approach impractical
/// for serverless platforms running hundreds of short functions.
///
/// Our reproduction quantifies exactly that trade-off: the price follows
/// the ideal oracle (sampling observes true solo behaviour; we model a
/// configurable residual error), and the overhead accounting exposes the
/// machine-level cost Litmus avoids.
///
/// # Examples
///
/// ```
/// use litmus_core::PoppaSampler;
///
/// let poppa = PoppaSampler::new(1.0, 100.0);
/// // 1 ms sampling window every 100 ms: 1% duty cycle.
/// assert!((poppa.duty_cycle() - 0.01).abs() < 1e-12);
/// // On a 27-task machine, every window stalls 26 co-runners.
/// let lost = poppa.overhead_core_ms(1000.0, 27);
/// assert!((lost - 260.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoppaSampler {
    window_ms: f64,
    interval_ms: f64,
    residual_error: f64,
}

impl PoppaSampler {
    /// Creates a sampler with the given window and interval (ms).
    ///
    /// # Panics
    ///
    /// Panics if `window_ms <= 0`, `interval_ms <= 0` or
    /// `window_ms > interval_ms` — a sampler that samples more than
    /// always is a configuration bug.
    pub fn new(window_ms: f64, interval_ms: f64) -> Self {
        assert!(window_ms > 0.0, "window must be positive");
        assert!(interval_ms > 0.0, "interval must be positive");
        assert!(window_ms <= interval_ms, "window cannot exceed interval");
        PoppaSampler {
            window_ms,
            interval_ms,
            residual_error: 0.01,
        }
    }

    /// Sets the residual pricing error (fraction; default 1%): sampling
    /// windows are finite, so the measured solo rate differs slightly
    /// from the true one.
    pub fn with_residual_error(mut self, error: f64) -> Self {
        self.residual_error = error;
        self
    }

    /// Sampling window length in ms.
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }

    /// Sampling interval in ms.
    pub fn interval_ms(&self) -> f64 {
        self.interval_ms
    }

    /// Fraction of wall-clock time spent inside sampling windows.
    pub fn duty_cycle(&self) -> f64 {
        self.window_ms / self.interval_ms
    }

    /// Number of sampling windows taken over an execution of
    /// `duration_ms`.
    pub fn samples_over(&self, duration_ms: f64) -> f64 {
        (duration_ms / self.interval_ms).floor()
    }

    /// Core-milliseconds of co-runner execution lost to sampling stalls
    /// over `duration_ms` on a machine running `co_running` tasks: each
    /// window stalls all `co_running − 1` co-runners.
    ///
    /// This is the §4 argument made quantitative: at serverless scale
    /// (hundreds of functions, each wanting frequent samples) the lost
    /// throughput dwarfs the billing correction.
    pub fn overhead_core_ms(&self, duration_ms: f64, co_running: usize) -> f64 {
        self.samples_over(duration_ms) * self.window_ms * co_running.saturating_sub(1) as f64
    }

    /// Prices an execution: the ideal price perturbed by the residual
    /// sampling error (over-charging side, conservative for the tenant
    /// comparison).
    pub fn price(&self, congested: &PmuCounters, solo: &PmuCounters) -> Price {
        let ideal = crate::pricing::IdealPricing::new().price(congested, solo);
        Price {
            private: ideal.private * (1.0 + self.residual_error),
            shared: ideal.shared * (1.0 + self.residual_error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(t_private: f64, t_shared: f64, instr: f64) -> PmuCounters {
        PmuCounters {
            cycles: t_private + t_shared,
            instructions: instr,
            stall_l2_cycles: t_shared,
            ..Default::default()
        }
    }

    #[test]
    fn duty_cycle_and_sample_count() {
        let p = PoppaSampler::new(2.0, 50.0);
        assert!((p.duty_cycle() - 0.04).abs() < 1e-12);
        assert_eq!(p.samples_over(500.0), 10.0);
        assert_eq!(p.window_ms(), 2.0);
        assert_eq!(p.interval_ms(), 50.0);
    }

    #[test]
    fn overhead_scales_with_corunners_and_duration() {
        let p = PoppaSampler::new(1.0, 100.0);
        let few = p.overhead_core_ms(1000.0, 27);
        let many = p.overhead_core_ms(1000.0, 161);
        assert!(many > few * 5.0);
        let longer = p.overhead_core_ms(10_000.0, 27);
        assert!((longer - few * 10.0).abs() < 1e-9);
    }

    #[test]
    fn solo_task_has_no_stall_overhead() {
        let p = PoppaSampler::new(1.0, 100.0);
        assert_eq!(p.overhead_core_ms(1000.0, 1), 0.0);
    }

    #[test]
    fn price_tracks_ideal_within_residual() {
        let p = PoppaSampler::new(1.0, 100.0).with_residual_error(0.02);
        let solo = counters(900.0, 100.0, 1000.0);
        let congested = counters(950.0, 250.0, 1000.0);
        let poppa = p.price(&congested, &solo);
        let ideal = crate::pricing::IdealPricing::new().price(&congested, &solo);
        let ratio = poppa.total() / ideal.total();
        assert!((ratio - 1.02).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window cannot exceed interval")]
    fn window_longer_than_interval_panics() {
        let _ = PoppaSampler::new(10.0, 5.0);
    }
}
