use litmus_sim::PmuCounters;

use crate::model::{DiscountEstimate, DiscountModel};
use crate::probe::LitmusReading;
use crate::Result;

/// A price split into the paper's two components (Eq. 1):
/// `P = P_private + P_shared`, in units of charged cycles (the
/// memory-capacity factor of commercial pricing is a constant multiplier
/// and cancels in every normalised comparison).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Price {
    /// Charge for private-resource occupancy.
    pub private: f64,
    /// Charge for shared-resource occupancy.
    pub shared: f64,
}

impl Price {
    /// Total charge.
    pub fn total(&self) -> f64 {
        self.private + self.shared
    }

    /// This price as a fraction of `baseline` (used to normalise against
    /// commercial pricing in every evaluation figure).
    pub fn normalized_to(&self, baseline: &Price) -> f64 {
        self.total() / baseline.total()
    }

    /// The discount this price represents relative to `baseline`
    /// (0.10 = 10% cheaper).
    pub fn discount_vs(&self, baseline: &Price) -> f64 {
        1.0 - self.normalized_to(baseline)
    }
}

/// Commercial pay-as-you-go pricing: charge the full occupied time, no
/// discount — what AWS Lambda/Azure Functions/Google Cloud Functions do
/// today (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommercialPricing;

impl CommercialPricing {
    /// Creates the scheme.
    pub fn new() -> Self {
        CommercialPricing
    }

    /// Prices an execution: both components at the base rate.
    pub fn price(&self, counters: &PmuCounters) -> Price {
        Price {
            private: counters.t_private_cycles(),
            shared: counters.t_shared_cycles(),
        }
    }
}

/// Oracle pricing: charge exactly what the execution would have cost on
/// an idle machine — the "ideal price that discounts tenants
/// proportional to slowdowns" every evaluation figure compares against.
///
/// Requires the solo per-instruction profile of the same function,
/// which only an oracle (or an offline profiling pass) can know.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdealPricing;

impl IdealPricing {
    /// Creates the scheme.
    pub fn new() -> Self {
        IdealPricing
    }

    /// Prices an execution given the function's solo counters: the work
    /// actually done (instructions) charged at solo per-instruction
    /// rates.
    pub fn price(&self, congested: &PmuCounters, solo: &PmuCounters) -> Price {
        let instr = congested.instructions;
        Price {
            private: instr * solo.t_private_per_instruction(),
            shared: instr * solo.t_shared_per_instruction(),
        }
    }
}

/// How Litmus pricing handles temporal CPU sharing (§7.2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Method {
    /// §7.1 / §7.2 "Method 2": use the tables as-is. Correct when the
    /// tables were built in an environment matching production (shared
    /// calibration for shared production).
    #[default]
    TableDriven,
    /// §7.2 "Method 1": tables were built in a dedicated environment, so
    /// divide the measured `T_private` by the known switching-overhead
    /// factor (Fig. 14; ≈1.025 at 10 functions/core) before estimating.
    CalibratedSharing {
        /// The Fig. 14 overhead factor to divide `T_private` by.
        factor: f64,
    },
}

/// The Litmus pricing engine (paper Eq. 2):
/// `P = R_private·T_private + R_shared·T_shared`, with the rates coming
/// from a [`DiscountModel`] estimate of the current congestion.
///
/// # Examples
///
/// ```no_run
/// use litmus_core::{DiscountModel, LitmusPricing, Method, TableBuilder};
/// use litmus_sim::MachineSpec;
///
/// # fn main() -> Result<(), litmus_core::CoreError> {
/// let spec = MachineSpec::cascade_lake();
/// let tables = TableBuilder::new(spec.clone()).build()?;
/// let model = DiscountModel::fit(&tables)?;
/// // Method 1 for a 10-functions-per-core production machine:
/// let pricing = LitmusPricing::new(model)
///     .with_method(Method::CalibratedSharing { factor: spec.switch_factor(10.0) });
/// # let _ = pricing;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LitmusPricing {
    model: DiscountModel,
    method: Method,
}

impl LitmusPricing {
    /// Creates the engine with [`Method::TableDriven`].
    pub fn new(model: DiscountModel) -> Self {
        LitmusPricing {
            model,
            method: Method::TableDriven,
        }
    }

    /// Selects the temporal-sharing method.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// The underlying discount model.
    pub fn model(&self) -> &DiscountModel {
        &self.model
    }

    /// The active method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Estimates the congestion-induced slowdown from a Litmus reading,
    /// applying the Method 1 calibration when configured.
    ///
    /// # Errors
    ///
    /// Propagates [`DiscountModel::estimate`] failures.
    pub fn estimate(&self, reading: &LitmusReading) -> Result<DiscountEstimate> {
        let calibrated = match self.method {
            Method::TableDriven => *reading,
            Method::CalibratedSharing { factor } => LitmusReading {
                private_slowdown: reading.private_slowdown / factor,
                ..*reading
            },
        };
        self.model.estimate(&calibrated)
    }

    /// Prices an execution from its Litmus reading and PMU counters
    /// (paper Eq. 2).
    ///
    /// # Errors
    ///
    /// Propagates [`DiscountModel::estimate`] failures.
    pub fn price(&self, reading: &LitmusReading, counters: &PmuCounters) -> Result<Price> {
        let estimate = self.estimate(reading)?;
        let t_private = match self.method {
            Method::TableDriven => counters.t_private_cycles(),
            // Method 1 also removes the sharing overhead from the billed
            // private time — the provider chose to oversubscribe, so the
            // refill cost is on them.
            Method::CalibratedSharing { factor } => counters.t_private_cycles() / factor,
        };
        Ok(Price {
            private: estimate.r_private() * t_private,
            shared: estimate.r_shared() * counters.t_shared_cycles(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::TableBuilder;
    use litmus_sim::MachineSpec;
    use litmus_workloads::Language;

    fn counters(t_private: f64, t_shared: f64) -> PmuCounters {
        PmuCounters {
            cycles: t_private + t_shared,
            instructions: 1_000_000.0,
            stall_l2_cycles: t_shared,
            ..Default::default()
        }
    }

    #[test]
    fn price_components_sum() {
        let p = Price {
            private: 3.0,
            shared: 1.0,
        };
        assert_eq!(p.total(), 4.0);
        let base = Price {
            private: 4.0,
            shared: 4.0,
        };
        assert_eq!(p.normalized_to(&base), 0.5);
        assert_eq!(p.discount_vs(&base), 0.5);
    }

    #[test]
    fn commercial_charges_everything() {
        let c = counters(700.0, 300.0);
        let p = CommercialPricing::new().price(&c);
        assert_eq!(p.total(), 1000.0);
        assert_eq!(p.private, 700.0);
        assert_eq!(p.shared, 300.0);
    }

    #[test]
    fn ideal_charges_solo_equivalent() {
        let solo = counters(650.0, 150.0);
        let congested = counters(700.0, 300.0);
        let p = IdealPricing::new().price(&congested, &solo);
        // Identical instruction counts, so the ideal price equals the
        // solo cost exactly.
        assert!((p.total() - solo.cycles).abs() < 1e-6);
        assert!(p.private < 700.0);
        assert!(p.shared < 300.0);
    }

    #[test]
    fn litmus_discounts_between_zero_and_commercial() {
        let tables = TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14, 24])
            .languages([Language::Python])
            .reference_scale(0.04)
            .build()
            .unwrap();
        let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
        let reading = LitmusReading {
            language: Language::Python,
            private_slowdown: 1.02,
            shared_slowdown: 1.6,
            total_slowdown: 1.4,
            l3_miss_rate: 60_000.0,
        };
        let c = counters(800_000.0, 200_000.0);
        let litmus = pricing.price(&reading, &c).unwrap();
        let commercial = CommercialPricing::new().price(&c);
        let norm = litmus.normalized_to(&commercial);
        assert!(norm < 1.0, "congested reading must yield a discount");
        assert!(norm > 0.5, "discount must stay plausible, got {norm}");
    }

    #[test]
    fn method1_divides_private_time() {
        let tables = TableBuilder::new(MachineSpec::cascade_lake())
            .levels([6, 14, 24])
            .languages([Language::Python])
            .reference_scale(0.04)
            .build()
            .unwrap();
        let model = DiscountModel::fit(&tables).unwrap();
        let reading = LitmusReading {
            language: Language::Python,
            private_slowdown: 1.03,
            shared_slowdown: 1.4,
            total_slowdown: 1.25,
            l3_miss_rate: 30_000.0,
        };
        let c = counters(1_000_000.0, 100_000.0);
        let plain = LitmusPricing::new(model.clone());
        let method1 =
            LitmusPricing::new(model).with_method(Method::CalibratedSharing { factor: 1.025 });
        // Method 1 removes the sharing overhead from the probe reading,
        // so the presumed private slowdown cannot exceed the raw one…
        let est_plain = plain.estimate(&reading).unwrap();
        let est_m1 = method1.estimate(&reading).unwrap();
        assert!(est_m1.private_slowdown <= est_plain.private_slowdown + 1e-12);
        // …and the billed private base is the calibrated (smaller) one.
        let p_plain = plain.price(&reading, &c).unwrap();
        let p_m1 = method1.price(&reading, &c).unwrap();
        let base_plain = p_plain.private / est_plain.r_private();
        let base_m1 = p_m1.private / est_m1.r_private();
        assert!(base_m1 < base_plain);
    }

    #[test]
    fn default_method_is_table_driven() {
        assert_eq!(Method::default(), Method::TableDriven);
    }
}
