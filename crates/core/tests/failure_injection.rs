//! Failure injection: degenerate calibrations, hostile readings and
//! mid-transition probes must degrade gracefully, never panic, and
//! never produce a price outside the [0, commercial] envelope.

use litmus_core::{
    CalibrationEnv, CommercialPricing, CoreError, DiscountModel, LitmusPricing, LitmusReading,
    PricingTables, StartupBaseline, TableBuilder, TableRow,
};
use litmus_sim::{MachineSpec, Placement, PmuCounters, Simulator};
use litmus_workloads::{suite, Language, TrafficGenerator};

fn counters() -> PmuCounters {
    PmuCounters {
        cycles: 1.0e8,
        instructions: 8.0e7,
        stall_l2_cycles: 2.5e7,
        ..Default::default()
    }
}

#[test]
fn single_level_ladder_cannot_fit_a_model() {
    // One table row → regression needs ≥ 2 points → a clean error, not
    // a bogus model.
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([14])
        .languages([Language::Python])
        .reference_scale(0.02)
        .build()
        .unwrap();
    assert!(matches!(
        DiscountModel::fit(&tables),
        Err(CoreError::Stats(_))
    ));
}

#[test]
fn empty_parts_are_rejected() {
    let baseline = StartupBaseline {
        language: Language::Python,
        t_private_pi: 0.8,
        t_shared_pi: 0.4,
        l3_miss_rate: 100.0,
        wall_ms: 19.0,
    };
    assert!(matches!(
        PricingTables::from_parts(
            MachineSpec::cascade_lake(),
            CalibrationEnv::Dedicated,
            vec![baseline],
            Vec::new(),
            Vec::new(),
        ),
        Err(CoreError::NoLevels)
    ));
}

#[test]
fn constant_tables_fail_fitting_not_pricing() {
    // A broken calibration that measured the same slowdown at every
    // level: the x-axis is constant, the regression must refuse.
    let baseline = StartupBaseline {
        language: Language::Python,
        t_private_pi: 0.8,
        t_shared_pi: 0.4,
        l3_miss_rate: 100.0,
        wall_ms: 19.0,
    };
    let row = |level| TableRow {
        level,
        private_slowdown: 1.02,
        shared_slowdown: 1.40,
        total_slowdown: 1.20,
        l3_miss_rate: 5000.0,
    };
    let mut congestion = Vec::new();
    let mut performance = Vec::new();
    for level in [4usize, 12, 20] {
        for gen in TrafficGenerator::ALL {
            congestion.push((Language::Python, gen, row(level)));
            performance.push((gen, row(level)));
        }
    }
    let tables = PricingTables::from_parts(
        MachineSpec::cascade_lake(),
        CalibrationEnv::Dedicated,
        vec![baseline],
        congestion,
        performance,
    )
    .unwrap();
    assert!(matches!(
        DiscountModel::fit(&tables),
        Err(CoreError::Stats(_))
    ));
}

#[test]
fn hostile_readings_stay_inside_the_price_envelope() {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14, 24])
        .languages([Language::Python])
        .reference_scale(0.02)
        .build()
        .unwrap();
    let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
    let commercial = CommercialPricing::new().price(&counters());

    for (private, shared, l3) in [
        (1.0e-6, 1.0e-6, 1.0),  // absurdly fast probe
        (1.0e6, 1.0e6, 1.0e15), // absurdly slow probe
        (1.0, 1.0, 1.0),        // quiet machine, tiny L3 traffic
        (0.5, 8.0, 1.0e3),      // inconsistent components
    ] {
        let reading = LitmusReading {
            language: Language::Python,
            private_slowdown: private,
            shared_slowdown: shared,
            total_slowdown: 0.5 * (private + shared),
            l3_miss_rate: l3,
        };
        let price = pricing
            .price(&reading, &counters())
            .expect("hostile readings must not error");
        assert!(price.total() > 0.0, "({private},{shared},{l3})");
        assert!(
            price.total() <= commercial.total() * (1.0 + 1e-9),
            "({private},{shared},{l3}): {} vs {}",
            price.total(),
            commercial.total()
        );
    }
}

#[test]
fn probe_during_congestion_transition_is_bounded() {
    // A function launches exactly as a heavy generator burst starts and
    // ends mid-startup: the probe sees a half-congested machine. The
    // resulting price must still land between ideal-quiet and
    // commercial.
    let spec = MachineSpec::cascade_lake();
    let tables = TableBuilder::new(spec.clone())
        .levels([6, 14, 24])
        .languages([Language::Python])
        .reference_scale(0.02)
        .build()
        .unwrap();
    let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
    let baseline = *tables.baseline(Language::Python).unwrap();

    let mut sim = Simulator::new(spec);
    // A burst that dies ~10 ms into the probe's ~19 ms startup.
    for core in 8..24 {
        sim.launch(
            TrafficGenerator::MbGen.thread_profile(10.0),
            Placement::pinned(core),
        )
        .unwrap();
    }
    let profile = suite::by_name("aes-py")
        .unwrap()
        .profile()
        .scaled(0.05)
        .unwrap();
    let id = sim.launch(profile, Placement::pinned(0)).unwrap();
    let report = sim.run_to_completion(id).unwrap();
    let reading = LitmusReading::from_startup(&baseline, report.startup.as_ref().unwrap()).unwrap();
    // The reading reflects *partial* congestion.
    assert!(reading.shared_slowdown > 1.0);

    let price = pricing.price(&reading, &report.counters).unwrap();
    let commercial = CommercialPricing::new().price(&report.counters);
    assert!(price.total() <= commercial.total());
    assert!(price.total() > commercial.total() * 0.5);
}

#[test]
fn persist_rejects_truncated_files() {
    let tables = TableBuilder::new(MachineSpec::cascade_lake())
        .levels([6, 14])
        .languages([Language::Python])
        .reference_scale(0.02)
        .build()
        .unwrap();
    let text = litmus_core::persist::encode(&tables);
    // Drop everything after the header: must fail with a parse error,
    // not produce an empty-but-usable table set.
    let truncated: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
    assert!(litmus_core::persist::decode(MachineSpec::cascade_lake(), &truncated).is_err());
}
