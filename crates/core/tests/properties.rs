//! Property-based tests on pricing invariants.

use litmus_core::{
    persist, CalibrationEnv, CommercialPricing, DiscountModel, LitmusPricing, LitmusReading,
    PricingTables, StartupBaseline, TableRow,
};
use litmus_sim::{MachineSpec, PmuCounters};
use litmus_workloads::{Language, TrafficGenerator};
use proptest::prelude::*;

/// Hand-built monotone tables (no simulation) so properties explore the
/// numeric space broadly and quickly.
fn synthetic_tables(priv_gain: f64, shared_gain: f64, l3_scale: f64) -> PricingTables {
    let baselines = vec![StartupBaseline {
        language: Language::Python,
        t_private_pi: 0.8,
        t_shared_pi: 0.4,
        l3_miss_rate: 400.0,
        wall_ms: 19.0,
    }];
    let mut congestion = Vec::new();
    let mut performance = Vec::new();
    for (i, level) in [4usize, 10, 16, 22, 28].into_iter().enumerate() {
        let t = (i + 1) as f64;
        for (gen, gen_mult, l3_mult) in [
            (TrafficGenerator::CtGen, 1.0, 1.0),
            (TrafficGenerator::MbGen, 1.6, 12.0),
        ] {
            let row = TableRow {
                level,
                private_slowdown: 1.0 + 0.01 * priv_gain * t * gen_mult,
                shared_slowdown: 1.0 + 0.12 * shared_gain * t * gen_mult,
                total_slowdown: 1.0 + 0.05 * shared_gain * t * gen_mult,
                l3_miss_rate: l3_scale * l3_mult * (1.0 + t).powi(2) * 100.0,
            };
            congestion.push((Language::Python, gen, row));
            performance.push((gen, row));
        }
    }
    PricingTables::from_parts(
        MachineSpec::cascade_lake(),
        CalibrationEnv::Dedicated,
        baselines,
        congestion,
        performance,
    )
    .expect("synthetic tables are well-formed")
}

fn reading(private: f64, shared: f64, l3: f64) -> LitmusReading {
    LitmusReading {
        language: Language::Python,
        private_slowdown: private,
        shared_slowdown: shared,
        total_slowdown: 0.5 * private + 0.5 * shared,
        l3_miss_rate: l3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Litmus never charges more than commercial and never pays the
    /// tenant, for any reading and any execution shape.
    #[test]
    fn litmus_price_is_bounded(
        private in 0.9f64..3.0,
        shared in 0.9f64..6.0,
        l3 in 100.0f64..1.0e7,
        t_priv in 1.0e5f64..1.0e9,
        t_shared in 0.0f64..5.0e8,
    ) {
        let tables = synthetic_tables(1.0, 1.0, 1.0);
        let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
        let counters = PmuCounters {
            cycles: t_priv + t_shared,
            instructions: (t_priv + t_shared) / 1.1,
            stall_l2_cycles: t_shared,
            ..Default::default()
        };
        let litmus = pricing.price(&reading(private, shared, l3), &counters).unwrap();
        let commercial = CommercialPricing::new().price(&counters);
        prop_assert!(litmus.total() > 0.0);
        prop_assert!(litmus.total() <= commercial.total() * (1.0 + 1e-9));
        prop_assert!(litmus.private >= 0.0);
        prop_assert!(litmus.shared >= 0.0);
    }

    /// A heavier probe reading never *raises* the price of the same
    /// execution (discounts are monotone in observed congestion).
    #[test]
    fn discounts_are_monotone_in_congestion(
        shared_lo in 1.0f64..2.5,
        bump in 1.01f64..2.0,
        l3 in 500.0f64..1.0e6,
    ) {
        let tables = synthetic_tables(1.0, 1.0, 1.0);
        let pricing = LitmusPricing::new(DiscountModel::fit(&tables).unwrap());
        let counters = PmuCounters {
            cycles: 1.0e8,
            instructions: 9.0e7,
            stall_l2_cycles: 2.0e7,
            ..Default::default()
        };
        let shared_hi = shared_lo * bump;
        let lo = pricing
            .price(&reading(1.02, shared_lo, l3), &counters)
            .unwrap();
        let hi = pricing
            .price(&reading(1.02, shared_hi, l3), &counters)
            .unwrap();
        prop_assert!(
            hi.shared <= lo.shared * (1.0 + 1e-9),
            "heavier congestion must not raise the shared charge"
        );
    }

    /// The interpolation weight is always in [0, 1] and the estimate
    /// always lands between the two generators' individual estimates.
    #[test]
    fn estimate_stays_in_generator_bracket(
        private in 0.9f64..3.0,
        shared in 0.9f64..5.0,
        l3 in 10.0f64..1.0e8,
    ) {
        let tables = synthetic_tables(1.0, 1.0, 1.0);
        let model = DiscountModel::fit(&tables).unwrap();
        let r = reading(private, shared, l3);
        let est = model.estimate(&r).unwrap();
        prop_assert!((0.0..=1.0).contains(&est.weight));
        let ct = model.estimate_weighted(&r, Some(0.0)).unwrap();
        let mb = model.estimate_weighted(&r, Some(1.0)).unwrap();
        let lo = ct.shared_slowdown.min(mb.shared_slowdown);
        let hi = ct.shared_slowdown.max(mb.shared_slowdown);
        prop_assert!(est.shared_slowdown >= lo - 1e-9);
        prop_assert!(est.shared_slowdown <= hi + 1e-9);
    }

    /// Persistence round-trips arbitrary synthetic tables exactly.
    #[test]
    fn persist_round_trips(
        priv_gain in 0.2f64..3.0,
        shared_gain in 0.2f64..3.0,
        l3_scale in 0.1f64..100.0,
    ) {
        let tables = synthetic_tables(priv_gain, shared_gain, l3_scale);
        let text = persist::encode(&tables);
        let restored =
            persist::decode(MachineSpec::cascade_lake(), &text).unwrap();
        prop_assert_eq!(tables, restored);
    }

    /// Estimates are clamped: never below 1 (no surcharge pretext) and
    /// never above the sanity ceiling.
    #[test]
    fn estimates_are_clamped(
        private in 0.0f64..100.0,
        shared in 0.0f64..100.0,
        l3 in 1.0f64..1.0e12,
    ) {
        let tables = synthetic_tables(1.0, 1.0, 1.0);
        let model = DiscountModel::fit(&tables).unwrap();
        let r = LitmusReading {
            language: Language::Python,
            private_slowdown: private.max(1e-3),
            shared_slowdown: shared.max(1e-3),
            total_slowdown: (0.5 * private + 0.5 * shared).max(1e-3),
            l3_miss_rate: l3,
        };
        let est = model.estimate(&r).unwrap();
        prop_assert!(est.private_slowdown >= 1.0);
        prop_assert!(est.shared_slowdown >= 1.0);
        prop_assert!(est.private_slowdown <= 20.0);
        prop_assert!(est.shared_slowdown <= 20.0);
        prop_assert!(est.r_private() <= 1.0 && est.r_private() > 0.0);
        prop_assert!(est.r_shared() <= 1.0 && est.r_shared() > 0.0);
    }
}
