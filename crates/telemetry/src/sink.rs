//! Streaming export sinks: incremental consumers of timeline records.
//!
//! A [`TelemetrySink`] receives timeline records as the retention
//! window flushes them out of the in-memory [`Timeline`](crate::Timeline)
//! and produces the final export when the replay closes. The contract
//! is that a streamed export is **byte-identical** to the materialized
//! [`Telemetry::to_jsonl`](crate::Telemetry::to_jsonl) of the same
//! replay — streaming changes *when* bytes are produced, never *which*
//! bytes.
//!
//! The wrinkle that makes this a real protocol rather than a `Vec`
//! push is spans: a span is recorded at its *open* position but its
//! `end_ms` is only known later, possibly long after the record left
//! the retention window (the `replay` span opens at t=0 and closes at
//! replay end). Sinks therefore accept late closes
//! ([`TelemetrySink::close_flushed_span`]) addressed by the record's
//! absolute timeline index, and defer serializing span records until
//! [`TelemetrySink::finish`].

use std::collections::BTreeMap;

use crate::event::{EventKind, TimelineEvent};

/// An incremental consumer of flushed timeline records.
///
/// ## Why this shape? (`--explain`)
///
/// * **`flush_event(index, event)`** — records arrive one at a time,
///   in append order, with their absolute timeline index (starting at
///   0). The index is the address late closes use; a sink must keep
///   whatever it needs to patch span ends addressed this way.
/// * **`close_flushed_span(index, end_ms)`** — a span whose record was
///   already flushed has closed. Sinks patch the span's `end_ms`
///   (closing an already-closed span updates its end, mirroring
///   [`Timeline::close_span`](crate::Timeline::close_span)).
/// * **`finish(meta_line, registry_jsonl)`** — the replay is over: the
///   caller hands the sink the meta line (which needs the final record
///   count) and the registry snapshot (name-sorted, known only at
///   close), and the sink composes the complete export.
///
/// Timestamps are sim time throughout; a sink implementation must not
/// consult wall clocks or unordered containers on the export path, or
/// the byte-identity contract breaks.
pub trait TelemetrySink: std::fmt::Debug + Send {
    /// Accepts the record at absolute timeline `index` (records arrive
    /// in append order, starting at index 0).
    fn flush_event(&mut self, index: u64, event: &TimelineEvent);

    /// Patches the `end_ms` of a span whose record was flushed at
    /// `index` before it closed.
    fn close_flushed_span(&mut self, index: u64, end_ms: u64);

    /// Composes the final export from everything flushed, the meta
    /// line, and the closing registry snapshot.
    fn finish(&mut self, meta_line: &str, registry_jsonl: &str) -> String;

    /// Clones the sink behind the object-safe interface (lets
    /// [`Telemetry`](crate::Telemetry) stay `Clone`).
    fn boxed_clone(&self) -> Box<dyn TelemetrySink>;
}

impl Clone for Box<dyn TelemetrySink> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// A [`TelemetrySink`] that accumulates the JSONL export incrementally.
///
/// Point records and already-closed spans are serialized the moment
/// they are flushed; span records are parked un-serialized (in a
/// `BTreeMap` keyed by absolute index — ordered iteration keeps the
/// export deterministic) so late closes can still patch their
/// `end_ms`, and are serialized at [`TelemetrySink::finish`] with
/// whatever end state they reached. The composed output is
/// byte-identical to the materialized export.
///
/// The sink holds the serialized output (which is inherently
/// proportional to the replay); what streaming bounds is the
/// *structured* in-memory timeline the driver and analysis code
/// consult — see `TelemetryConfig::timeline_retention`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamingJsonlSink {
    /// One slot per flushed record, in index order. Span slots hold a
    /// placeholder until `finish` serializes them from `spans`.
    lines: Vec<String>,
    /// Flushed span records, keyed by absolute index, with their
    /// latest end state.
    spans: BTreeMap<usize, TimelineEvent>,
}

impl StreamingJsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        StreamingJsonlSink::default()
    }

    /// Number of records flushed so far.
    pub fn flushed(&self) -> usize {
        self.lines.len()
    }
}

impl TelemetrySink for StreamingJsonlSink {
    fn flush_event(&mut self, index: u64, event: &TimelineEvent) {
        let index = index as usize;
        // Records arrive contiguously from 0; tolerate (rather than
        // panic on) a gap by padding, so a misbehaving caller degrades
        // to blank lines instead of aborting a replay.
        while self.lines.len() < index {
            self.lines.push(String::new());
        }
        match event.kind {
            EventKind::Point => self.lines.push(event.to_json()),
            EventKind::Span { .. } => {
                self.spans.insert(index, event.clone());
                self.lines.push(String::new());
            }
        }
    }

    fn close_flushed_span(&mut self, index: u64, end_ms: u64) {
        if let Some(event) = self.spans.get_mut(&(index as usize)) {
            if matches!(event.kind, EventKind::Span { .. }) {
                event.kind = EventKind::Span {
                    end_ms: Some(end_ms),
                };
            }
        }
    }

    fn finish(&mut self, meta_line: &str, registry_jsonl: &str) -> String {
        for (index, event) in &self.spans {
            if let Some(slot) = self.lines.get_mut(*index) {
                *slot = event.to_json();
            }
        }
        let mut out = String::with_capacity(
            meta_line.len()
                + registry_jsonl.len()
                + self.lines.iter().map(|l| l.len() + 1).sum::<usize>()
                + 1,
        );
        out.push_str(meta_line);
        out.push('\n');
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(registry_jsonl);
        out
    }

    fn boxed_clone(&self) -> Box<dyn TelemetrySink> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Timeline;

    #[test]
    fn streams_points_and_patches_late_span_closes() {
        let mut timeline = Timeline::new();
        let span = timeline.open_span(0, "replay", vec![("policy", "rr".into())]);
        timeline.record(10, "tick", vec![("n", 1u64.into())]);
        timeline.record(20, "tick", vec![("n", 2u64.into())]);

        let mut sink = StreamingJsonlSink::new();
        // Flush everything while the span is still open.
        while let Some((index, event)) = timeline.pop_front() {
            sink.flush_event(index as u64, &event);
        }
        timeline.close_span(span, 500);
        for (index, end_ms) in timeline.take_late_closes() {
            sink.close_flushed_span(index as u64, end_ms);
        }
        let out = sink.finish(r#"{"type":"meta","timeline_events":3}"#, "");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[1],
            r#"{"type":"span","at_ms":0,"end_ms":500,"name":"replay","policy":"rr"}"#
        );
        assert_eq!(
            lines[2],
            r#"{"type":"event","at_ms":10,"name":"tick","n":1}"#
        );
    }

    #[test]
    fn never_closed_spans_finish_with_a_null_end() {
        let mut sink = StreamingJsonlSink::new();
        sink.flush_event(
            0,
            &TimelineEvent {
                at_ms: 5,
                name: "machine",
                kind: EventKind::Span { end_ms: None },
                fields: vec![],
            },
        );
        let out = sink.finish(r#"{"type":"meta","timeline_events":1}"#, "");
        assert!(out.contains(r#""end_ms":null"#));
    }

    #[test]
    fn reclosing_a_flushed_span_updates_its_end() {
        let mut sink = StreamingJsonlSink::new();
        sink.flush_event(
            0,
            &TimelineEvent {
                at_ms: 0,
                name: "s",
                kind: EventKind::Span { end_ms: Some(10) },
                fields: vec![],
            },
        );
        sink.close_flushed_span(0, 99);
        let out = sink.finish("m", "");
        assert!(out.contains(r#""end_ms":99"#));
    }
}
