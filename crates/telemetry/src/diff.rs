//! Line-oriented divergence reporting for telemetry JSONL exports.
//!
//! The oracle contract ("the event engine is byte-identical to slice
//! stepping") is asserted over multi-megabyte JSONL strings; a failing
//! `assert_eq!` on those prints both haystacks and names no needle.
//! [`first_divergence`] finds the first differing line and
//! [`diff_report`] renders it with surrounding context, so a broken
//! oracle names the exact record that diverged.

use std::fmt;

/// The first point where two JSONL exports disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlDivergence {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// The line on the left side (`None` when the left export ended).
    pub left: Option<String>,
    /// The line on the right side (`None` when the right export ended).
    pub right: Option<String>,
}

impl fmt::Display for JsonlDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match (&self.left, &self.right) {
            (Some(l), Some(r)) => write!(f, "left {l:?} != right {r:?}"),
            (Some(l), None) => write!(f, "right ended; left continues with {l:?}"),
            (None, Some(r)) => write!(f, "left ended; right continues with {r:?}"),
            (None, None) => write!(f, "exports agree"),
        }
    }
}

/// Finds the first line where `left` and `right` differ, or `None`
/// when the exports are identical. A strictly-longer export diverges
/// at the first line the shorter one lacks.
pub fn first_divergence(left: &str, right: &str) -> Option<JsonlDivergence> {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (l.next(), r.next()) {
            (None, None) => return None,
            (a, b) if a == b => continue,
            (a, b) => {
                return Some(JsonlDivergence {
                    line,
                    left: a.map(str::to_owned),
                    right: b.map(str::to_owned),
                })
            }
        }
    }
}

/// Renders a human-readable report of the first divergence between two
/// exports — `context` matching lines before the split, then the two
/// sides — or `None` when they are byte-identical. `label_left` /
/// `label_right` name the sides (e.g. `"slice"` / `"event-driven"`).
pub fn diff_report(
    label_left: &str,
    left: &str,
    label_right: &str,
    right: &str,
    context: usize,
) -> Option<String> {
    use std::fmt::Write;
    let divergence = first_divergence(left, right)?;
    let mut out = String::new();
    let total_left = left.lines().count();
    let total_right = right.lines().count();
    let _ = writeln!(
        out,
        "exports diverge at line {} ({label_left}: {total_left} lines, {label_right}: {total_right} lines)",
        divergence.line
    );
    let first_shown = divergence.line.saturating_sub(context + 1);
    for (idx, shared) in left
        .lines()
        .enumerate()
        .skip(first_shown)
        .take(divergence.line - 1 - first_shown)
    {
        let _ = writeln!(out, "  {:>6}   {}", idx + 1, truncate(shared));
    }
    let render = |side: &Option<String>| match side {
        Some(line) => truncate(line),
        None => "<end of export>".to_owned(),
    };
    let _ = writeln!(
        out,
        "> {:>6} {label_left:>12}: {}",
        divergence.line,
        render(&divergence.left)
    );
    let _ = writeln!(
        out,
        "> {:>6} {label_right:>12}: {}",
        divergence.line,
        render(&divergence.right)
    );
    Some(out)
}

/// Panics with a pinpointed [`diff_report`] when the two exports are
/// not byte-identical — the drop-in replacement for a raw
/// `assert_eq!` over JSONL strings in the oracle-equality tests.
///
/// # Panics
///
/// When `left != right`.
pub fn assert_jsonl_eq(label_left: &str, left: &str, label_right: &str, right: &str) {
    if let Some(report) = diff_report(label_left, left, label_right, right, 3) {
        panic!("telemetry JSONL mismatch\n{report}"); // lint:allow(panic-in-lib): assertion helper for tests; panicking IS the reporting channel, `# Panics` documented
    }
}

fn truncate(line: &str) -> String {
    const MAX: usize = 160;
    if line.len() <= MAX {
        return line.to_owned();
    }
    let mut cut = MAX;
    while !line.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}… ({} bytes)", &line[..cut], line.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_exports_have_no_divergence() {
        let a = "{\"type\":\"meta\"}\n{\"type\":\"event\"}\n";
        assert_eq!(first_divergence(a, a), None);
        assert_eq!(diff_report("l", a, "r", a, 2), None);
    }

    #[test]
    fn first_differing_line_is_named() {
        let a = "meta\nevent one\nevent two\ncounter\n";
        let b = "meta\nevent one\nevent 2!\ncounter\n";
        let divergence = first_divergence(a, b).unwrap();
        assert_eq!(divergence.line, 3);
        assert_eq!(divergence.left.as_deref(), Some("event two"));
        assert_eq!(divergence.right.as_deref(), Some("event 2!"));
        let report = diff_report("slice", a, "event", b, 2).unwrap();
        assert!(report.contains("diverge at line 3"), "{report}");
        assert!(report.contains("event one"), "{report}");
        assert!(report.contains("event 2!"), "{report}");
    }

    #[test]
    fn length_mismatch_diverges_at_the_missing_line() {
        let a = "meta\nevent\n";
        let b = "meta\nevent\nextra\n";
        let divergence = first_divergence(a, b).unwrap();
        assert_eq!(divergence.line, 3);
        assert_eq!(divergence.left, None);
        assert_eq!(divergence.right.as_deref(), Some("extra"));
        assert!(divergence.to_string().contains("left ended"));
    }

    #[test]
    fn context_window_clamps_at_the_start() {
        let a = "one\ntwo\n";
        let b = "uno\ntwo\n";
        let report = diff_report("a", a, "b", b, 5).unwrap();
        assert!(report.contains("diverge at line 1"), "{report}");
    }

    #[test]
    fn long_lines_are_truncated_in_the_report() {
        let long = "x".repeat(500);
        let a = format!("{long}\n");
        let b = "y\n".to_owned();
        let report = diff_report("a", &a, "b", &b, 0).unwrap();
        assert!(report.contains("(500 bytes)"), "{report}");
    }

    #[test]
    #[should_panic(expected = "telemetry JSONL mismatch")]
    fn assert_jsonl_eq_panics_with_the_report() {
        assert_jsonl_eq("a", "same\nleft\n", "b", "same\nright\n");
    }
}
