//! Bounded ring-buffer flight recorder.
//!
//! Week-scale replays emit millions of timeline events; a live system
//! (and a crashing one) wants the *recent* history cheap and always
//! available. The [`FlightRecorder`] keeps the last `capacity` point
//! events in a ring: constant memory, O(1) per record, and the drop
//! count is tracked so a dump is honest about what it no longer holds.

use std::collections::VecDeque;

use crate::event::TimelineEvent;

/// A bounded ring of the most recent timeline events.
///
/// # Examples
///
/// ```
/// use litmus_telemetry::{FlightRecorder, TimelineEvent};
/// # use litmus_telemetry::EventKind;
///
/// let mut recorder = FlightRecorder::new(2);
/// for at_ms in [10, 20, 30] {
///     recorder.record(TimelineEvent {
///         at_ms,
///         name: "tick",
///         kind: EventKind::Point,
///         fields: vec![],
///     });
/// }
/// assert_eq!(recorder.seen(), 3);
/// assert_eq!(recorder.dropped(), 1);
/// let kept: Vec<u64> = recorder.dump().map(|e| e.at_ms).collect();
/// assert_eq!(kept, [20, 30]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<TimelineEvent>,
    seen: u64,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity),
            seen: 0,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event, evicting the oldest once full.
    pub fn record(&mut self, event: TimelineEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.seen += 1;
    }

    /// Events currently held, oldest first.
    pub fn dump(&self) -> impl Iterator<Item = &TimelineEvent> {
        self.events.iter()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events ever recorded (held + evicted).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.seen - self.events.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn tick(at_ms: u64) -> TimelineEvent {
        TimelineEvent {
            at_ms,
            name: "tick",
            kind: EventKind::Point,
            fields: vec![],
        }
    }

    #[test]
    fn ring_keeps_the_newest_events_in_order() {
        let mut recorder = FlightRecorder::new(3);
        for at in 0..10 {
            recorder.record(tick(at));
        }
        let kept: Vec<u64> = recorder.dump().map(|e| e.at_ms).collect();
        assert_eq!(kept, [7, 8, 9]);
        assert_eq!(recorder.seen(), 10);
        assert_eq!(recorder.dropped(), 7);
        assert_eq!(recorder.len(), 3);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut recorder = FlightRecorder::new(0);
        assert_eq!(recorder.capacity(), 1);
        recorder.record(tick(1));
        recorder.record(tick(2));
        assert_eq!(recorder.dump().map(|e| e.at_ms).collect::<Vec<_>>(), [2]);
    }
}
