//! Log-bucketed histograms with a guaranteed relative quantile error.
//!
//! The design is the classic log-spaced sketch (as in DDSketch): a
//! value `v > 0` lands in bucket `ceil(log_γ v)` where
//! `γ = (1 + α) / (1 − α)` for a target relative error `α`, so the
//! bucket bounds `(γ^(i−1), γ^i]` pin the reported bucket midpoint
//! `2γ^i / (γ + 1)` within `α · v` of every value in the bucket.
//! Quantiles are answered by rank-walking the buckets, which means any
//! reported quantile is within relative error `α` of the *exact*
//! nearest-rank quantile — a bound the crate's tests check against
//! adversarial distributions, not just on average.
//!
//! Everything is deterministic: buckets live in a [`BTreeMap`] keyed by
//! integer index, observation order cannot change the stored state, and
//! merging shards is exact (bucket counts add).

use std::collections::BTreeMap;

use crate::json::JsonObject;

/// Default target relative error for registry histograms: 1%.
pub const DEFAULT_RELATIVE_ERROR: f64 = 0.01;

/// A log-bucketed histogram of non-negative samples with bounded
/// relative quantile error.
///
/// Zero (and any negative or non-finite input, which clamps/drops —
/// see [`LogHistogram::observe`]) is tracked in a dedicated exact
/// bucket, so sparse series with real zero gaps don't distort the
/// positive buckets.
///
/// # Examples
///
/// ```
/// use litmus_telemetry::LogHistogram;
///
/// let mut hist = LogHistogram::new(0.01);
/// for v in [1.0, 2.0, 4.0, 8.0, 1000.0] {
///     hist.observe(v);
/// }
/// let p50 = hist.quantile(0.5);
/// assert!((p50 - 4.0).abs() <= 0.01 * 4.0);
/// assert_eq!(hist.count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    relative_error: f64,
    gamma: f64,
    inv_log_gamma: f64,
    zero_count: u64,
    dropped: u64,
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogHistogram {
    /// A histogram guaranteeing relative quantile error at most
    /// `relative_error` (clamped into `[1e-4, 0.5]`).
    pub fn new(relative_error: f64) -> Self {
        let alpha = if relative_error.is_finite() {
            relative_error.clamp(1e-4, 0.5)
        } else {
            DEFAULT_RELATIVE_ERROR
        };
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        LogHistogram {
            relative_error: alpha,
            gamma,
            inv_log_gamma: 1.0 / gamma.ln(),
            zero_count: 0,
            dropped: 0,
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The guaranteed relative quantile error bound.
    pub fn relative_error(&self) -> f64 {
        self.relative_error
    }

    fn index(&self, v: f64) -> i32 {
        (v.ln() * self.inv_log_gamma).ceil() as i32
    }

    fn bucket_value(&self, index: i32) -> f64 {
        2.0 * self.gamma.powi(index) / (self.gamma + 1.0)
    }

    /// Records one sample. Negative values clamp to the zero bucket
    /// (telemetry series here — latencies, counts, slowdowns — are
    /// non-negative by construction, so a negative input is a
    /// zero-rate observation, not a distinct magnitude); non-finite
    /// values are dropped and counted in [`LogHistogram::dropped`].
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            self.dropped += 1;
            return;
        }
        let v = v.max(0.0);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0.0 {
            self.zero_count += 1;
        } else {
            *self.buckets.entry(self.index(v)).or_insert(0) += 1;
        }
    }

    /// Records `n` identical samples in one update — the bulk form the
    /// cluster driver's gap skipping uses so a million-slice idle
    /// stretch costs one histogram touch. Exactly equivalent to `n`
    /// calls of [`LogHistogram::observe`] for `v ≤ 0` and non-finite
    /// `v` (adding `0.0` to the sum `n` times equals adding it once);
    /// for positive `v` the counts are exact and the sum accumulates
    /// as one fused `v · n` add rather than `n` separate adds.
    pub fn observe_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        if !v.is_finite() {
            self.dropped += n;
            return;
        }
        let v = v.max(0.0);
        self.count += n;
        self.sum += v * n as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0.0 {
            self.zero_count += n;
        } else {
            *self.buckets.entry(self.index(v)).or_insert(0) += n;
        }
    }

    /// Samples recorded (zero bucket included, dropped excluded).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (after the negative clamp).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Samples recorded exactly at zero (or clamped there).
    pub fn zero_count(&self) -> u64 {
        self.zero_count
    }

    /// Non-finite samples that were dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Quantile `q ∈ [0, 1]` (nearest rank), within relative error
    /// [`LogHistogram::relative_error`] of the exact quantile of the
    /// recorded samples; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        if rank < self.zero_count {
            return 0.0;
        }
        let mut seen = self.zero_count;
        for (&index, &bucket_count) in &self.buckets {
            seen += bucket_count;
            if rank < seen {
                return self.bucket_value(index);
            }
        }
        // Unreachable for coherent counts; fall back to the max.
        self.max()
    }

    /// Several quantiles in `qs` order from one bucket walk (`qs`
    /// need not be sorted; each is answered independently).
    pub fn quantiles(&self, qs: &[f64]) -> Vec<f64> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }

    /// Folds another histogram into this one. Merging is exact when
    /// both sides share the same relative error (bucket counts add);
    /// merging mismatched resolutions re-observes nothing and is
    /// rejected with `false`.
    #[must_use = "a false return means the histograms were not merged"]
    pub fn merge(&mut self, other: &LogHistogram) -> bool {
        if (self.relative_error - other.relative_error).abs() > f64::EPSILON {
            return false;
        }
        for (&index, &bucket_count) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += bucket_count;
        }
        self.zero_count += other.zero_count;
        self.dropped += other.dropped;
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        true
    }

    /// Occupied positive buckets in ascending index order, as
    /// `(index, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets.iter().map(|(&i, &c)| (i, c))
    }

    /// One JSONL line describing the histogram: scalar stats, the
    /// standard quantiles, and the raw `[index, count]` bucket pairs
    /// so downstream tooling can re-derive any quantile.
    pub fn to_json(&self, name: &str) -> String {
        let mut obj = JsonObject::new();
        obj.str_field("type", "histogram");
        obj.str_field("name", name);
        obj.f64_field("relative_error", self.relative_error);
        obj.u64_field("count", self.count);
        obj.u64_field("zero", self.zero_count);
        obj.u64_field("dropped", self.dropped);
        obj.f64_field("sum", self.sum);
        obj.f64_field("min", self.min());
        obj.f64_field("max", self.max());
        for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
            obj.f64_field(label, self.quantile(q));
        }
        let buckets = self
            .buckets
            .iter()
            .map(|(&i, &c)| format!("[{i},{c}]"))
            .collect::<Vec<_>>()
            .join(",");
        obj.raw_field("buckets", &format!("[{buckets}]"));
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let hist = LogHistogram::new(0.01);
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.quantile(0.5), 0.0);
        assert_eq!(hist.min(), 0.0);
        assert_eq!(hist.max(), 0.0);
        assert_eq!(hist.mean(), 0.0);
    }

    #[test]
    fn zero_and_negative_land_in_the_zero_bucket() {
        let mut hist = LogHistogram::new(0.01);
        hist.observe(0.0);
        hist.observe(-3.0);
        hist.observe(5.0);
        assert_eq!(hist.zero_count(), 2);
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.quantile(0.0), 0.0);
        assert!((hist.quantile(1.0) - 5.0).abs() <= 0.01 * 5.0);
    }

    #[test]
    fn non_finite_samples_are_dropped_not_recorded() {
        let mut hist = LogHistogram::new(0.01);
        hist.observe(f64::NAN);
        hist.observe(f64::INFINITY);
        hist.observe(2.0);
        assert_eq!(hist.dropped(), 2);
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn merge_of_shards_equals_single_histogram() {
        let values: Vec<f64> = (1..200).map(|i| (i as f64) * 0.37).collect();
        let mut whole = LogHistogram::new(0.01);
        let mut left = LogHistogram::new(0.01);
        let mut right = LogHistogram::new(0.01);
        for (i, &v) in values.iter().enumerate() {
            whole.observe(v);
            if i % 2 == 0 {
                left.observe(v);
            } else {
                right.observe(v);
            }
        }
        assert!(left.merge(&right));
        assert_eq!(left, whole);
    }

    #[test]
    fn merge_rejects_mismatched_resolution() {
        let mut a = LogHistogram::new(0.01);
        let b = LogHistogram::new(0.05);
        assert!(!a.merge(&b));
    }

    #[test]
    fn json_line_is_wellformed_and_deterministic() {
        let mut hist = LogHistogram::new(0.02);
        for v in [0.0, 1.0, 10.0, 100.0] {
            hist.observe(v);
        }
        let a = hist.to_json("queue_wait_ms");
        let b = hist.to_json("queue_wait_ms");
        assert_eq!(a, b);
        assert!(a.starts_with(r#"{"type":"histogram","name":"queue_wait_ms""#));
        assert!(a.contains(r#""count":4"#));
        assert!(a.contains(r#""zero":1"#));
    }
}
