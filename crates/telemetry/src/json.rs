//! Minimal deterministic JSON writing.
//!
//! The telemetry exporter (and the study/bench tooling built on it)
//! needs machine-readable output without an external serializer, and —
//! more importantly — needs the bytes to be *reproducible*: the same
//! recorded data must serialize to the same string on every run, so
//! timelines can be compared byte-for-byte across worker-pool thread
//! counts and replay modes. Everything here is append-only string
//! building: keys are written in the order the caller emits them,
//! floats through Rust's shortest-round-trip [`std::fmt::Display`]
//! (which is deterministic), and non-finite floats as `null` (JSON has
//! no NaN/∞).

use std::fmt::Write;

/// Appends `s` as a JSON string literal (quotes included) to `out`,
/// escaping quotes, backslashes and control characters.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number to `out` — `null` when non-finite.
/// Rust's `f64` `Display` is shortest-round-trip and deterministic, and
/// never produces exponent notation, so the output is valid JSON.
pub fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// An in-progress JSON object: fields are emitted in call order, so
/// serialization is exactly as deterministic as the call sequence.
///
/// # Examples
///
/// ```
/// use litmus_telemetry::json::JsonObject;
///
/// let mut obj = JsonObject::new();
/// obj.str_field("name", "steal");
/// obj.u64_field("moved", 3);
/// obj.f64_field("signal", 1.25);
/// assert_eq!(obj.finish(), r#"{"name":"steal","moved":3,"signal":1.25}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        write_escaped(key, &mut self.buf);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.key(key);
        write_escaped(value, &mut self.buf);
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) {
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a signed integer field.
    pub fn i64_field(&mut self, key: &str, value: i64) {
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64_field(&mut self, key: &str, value: f64) {
        self.key(key);
        write_f64(value, &mut self.buf);
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Adds a pre-serialized JSON value verbatim — for nesting objects
    /// and arrays built elsewhere.
    pub fn raw_field(&mut self, key: &str, raw: &str) {
        self.key(key);
        self.buf.push_str(raw);
    }

    /// Closes the object and returns it as a string.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Joins pre-serialized JSON values into an array literal.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let joined: Vec<String> = items.into_iter().collect();
    format!("[{}]", joined.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_characters() {
        let mut out = String::new();
        write_escaped("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut obj = JsonObject::new();
        obj.f64_field("nan", f64::NAN);
        obj.f64_field("inf", f64::INFINITY);
        obj.f64_field("ok", 0.5);
        assert_eq!(obj.finish(), r#"{"nan":null,"inf":null,"ok":0.5}"#);
    }

    #[test]
    fn arrays_and_nested_raw_fields_compose() {
        let inner = {
            let mut obj = JsonObject::new();
            obj.u64_field("x", 1);
            obj.finish()
        };
        let mut outer = JsonObject::new();
        outer.raw_field("items", &array([inner]));
        outer.bool_field("done", true);
        assert_eq!(outer.finish(), r#"{"items":[{"x":1}],"done":true}"#);
    }
}
