//! # litmus-telemetry
//!
//! Deterministic observability for the Litmus cluster stack: a metric
//! registry (counters, gauges, log-bucketed histograms with a proven
//! relative quantile error bound), a sim-time-keyed structured event
//! timeline with spans, and a bounded flight recorder — plus an
//! opt-in wall-clock stage profiler kept strictly outside the
//! deterministic surface.
//!
//! ## Determinism contract
//!
//! Everything exported by [`Telemetry::to_jsonl`] is a pure function
//! of the replay: sim-time timestamps (ms since replay start, never
//! wall clock), name-sorted registry export, append-ordered timeline.
//! The same trace, configuration and seed produce byte-identical
//! JSONL regardless of worker-pool thread count, host, or whether the
//! trace was streamed or materialized. The one wall-clock component —
//! [`StageProfile`] — is excluded from both the export and
//! [`Telemetry`] equality, so enabling profiling cannot perturb a
//! determinism check.
//!
//! ## Example
//!
//! ```
//! use litmus_telemetry::{Telemetry, TelemetryConfig};
//!
//! let mut telemetry = Telemetry::new(TelemetryConfig::default());
//! telemetry.set_meta("policy", "litmus-aware");
//! telemetry.inc("arrivals.admitted", 42);
//! telemetry.observe("queue_wait_ms", 12.5);
//! telemetry.event(1_000, "steal", vec![("from", 0u32.into()), ("to", 3u32.into())]);
//! let span = telemetry.open_span(0, "replay", vec![]);
//! telemetry.close_span(span, 5_000);
//!
//! let jsonl = telemetry.to_jsonl();
//! assert!(jsonl.lines().next().unwrap().starts_with(r#"{"type":"meta""#));
//! assert!(telemetry.summary().contains("arrivals.admitted"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod json;

mod event;
mod hist;
mod metrics;
mod profile;
mod recorder;
mod sink;
mod trace;

pub use diff::{assert_jsonl_eq, diff_report, first_divergence, JsonlDivergence};
pub use event::{EventKind, FieldValue, Fields, SpanId, Timeline, TimelineEvent};
pub use hist::{LogHistogram, DEFAULT_RELATIVE_ERROR};
pub use metrics::{Gauge, Registry};
pub use profile::{StageProfile, StageStat};
pub use recorder::FlightRecorder;
pub use sink::{StreamingJsonlSink, TelemetrySink};
pub use trace::{TraceId, TraceSampler};

use json::JsonObject;

/// Configuration for a [`Telemetry`] instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Flight-recorder ring capacity (most recent events kept).
    pub flight_capacity: usize,
    /// Record wall-clock stage timings. Off by default; timings are
    /// excluded from the deterministic export either way.
    pub profiling: bool,
    /// Relative quantile error bound for registry histograms.
    pub histogram_relative_error: f64,
    /// Fraction of admitted invocations whose `trace.*` span chain is
    /// emitted onto the timeline, decided per-invocation by the seeded
    /// deterministic [`TraceSampler`]. 0 (the default) disables
    /// per-invocation tracing entirely; tests pin 1.0.
    pub trace_sample_rate: f64,
    /// Seed of the deterministic trace sampler.
    pub trace_seed: u64,
    /// Retention window for the in-memory timeline. `None` (the
    /// default) materializes every record; `Some(keep)` attaches a
    /// [`StreamingJsonlSink`] and flushes records into it whenever
    /// more than `keep` are resident, so peak structured timeline
    /// memory is O(`keep`) instead of O(replay length). The streamed
    /// export ([`Telemetry::take_streamed`]) stays byte-identical to
    /// the materialized [`Telemetry::to_jsonl`]. Retention does not
    /// affect the registry, the flight recorder, or replay behavior.
    pub timeline_retention: Option<usize>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            flight_capacity: 1024,
            profiling: false,
            histogram_relative_error: DEFAULT_RELATIVE_ERROR,
            trace_sample_rate: 0.0,
            trace_seed: 0x7ACE,
            timeline_retention: None,
        }
    }
}

impl TelemetryConfig {
    /// Sets the flight-recorder capacity.
    pub fn flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity;
        self
    }

    /// Enables or disables wall-clock stage profiling.
    pub fn profiling(mut self, enabled: bool) -> Self {
        self.profiling = enabled;
        self
    }

    /// Sets the histogram relative-error bound.
    pub fn histogram_relative_error(mut self, alpha: f64) -> Self {
        self.histogram_relative_error = alpha;
        self
    }

    /// Enables per-invocation span-chain tracing: keep `rate` of
    /// traces (clamped to `[0, 1]`), sampled deterministically with
    /// `seed`.
    pub fn trace_sampling(mut self, seed: u64, rate: f64) -> Self {
        self.trace_seed = seed;
        self.trace_sample_rate = rate;
        self
    }

    /// The deterministic trace sampler this configuration describes.
    pub fn trace_sampler(&self) -> TraceSampler {
        TraceSampler::new(self.trace_seed, self.trace_sample_rate)
    }

    /// Caps the in-memory timeline at `keep` resident records,
    /// streaming the rest through a [`StreamingJsonlSink`] (see
    /// [`TelemetryConfig::timeline_retention`]).
    pub fn timeline_retention(mut self, keep: usize) -> Self {
        self.timeline_retention = Some(keep);
        self
    }
}

/// The combined telemetry state of one replay: registry + timeline +
/// flight recorder + (non-deterministic, excluded from equality and
/// export) stage profile.
///
/// Point events recorded through [`Telemetry::event`] land on both the
/// full timeline and the flight recorder; spans live on the timeline
/// only (the recorder is a crash log of recent moments, and a span is
/// not a moment until it closes).
#[derive(Debug, Clone)]
pub struct Telemetry {
    config: TelemetryConfig,
    registry: Registry,
    timeline: Timeline,
    recorder: FlightRecorder,
    profile: StageProfile,
    meta: Vec<(&'static str, String)>,
    sink: Option<Box<dyn TelemetrySink>>,
}

impl Telemetry {
    /// Fresh telemetry for one replay. A retention window in `config`
    /// attaches a [`StreamingJsonlSink`]; swap it with
    /// [`Telemetry::attach_sink`] before recording anything.
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry {
            config,
            registry: Registry::new(config.histogram_relative_error),
            timeline: Timeline::new(),
            recorder: FlightRecorder::new(config.flight_capacity),
            profile: StageProfile::new(config.profiling),
            meta: Vec::new(),
            sink: config
                .timeline_retention
                .map(|_| Box::new(StreamingJsonlSink::new()) as Box<dyn TelemetrySink>),
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Records a replay-level annotation (policy name, trace id, …)
    /// emitted on the JSONL meta line. Re-setting a key overwrites it.
    /// Do **not** put anything host- or thread-count-dependent here:
    /// the meta line is part of the deterministic byte stream.
    pub fn set_meta(&mut self, key: &'static str, value: impl Into<String>) {
        let value = value.into();
        match self.meta.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => self.meta.push((key, value)),
        }
    }

    /// Adds `by` to counter `name`.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        self.registry.inc(name, by);
    }

    /// Sets gauge `name`.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.registry.gauge_set(name, value);
    }

    /// Applies `n` consecutive identical sets to gauge `name` in one
    /// update (see [`Registry::gauge_set_n`]).
    pub fn gauge_set_n(&mut self, name: &'static str, value: f64, n: u64) {
        self.registry.gauge_set_n(name, value, n);
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.registry.observe(name, value);
    }

    /// Records `n` identical samples into histogram `name` in one
    /// update (see [`Registry::observe_n`]).
    pub fn observe_n(&mut self, name: &'static str, value: f64, n: u64) {
        self.registry.observe_n(name, value, n);
    }

    /// Appends a point event (timeline + flight recorder). `at_ms` is
    /// sim time, ms since replay start.
    pub fn event(&mut self, at_ms: u64, name: &'static str, fields: Fields) {
        self.recorder.record(TimelineEvent {
            at_ms,
            name,
            kind: EventKind::Point,
            fields: fields.clone(),
        });
        self.timeline.record(at_ms, name, fields);
        self.maybe_flush();
    }

    /// Opens a span on the timeline at sim time `at_ms`.
    pub fn open_span(&mut self, at_ms: u64, name: &'static str, fields: Fields) -> SpanId {
        let id = self.timeline.open_span(at_ms, name, fields);
        self.maybe_flush();
        id
    }

    /// Closes a span opened with [`Telemetry::open_span`].
    pub fn close_span(&mut self, id: SpanId, end_ms: u64) {
        self.timeline.close_span(id, end_ms);
        self.maybe_flush();
    }

    /// Appends an already-closed span to the timeline.
    pub fn span(&mut self, name: &'static str, start_ms: u64, end_ms: u64, fields: Fields) {
        self.timeline.span(name, start_ms, end_ms, fields);
        self.maybe_flush();
    }

    /// Replaces the streaming sink (before anything is recorded).
    /// Meaningful only together with a retention window, which is what
    /// triggers flushing.
    pub fn attach_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.sink = Some(sink);
    }

    /// Whether a streaming sink is attached.
    pub fn sink_attached(&self) -> bool {
        self.sink.is_some()
    }

    /// Flushes records past the retention window (and any late span
    /// closes) into the attached sink.
    fn maybe_flush(&mut self) {
        let (Some(keep), Some(sink)) = (self.config.timeline_retention, self.sink.as_mut()) else {
            return;
        };
        for (index, end_ms) in self.timeline.take_late_closes() {
            sink.close_flushed_span(index as u64, end_ms);
        }
        while self.timeline.events().len() > keep {
            match self.timeline.pop_front() {
                Some((index, event)) => sink.flush_event(index as u64, &event),
                None => break,
            }
        }
    }

    /// Detaches the sink and returns the complete streamed export:
    /// every remaining record is flushed, late closes are patched, and
    /// the sink composes meta line + timeline + registry snapshot.
    /// Byte-identical to what [`Telemetry::to_jsonl`] of an
    /// un-retained replay would have produced. `None` when no sink is
    /// attached.
    pub fn take_streamed(&mut self) -> Option<String> {
        let mut sink = self.sink.take()?;
        for (index, end_ms) in self.timeline.take_late_closes() {
            sink.close_flushed_span(index as u64, end_ms);
        }
        while let Some((index, event)) = self.timeline.pop_front() {
            sink.flush_event(index as u64, &event);
        }
        let mut registry = String::new();
        self.registry.write_jsonl(&mut registry);
        Some(sink.finish(&self.meta_line(), &registry))
    }

    /// The JSONL meta line (first line of every export).
    fn meta_line(&self) -> String {
        let mut meta = JsonObject::new();
        meta.str_field("type", "meta");
        for (key, value) in &self.meta {
            meta.str_field(key, value);
        }
        meta.u64_field("timeline_events", self.timeline.len() as u64);
        meta.finish()
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The full event timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The flight recorder (most recent point events).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The wall-clock stage profile (read side).
    pub fn profile(&self) -> &StageProfile {
        &self.profile
    }

    /// The wall-clock stage profile (write side, for the driver).
    pub fn profile_mut(&mut self) -> &mut StageProfile {
        &mut self.profile
    }

    /// Serializes the deterministic telemetry state as JSONL: one
    /// `meta` line, then the timeline in append order, then the
    /// registry in name order. Sim-time-only — byte-identical across
    /// thread counts, hosts, and streaming vs materialized replay.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.meta_line());
        out.push('\n');
        for event in self.timeline.events() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        self.registry.write_jsonl(&mut out);
        out
    }

    /// A compact human summary: meta, counters, gauges, histogram
    /// quantiles, timeline/recorder depth, and — only when profiling
    /// was enabled — wall-clock stage timings.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if !self.meta.is_empty() {
            let line = self
                .meta
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "meta: {line}");
        }
        let _ = writeln!(
            out,
            "timeline: {} events ({} in flight recorder, {} evicted)",
            self.timeline.len(),
            self.recorder.len(),
            self.recorder.dropped()
        );
        let counters: Vec<_> = self.registry.counters().collect();
        if !counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in counters {
                let _ = writeln!(out, "  {name:<28} {value}");
            }
        }
        let gauges: Vec<_> = self.registry.gauges().collect();
        if !gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, gauge) in gauges {
                let _ = writeln!(
                    out,
                    "  {name:<28} last {:.3}  min {:.3}  max {:.3}",
                    gauge.last, gauge.min, gauge.max
                );
            }
        }
        let histograms: Vec<_> = self.registry.histograms().collect();
        if !histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (name, hist) in histograms {
                let _ = writeln!(
                    out,
                    "  {name:<28} n={} mean {:.3}  p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}",
                    hist.count(),
                    hist.mean(),
                    hist.quantile(0.5),
                    hist.quantile(0.9),
                    hist.quantile(0.99),
                    hist.max()
                );
            }
        }
        if self.profile.is_enabled() {
            let stages = self.profile.summary();
            if !stages.is_empty() {
                let _ = writeln!(out, "wall-clock stages (non-deterministic):");
                out.push_str(&stages);
            }
        }
        out
    }
}

/// Equality over the *deterministic* state only: config, meta,
/// registry, timeline and recorder. The wall-clock stage profile is
/// deliberately ignored so report comparisons (streaming vs
/// materialized, thread-count sweeps) hold with profiling on. The
/// streaming sink is also excluded: its contents are a pure function
/// of the compared timeline/registry state, and `dyn` sinks are not
/// comparable.
impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.meta == other.meta
            && self.registry == other.registry
            && self.timeline == other.timeline
            && self.recorder == other.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Telemetry {
        let mut telemetry = Telemetry::new(TelemetryConfig::default().flight_capacity(2));
        telemetry.set_meta("policy", "litmus-aware");
        telemetry.inc("arrivals.admitted", 7);
        telemetry.gauge_set("fleet.machines", 4.0);
        telemetry.observe("slice.admitted", 3.0);
        let span = telemetry.open_span(0, "replay", vec![]);
        for at in [10, 20, 30] {
            telemetry.event(at, "tick", vec![("n", at.into())]);
        }
        telemetry.close_span(span, 40);
        telemetry
    }

    #[test]
    fn jsonl_starts_with_meta_then_timeline_then_registry() {
        let telemetry = sample();
        let jsonl = telemetry.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            r#"{"type":"meta","policy":"litmus-aware","timeline_events":4}"#
        );
        assert!(lines[1].starts_with(r#"{"type":"span","at_ms":0,"end_ms":40,"name":"replay""#));
        assert!(lines.last().unwrap().starts_with(r#"{"type":"histogram""#));
        // Registry lines follow all timeline lines.
        let first_counter = lines
            .iter()
            .position(|l| l.contains(r#""type":"counter""#))
            .unwrap();
        let last_event = lines
            .iter()
            .rposition(|l| l.contains(r#""type":"event""#))
            .unwrap();
        assert!(first_counter > last_event);
    }

    #[test]
    fn point_events_reach_the_flight_recorder_but_spans_do_not() {
        let telemetry = sample();
        assert_eq!(telemetry.recorder().seen(), 3);
        assert_eq!(telemetry.recorder().len(), 2); // capacity 2
        assert_eq!(telemetry.timeline().len(), 4); // span + 3 ticks
    }

    #[test]
    fn equality_ignores_the_wall_clock_profile() {
        let mut a = sample();
        let b = sample();
        a.profile_mut().time("step", || std::hint::black_box(0));
        assert_eq!(a, b);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn set_meta_overwrites_in_place() {
        let mut telemetry = Telemetry::new(TelemetryConfig::default());
        telemetry.set_meta("policy", "a");
        telemetry.set_meta("trace", "t");
        telemetry.set_meta("policy", "b");
        let jsonl = telemetry.to_jsonl();
        assert!(jsonl.starts_with(r#"{"type":"meta","policy":"b","trace":"t""#));
    }

    /// Drives the same record sequence through a fresh instance.
    fn record_sequence(telemetry: &mut Telemetry) {
        telemetry.set_meta("policy", "litmus-aware");
        let replay = telemetry.open_span(0, "replay", vec![("policy", "litmus-aware".into())]);
        telemetry.inc("arrivals.admitted", 7);
        let machine = telemetry.open_span(5, "machine", vec![("id", 0u32.into())]);
        for at in 0..200u64 {
            telemetry.event(at * 10, "tick", vec![("n", at.into())]);
            telemetry.observe("slice.admitted", (at % 3) as f64);
        }
        telemetry.span("drain", 1_900, 2_000, vec![("pending", 0u64.into())]);
        telemetry.close_span(machine, 1_950);
        telemetry.close_span(replay, 2_000);
        // `machine` stays re-closable; re-close after flush updates it.
        telemetry.close_span(machine, 1_960);
    }

    #[test]
    fn streamed_export_is_byte_identical_to_materialized() {
        let mut materialized = Telemetry::new(TelemetryConfig::default());
        record_sequence(&mut materialized);
        for keep in [0, 1, 8, 64] {
            let mut streamed = Telemetry::new(TelemetryConfig::default().timeline_retention(keep));
            record_sequence(&mut streamed);
            let out = streamed.take_streamed().expect("sink attached");
            assert_jsonl_eq("materialized", &materialized.to_jsonl(), "streamed", &out);
            assert!(streamed.timeline().peak_retained() <= keep + 1);
            assert_eq!(streamed.timeline().len(), materialized.timeline().len());
        }
    }

    #[test]
    fn retention_without_take_streamed_keeps_counts_and_recorder() {
        let mut telemetry = Telemetry::new(TelemetryConfig::default().timeline_retention(2));
        for at in 0..50u64 {
            telemetry.event(at, "tick", vec![("n", at.into())]);
        }
        assert_eq!(telemetry.timeline().len(), 50);
        assert_eq!(telemetry.timeline().events().len(), 2);
        assert_eq!(telemetry.timeline().offset(), 48);
        // The flight recorder is independent of timeline retention.
        assert_eq!(telemetry.recorder().seen(), 50);
    }

    #[test]
    fn take_streamed_is_none_without_a_sink() {
        let mut telemetry = Telemetry::new(TelemetryConfig::default());
        assert!(!telemetry.sink_attached());
        assert!(telemetry.take_streamed().is_none());
    }

    #[test]
    fn profiling_is_off_by_default_and_configurable() {
        assert!(!Telemetry::new(TelemetryConfig::default())
            .profile()
            .is_enabled());
        let telemetry = Telemetry::new(TelemetryConfig::default().profiling(true));
        assert!(telemetry.profile().is_enabled());
    }
}
