//! Opt-in wall-clock stage profiling.
//!
//! Everything else in this crate is keyed to *sim* time and must be
//! bit-identical across hosts and thread counts; stage profiling is
//! the one deliberate exception. It measures where real time goes in
//! the replay loop — dispatch, stepping, the slice barrier, stealing,
//! scaling — so engine rework (the ROADMAP's slice-free event queue)
//! has a committed before/after. Because the numbers are wall clock,
//! the profile is excluded from [`crate::Telemetry`] equality and from
//! the deterministic JSONL export; it surfaces only through
//! [`StageProfile::summary`] / [`StageProfile::to_json`], which
//! callers opt into explicitly (e.g. the bench-trajectory runner).

use std::collections::BTreeMap;
use std::time::Instant;

use crate::json::JsonObject;

/// Accumulated wall-clock cost of one named stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStat {
    /// Times the stage ran.
    pub calls: u64,
    /// Total wall time, ns.
    pub total_ns: u64,
    /// Longest single run, ns.
    pub max_ns: u64,
}

impl StageStat {
    /// Mean wall time per call, ns.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// Wall-clock profiler for the replay loop's stages. Disabled by
/// default: a disabled profiler never reads the clock, so the replay
/// hot path pays two branch checks per stage and nothing else.
#[derive(Debug, Clone, Default)]
pub struct StageProfile {
    enabled: bool,
    stages: BTreeMap<&'static str, StageStat>,
}

impl StageProfile {
    /// A profiler that records (`enabled`) or ignores everything.
    pub fn new(enabled: bool) -> Self {
        StageProfile {
            enabled,
            stages: BTreeMap::new(),
        }
    }

    /// Whether timings are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a measurement; returns `None` (and costs nothing) when
    /// disabled. Pair with [`StageProfile::stop`].
    pub fn start(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Ends a measurement started with [`StageProfile::start`],
    /// charging the elapsed wall time to `stage`.
    pub fn stop(&mut self, stage: &'static str, started: Option<Instant>) {
        let Some(started) = started else { return };
        let elapsed = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let stat = self.stages.entry(stage).or_default();
        stat.calls += 1;
        stat.total_ns += elapsed;
        stat.max_ns = stat.max_ns.max(elapsed);
    }

    /// Times a closure as one run of `stage`.
    pub fn time<T>(&mut self, stage: &'static str, f: impl FnOnce() -> T) -> T {
        let started = self.start();
        let result = f();
        self.stop(stage, started);
        result
    }

    /// Removes a stage from the profile, returning its accumulated
    /// cost. The event-driven engine uses this to drop stages that are
    /// meaningless under its execution model (the slice `barrier`) from
    /// summaries, so `--profiling` output names only stages the engine
    /// actually has.
    pub fn drop_stage(&mut self, name: &str) -> Option<StageStat> {
        self.stages.remove(name)
    }

    /// All stages in name order.
    pub fn stages(&self) -> impl Iterator<Item = (&'static str, &StageStat)> + '_ {
        self.stages.iter().map(|(&name, stat)| (name, stat))
    }

    /// One stage's accumulated cost.
    pub fn stage(&self, name: &str) -> Option<&StageStat> {
        self.stages.get(name)
    }

    /// Human-readable per-stage lines (empty when disabled or nothing
    /// ran). Explicitly labeled wall-clock so it is never mistaken for
    /// the deterministic export.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, stat) in self.stages() {
            out.push_str(&format!(
                "  {:<10} {:>9.2} ms total, {:>7} calls, mean {:>7.1} µs, max {:>8.1} µs\n",
                name,
                stat.total_ns as f64 / 1e6,
                stat.calls,
                stat.mean_ns() as f64 / 1e3,
                stat.max_ns as f64 / 1e3,
            ));
        }
        out
    }

    /// JSON array of per-stage objects (wall clock — excluded from the
    /// deterministic JSONL export; used by the bench-trajectory file).
    pub fn to_json(&self) -> String {
        let stages = self
            .stages()
            .map(|(name, stat)| {
                let mut obj = JsonObject::new();
                obj.str_field("stage", name);
                obj.u64_field("calls", stat.calls);
                obj.f64_field("total_ms", stat.total_ns as f64 / 1e6);
                obj.f64_field("mean_us", stat.mean_ns() as f64 / 1e3);
                obj.f64_field("max_us", stat.max_ns as f64 / 1e3);
                obj.finish()
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("[{stages}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut profile = StageProfile::new(false);
        profile.time("step", || {
            std::thread::sleep(std::time::Duration::from_micros(50))
        });
        assert!(profile.stages().next().is_none());
        assert!(profile.start().is_none());
        assert_eq!(profile.summary(), "");
    }

    #[test]
    fn enabled_profiler_accumulates_calls_and_time() {
        let mut profile = StageProfile::new(true);
        for _ in 0..3 {
            profile.time("step", || std::hint::black_box(1 + 1));
        }
        let stat = profile.stage("step").unwrap();
        assert_eq!(stat.calls, 3);
        assert!(stat.max_ns <= stat.total_ns);
        assert!(profile.summary().contains("step"));
        assert!(profile.to_json().starts_with(r#"[{"stage":"step""#));
    }

    #[test]
    fn dropped_stages_leave_the_summary() {
        let mut profile = StageProfile::new(true);
        profile.time("barrier", || std::hint::black_box(0));
        profile.time("step", || std::hint::black_box(0));
        let dropped = profile.drop_stage("barrier").unwrap();
        assert_eq!(dropped.calls, 1);
        assert!(profile.drop_stage("barrier").is_none());
        assert!(!profile.summary().contains("barrier"));
        assert!(profile.summary().contains("step"));
    }
}
