//! Deterministic per-invocation trace identity and sampling.
//!
//! Every admitted invocation in a replay gets a [`TraceId`] — its
//! zero-based admission index in trace order, so the id is a pure
//! function of the trace and never of thread count, stepping mode or
//! host. A [`TraceSampler`] decides *deterministically* (seeded hash
//! of the id, no RNG state) which invocations emit their span chain
//! onto the timeline, so sampled exports stay byte-reproducible and a
//! rate-1.0 sampler (the test configuration) keeps every trace.
//!
//! The span chain itself is emitted by the cluster driver under the
//! `trace.*` names:
//!
//! | record | kind | covers |
//! |---|---|---|
//! | `trace.admission` | span | arrival → admitting slice boundary |
//! | `trace.placement` | event | the dispatch decision (machine, probe score) |
//! | `trace.queue` | span | arrival → launch (the queue wait) |
//! | `trace.exec` | span | launch → completion |
//! | `trace.billed` | event | billing attribution at completion |
//!
//! All five carry `trace` and `tenant` fields, so a trace tree is
//! reassembled by grouping on `trace`.

use std::fmt;

/// Stable identity of one admitted invocation within a replay: its
/// zero-based admission index in trace order (parallel to the report's
/// placements vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The id as a dense vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// SplitMix64 finalizer — a well-mixed, allocation-free hash used to
/// turn (seed, trace id) into a uniform 64-bit value. The constant
/// choice follows the published SplitMix64 parameters.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic head-based trace sampler: whether a [`TraceId`] is
/// sampled depends only on the id, the seed and the rate — never on
/// call order or any mutable state — so every replay engine, thread
/// count and replay mode samples exactly the same set.
///
/// # Examples
///
/// ```
/// use litmus_telemetry::{TraceId, TraceSampler};
///
/// let all = TraceSampler::new(7, 1.0);
/// assert!((0..100).all(|i| all.sample(TraceId(i))));
///
/// let none = TraceSampler::new(7, 0.0);
/// assert!(!(0..100).any(|i| none.sample(TraceId(i))));
///
/// let half = TraceSampler::new(7, 0.5);
/// let kept = (0..10_000).filter(|&i| half.sample(TraceId(i))).count();
/// assert!((4_000..6_000).contains(&kept));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSampler {
    seed: u64,
    rate: f64,
}

impl TraceSampler {
    /// A sampler keeping roughly `rate` of traces (clamped to
    /// `[0, 1]`), decided per-id by a seeded hash.
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        TraceSampler { seed, rate }
    }

    /// The configured sampling rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Whether any trace can ever be sampled.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }

    /// Whether `id` is in the sampled set — a pure function of
    /// (seed, rate, id).
    pub fn sample(&self, id: TraceId) -> bool {
        if self.rate >= 1.0 {
            return true;
        }
        if self.rate <= 0.0 {
            return false;
        }
        // Compare the hash against rate·2⁶⁴ in float space; 2⁶⁴ itself
        // is exactly representable, the comparison is exact enough for
        // a sampling decision and — crucially — identical everywhere.
        (mix(self.seed ^ id.0) as f64) < self.rate * (u64::MAX as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_one_keeps_everything_rate_zero_nothing() {
        let all = TraceSampler::new(42, 1.0);
        let none = TraceSampler::new(42, 0.0);
        for i in 0..1_000 {
            assert!(all.sample(TraceId(i)));
            assert!(!none.sample(TraceId(i)));
        }
        assert!(all.is_active());
        assert!(!none.is_active());
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_rate_and_id() {
        let a = TraceSampler::new(9, 0.3);
        let b = TraceSampler::new(9, 0.3);
        for i in 0..10_000 {
            assert_eq!(a.sample(TraceId(i)), b.sample(TraceId(i)));
        }
    }

    #[test]
    fn distinct_seeds_sample_distinct_sets() {
        let a = TraceSampler::new(1, 0.5);
        let b = TraceSampler::new(2, 0.5);
        let differs = (0..10_000).any(|i| a.sample(TraceId(i)) != b.sample(TraceId(i)));
        assert!(differs);
    }

    #[test]
    fn rate_is_roughly_respected() {
        for &rate in &[0.1, 0.5, 0.9] {
            let sampler = TraceSampler::new(3, rate);
            let kept = (0..100_000).filter(|&i| sampler.sample(TraceId(i))).count();
            let observed = kept as f64 / 100_000.0;
            assert!(
                (observed - rate).abs() < 0.02,
                "rate {rate} observed {observed}"
            );
        }
    }

    #[test]
    fn degenerate_rates_clamp() {
        assert_eq!(TraceSampler::new(0, f64::NAN).rate(), 0.0);
        assert_eq!(TraceSampler::new(0, 7.0).rate(), 1.0);
        assert_eq!(TraceSampler::new(0, -2.0).rate(), 0.0);
    }

    #[test]
    fn trace_id_displays_compactly() {
        assert_eq!(TraceId(17).to_string(), "t17");
        assert_eq!(TraceId(17).index(), 17);
    }
}
