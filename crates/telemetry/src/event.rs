//! Sim-time-keyed structured events and spans.
//!
//! Every record is stamped with *simulated* cluster time — never wall
//! clock — so a timeline is a pure function of the replay: the same
//! trace, configuration and seed produce the same byte sequence on
//! export regardless of worker-pool thread count, stepping mode or
//! host. Events are append-ordered; the driver records them at slice
//! boundaries on one thread, so append order is itself deterministic.

use crate::json::{write_escaped, write_f64, JsonObject};

/// A typed field value attached to a [`TimelineEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (exported as `null` when non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => write_f64(*v, out),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(v) => write_escaped(v, out),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Named fields of one event, in record order.
pub type Fields = Vec<(&'static str, FieldValue)>;

/// Whether a timeline record is a point event or a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An instantaneous record at its `at_ms`.
    Point,
    /// An interval: opened at `at_ms`, closed at `end_ms` (`None`
    /// while still open — e.g. a machine alive at replay end).
    Span {
        /// Sim time the span closed, ms (`None` while open).
        end_ms: Option<u64>,
    },
}

/// One structured record on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Sim time of the event (span start for spans), ms since replay
    /// start.
    pub at_ms: u64,
    /// Event name (`"scale"`, `"steal"`, `"forecast"`, …).
    pub name: &'static str,
    /// Point event or span.
    pub kind: EventKind,
    /// Structured payload, flattened into the JSONL line.
    pub fields: Fields,
}

impl TimelineEvent {
    /// Serializes the event as one JSONL line (no trailing newline).
    /// Field keys are flattened into the object after the reserved
    /// `type` / `at_ms` / `name` (/ `end_ms`) keys.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        match self.kind {
            EventKind::Point => {
                obj.str_field("type", "event");
                obj.u64_field("at_ms", self.at_ms);
            }
            EventKind::Span { end_ms } => {
                obj.str_field("type", "span");
                obj.u64_field("at_ms", self.at_ms);
                match end_ms {
                    Some(end) => obj.u64_field("end_ms", end),
                    None => obj.raw_field("end_ms", "null"),
                }
            }
        }
        obj.str_field("name", self.name);
        for (key, value) in &self.fields {
            let mut raw = String::new();
            value.write_json(&mut raw);
            obj.raw_field(key, &raw);
        }
        obj.finish()
    }
}

/// Handle to a span opened on a [`Timeline`], used to close it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// The append-ordered event log of one replay.
///
/// Spans appear at their *open* position (the record order is the
/// order things started, which is the deterministic order the driver
/// observed them); closing a span fills in its `end_ms` in place.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Appends a point event.
    pub fn record(&mut self, at_ms: u64, name: &'static str, fields: Fields) {
        self.events.push(TimelineEvent {
            at_ms,
            name,
            kind: EventKind::Point,
            fields,
        });
    }

    /// Opens a span at `at_ms`; close it with [`Timeline::close_span`].
    pub fn open_span(&mut self, at_ms: u64, name: &'static str, fields: Fields) -> SpanId {
        self.events.push(TimelineEvent {
            at_ms,
            name,
            kind: EventKind::Span { end_ms: None },
            fields,
        });
        SpanId(self.events.len() - 1)
    }

    /// Closes an open span at `end_ms`. Closing an already-closed span
    /// updates its end; a stale id past the log is ignored.
    pub fn close_span(&mut self, id: SpanId, end_ms: u64) {
        if let Some(event) = self.events.get_mut(id.0) {
            if matches!(event.kind, EventKind::Span { .. }) {
                event.kind = EventKind::Span {
                    end_ms: Some(end_ms),
                };
            }
        }
    }

    /// Appends an already-closed span.
    pub fn span(&mut self, name: &'static str, start_ms: u64, end_ms: u64, fields: Fields) {
        self.events.push(TimelineEvent {
            at_ms: start_ms,
            name,
            kind: EventKind::Span {
                end_ms: Some(end_ms),
            },
            fields,
        });
    }

    /// Every record, in append order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_events_serialize_with_flattened_fields() {
        let mut timeline = Timeline::new();
        timeline.record(
            120,
            "steal",
            vec![
                ("from", 0u32.into()),
                ("to", 3u32.into()),
                ("moved", 2u64.into()),
            ],
        );
        assert_eq!(
            timeline.events()[0].to_json(),
            r#"{"type":"event","at_ms":120,"name":"steal","from":0,"to":3,"moved":2}"#
        );
    }

    #[test]
    fn spans_open_in_place_and_close_later() {
        let mut timeline = Timeline::new();
        let span = timeline.open_span(0, "replay", vec![("policy", "litmus-aware".into())]);
        timeline.record(20, "scale", vec![("kind", "up".into())]);
        timeline.close_span(span, 400);
        assert_eq!(timeline.len(), 2);
        assert_eq!(
            timeline.events()[0].to_json(),
            r#"{"type":"span","at_ms":0,"end_ms":400,"name":"replay","policy":"litmus-aware"}"#
        );
        // The span keeps its open position: record order is start order.
        assert_eq!(timeline.events()[1].name, "scale");
    }

    #[test]
    fn unclosed_spans_export_a_null_end() {
        let mut timeline = Timeline::new();
        timeline.open_span(5, "machine", vec![]);
        assert_eq!(
            timeline.events()[0].to_json(),
            r#"{"type":"span","at_ms":5,"end_ms":null,"name":"machine"}"#
        );
    }
}
